#!/usr/bin/env python3
"""Scenario: replaying a slice of the paper's evaluation.

Generates three of the Table-1 subjects at the quick-profile scale,
runs all three tools (Canary, the Saber-style baseline, the FSAM-style
baseline), and prints the corresponding Table-1 rows plus the Fig. 8
scaling fit — the same machinery the full benchmark suite uses.

Run:  python examples/evaluation_replay.py
"""

from repro.bench import (
    PROFILES,
    SUBJECTS,
    render_fig7_time,
    render_fig8,
    render_table1,
    run_all,
)


def main() -> None:
    profile = PROFILES["quick"]
    wanted = {"lrzip", "coturn", "transmission", "redis"}
    subjects = [s for s in SUBJECTS if s.name in wanted]

    print(f"replaying {len(subjects)} subjects under profile '{profile.name}' ...")
    runs = run_all(profile, subjects=subjects)

    print()
    print(render_fig7_time(runs))
    print()
    print(render_table1(runs))
    print()
    print(render_fig8(runs))
    print()
    print(
        "Interpretation: Canary reports exactly the injected real bugs plus\n"
        "the unresolvable-correlation patterns (its known FP class), while\n"
        "the baselines report every guard- and order-infeasible bait too.\n"
        "Run `python -m repro.bench` for all twenty subjects, or\n"
        "`REPRO_BENCH_PROFILE=paper python -m repro.bench` for the full-size\n"
        "sweep recorded in EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
