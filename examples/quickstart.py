#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 2 example, end to end.

Runs Canary on the nutshell program of §2 — a *bug-free* snippet that
path-insensitive concurrency analyses flag as an inter-thread
use-after-free — and on a genuinely buggy variant, showing:

1. the guarded value-flow graph Canary builds (Alg. 1 + Alg. 2),
2. that the contradictory-guard flow (theta ∧ ¬theta) is refuted, and
3. a concise bug report with a witness interleaving for the real bug.

Run:  python examples/quickstart.py
"""

from repro import AnalysisConfig, Canary

FIG2 = """
extern int theta1;

void main() {
    int** x = malloc();        // o1
    int* a = malloc();
    *x = a;
    fork(t, thread1, x);
    if (theta1) {
        int* c = *x;
        print(*c);             // the would-be use
    }
}

void thread1(int** y) {
    int* b = malloc();         // o2
    if (!theta1) {
        *y = b;                // interference store
        free(b);               // the would-be free
    }
}
"""


def main() -> None:
    canary = Canary(AnalysisConfig(checkers=("use-after-free",)))

    print("=" * 72)
    print("Fig. 2 as published (bug-free: theta1 and !theta1 contradict)")
    print("=" * 72)
    report = canary.analyze_source(FIG2, filename="fig2.mcc")
    print(f"reports: {report.num_reports}   (expected: 0 — no false positive)")
    print(f"VFG: {report.vfg_summary}")

    print()
    print("=" * 72)
    print("Buggy variant (both branches guarded by theta1: compatible)")
    print("=" * 72)
    buggy = FIG2.replace("if (!theta1)", "if (theta1)")
    report = canary.analyze_source(buggy, filename="fig2_buggy.mcc")
    print(f"reports: {report.num_reports}   (expected: 1 — a real UAF)")
    print()
    for bug in report.bugs:
        print(bug.describe())
        print()
    print(
        "The witness interleaving lists the statement order variables O<label>\n"
        "in an order the SMT solver proved consistent with the program order,\n"
        "the fork semantics, and the load-store constraints — i.e. a real\n"
        "schedule that triggers the use-after-free."
    )


if __name__ == "__main__":
    main()
