#!/usr/bin/env python3
"""Scenario: hunting memory-safety bugs in a producer/consumer service.

A realistic shape from the paper's intro: a main thread owns a shared
request slot; worker threads publish buffers into it and occasionally
recycle them.  Four properties are checked in one run — inter-thread
use-after-free, double-free, NULL dereference and information leak —
showing the source-sink checker framework on one codebase.

Run:  python examples/hunt_producer_consumer.py
"""

from repro import AnalysisConfig, Canary

SERVICE = """
extern int debug_mode;

// ---- shared request pipeline ------------------------------------------

void producer(int** slot) {
    int* buffer = malloc();
    *buffer = 42;
    *slot = buffer;            // publish
    free(buffer);              // BUG: recycled while consumer may read
}

void resetter(int** slot) {
    if (debug_mode) {
        *slot = null;          // debug hook clears the slot
    }
}

void auditor(int** slot) {
    int* secret = taint_source();
    *slot = secret;            // secret value escapes into shared state
}

void main() {
    int** slot = malloc();
    int* initial = malloc();
    *slot = initial;

    fork(t1, producer, slot);
    fork(t2, resetter, slot);
    fork(t3, auditor, slot);

    int* current = *slot;
    if (!debug_mode) {
        print(*current);       // UAF (producer) — but NOT a null-deref,
    }                          //   resetter only runs in debug_mode
    taint_sink(current);       // leak: auditor's secret may be read here

    int* again = *slot;
    free(again);               // double free with producer's free
}
"""


def main() -> None:
    config = AnalysisConfig(
        checkers=("use-after-free", "double-free", "null-deref", "info-leak"),
    )
    report = Canary(config).analyze_source(SERVICE, filename="service.mcc")

    print(f"{report.num_reports} finding(s)")
    print(f"pipeline timings: {report.timings}")
    print(f"VFG summary:      {report.vfg_summary}")
    print()
    by_kind = {}
    for bug in report.bugs:
        by_kind.setdefault(bug.kind, []).append(bug)
    for kind in ("use-after-free", "double-free", "null-deref", "info-leak"):
        bugs = by_kind.get(kind, [])
        print(f"--- {kind}: {len(bugs)} finding(s)")
        for bug in bugs:
            print(bug.describe())
            print()
    print(
        "Note the null-deref checker stays quiet for the !debug_mode read:\n"
        "the store of null (debug_mode) and the dereference (!debug_mode)\n"
        "are guarded by contradictory conditions on the same extern — the\n"
        "Fig. 2 pruning at work on a different property."
    )


if __name__ == "__main__":
    main()
