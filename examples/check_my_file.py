#!/usr/bin/env python3
"""Scenario: using Canary as a library on your own MiniCC source file.

Shows the programmatic surface a downstream user needs: parsing a file,
picking checkers, tuning the soundiness knobs, and consuming the report
objects (rather than printed text).

Run:  python examples/check_my_file.py [path/to/file.mcc]
      (without an argument it analyzes a bundled demo program)
"""

import sys

from repro import AnalysisConfig, Canary

DEMO = """
extern int shutting_down;

void logger(int** line) {
    int* msg = *line;
    if (!shutting_down) {
        print(*msg);
    }
}

void main() {
    int** line = malloc();
    int* msg = malloc();
    *line = msg;
    fork(t, logger, line);
    if (shutting_down) {
        free(msg);          // reclaim on shutdown
    }
}
"""


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as fh:
            source = fh.read()
        filename = sys.argv[1]
    else:
        source = DEMO
        filename = "demo.mcc"

    config = AnalysisConfig(
        checkers=("use-after-free", "double-free", "null-deref"),
        unroll_depth=2,        # paper §6: loops unrolled twice
        context_depth=6,       # paper §7.2: calling-context depth six
        parallel_solving=True,  # §5.2: path queries are independent
    )
    report = Canary(config).analyze_source(source, filename=filename)

    print(f"{filename}: {report.num_reports} finding(s)")
    for bug in report.bugs:
        # Structured access — what an IDE/CI integration would consume:
        print(f"  kind      : {bug.kind}")
        print(f"  free/site : {bug.source.location} (ℓ{bug.source.label})")
        print(f"  use/site  : {bug.sink.location} (ℓ{bug.sink.label})")
        print(f"  crosses   : {'threads' if bug.inter_thread else 'one thread'}")
        print(f"  schedule  : {bug.witness_order}")
        print()
    if not report.bugs:
        print(
            "  (the demo is bug-free: the free is guarded by shutting_down\n"
            "   and the dereference by !shutting_down — Canary proves the\n"
            "   interleaving infeasible instead of flagging it)"
        )


if __name__ == "__main__":
    main()
