#!/usr/bin/env python3
"""Scenario: from static report to confirmed, exportable finding.

The full triage pipeline a downstream team would run:

1. Canary finds an inter-thread UAF and emits a *witness interleaving*
   (an SMT model of the execution constraints);
2. the concrete interpreter **replays** that witness and observes the
   violation at runtime — the report is confirmed, not just plausible;
3. the finding is exported as SARIF (for code-review tooling) and the
   guarded value-flow graph as Graphviz DOT (for visual inspection, à la
   the paper's Fig. 2b).

Run:  python examples/confirm_and_export.py [output-dir]
"""

import json
import pathlib
import sys

from repro import AnalysisConfig, Canary
from repro.checkers import report_to_sarif
from repro.interp import confirm_all
from repro.vfg import to_dot

RACY_CACHE = """
extern int refresh_enabled;

// A cache entry is republished by a refresher thread while readers may
// still be dereferencing the old pointer.
void refresher(int** entry) {
    if (refresh_enabled) {
        int* updated = malloc();
        *updated = 2;
        *entry = updated;
        int* stale = updated;
        free(stale);            // oops: frees the value just published
    }
}

void main() {
    int** entry = malloc();
    int* initial = malloc();
    *initial = 1;
    *entry = initial;
    fork(t, refresher, entry);
    int* current = *entry;
    print(*current);
}
"""


def main() -> None:
    outdir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")

    report = Canary(AnalysisConfig()).analyze_source(RACY_CACHE, "cache.mcc")
    print(f"static analysis: {report.num_reports} finding(s)")
    for bug in report.bugs:
        print(bug.describe())
        print()

    # --- dynamic confirmation ------------------------------------------------
    results = confirm_all(report.bundle.module, report.bugs)
    for result in results:
        print(result.describe())
    confirmed = sum(1 for r in results if r.confirmed)
    print(f"\n{confirmed}/{len(results)} report(s) replayed to a runtime violation")

    # --- exports ---------------------------------------------------------------
    sarif_path = outdir / "findings.sarif"
    sarif_path.write_text(json.dumps(report_to_sarif(report), indent=2))
    dot_path = outdir / "vfg.dot"
    dot_path.write_text(to_dot(report.bundle.vfg))
    print(f"\nwrote {sarif_path} and {dot_path}")
    print("render the graph with:  dot -Tsvg vfg.dot -o vfg.svg")


if __name__ == "__main__":
    main()
