"""The analysis daemon: service lifecycle, HTTP endpoints, and the
correctness bar — daemon-served reports are bug-key- and
witness-identical to CLI one-shot runs, and re-submission of an edited
file rides the function-level incremental path of the resident store.
"""

from __future__ import annotations

import json
import pathlib
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis import AnalysisConfig, Canary
from repro.analysis.fingerprint import report_to_portable
from repro.server import AnalysisService, ReportRegistry
from repro.server.app import make_server
from repro.server.service import ConfigError

from test_corpus import _parse_directives

CORPUS = pathlib.Path(__file__).parent / "corpus"

#: a representative cross-checker slice of the corpus (the full corpus
#: equivalence sweep lives in test_corpus/test_passes; here we pay for
#: daemon round-trips per file)
SUBJECTS = [
    "uaf_basic.mcc",
    "mixed_all_checkers.mcc",
    "doublefree_cross_thread.mcc",
    "nullderef_shared.mcc",
    "leak_shared_memory.mcc",
    "uaf_two_routes_first_infeasible.mcc",
]


@pytest.fixture()
def service():
    svc = AnalysisService(workers=2, max_reports=64)
    yield svc
    svc.shutdown()


def _subject(name):
    text = (CORPUS / name).read_text()
    _expects, checkers, overrides = _parse_directives(text)
    return text, {"checkers": list(checkers), **overrides}


def _reference_portable(name):
    text, overrides = _subject(name)
    config = AnalysisConfig(
        **{**overrides, "checkers": tuple(overrides["checkers"])}
    )
    report = Canary(config).analyze_source(text, filename=name)
    return report_to_portable(report)


# ----- the correctness bar ---------------------------------------------------


class TestDaemonCliEquivalence:
    @pytest.mark.parametrize("name", SUBJECTS)
    def test_daemon_report_identical_to_one_shot(self, service, name):
        text, overrides = _subject(name)
        record = service.analyze(text, name, overrides, timeout=120)
        assert record.status == "done", record.error
        reference = _reference_portable(name)
        # bug keys AND witnesses: the full portable payloads must match
        assert record.result["bugs"] == reference["bugs"]
        assert record.result["suppressed"] == reference["suppressed"]
        assert record.result["truncation_warnings"] == reference["truncation_warnings"]

    def test_second_submission_is_warm_and_identical(self, service):
        text, overrides = _subject("uaf_basic.mcc")
        first = service.analyze(text, "uaf_basic.mcc", overrides, timeout=120)
        second = service.analyze(text, "uaf_basic.mcc", overrides, timeout=120)
        assert second.result["bugs"] == first.result["bugs"]
        # the resident run cache serves the re-submission: zero passes run
        assert second.result["passes_run"] == []

    def test_edited_resubmission_rides_incremental_path(self, service):
        text, overrides = _subject("mixed_all_checkers.mcc")
        cold = service.analyze(text, "mixed.mcc", overrides, timeout=120)
        total = len(cold.result["pass_statistics"])
        assert len(cold.result["passes_run"]) == total  # cold = everything
        edited = text.replace("print(", "print(0 + ", 1)
        warm = service.analyze(edited, "mixed.mcc", overrides, timeout=120)
        cached = [
            p["name"]
            for p in warm.result["pass_statistics"]
            if p["status"] == "cached"
        ]
        assert cached, "edited re-submission re-ran every pass"
        assert len(warm.result["passes_run"]) < len(warm.result["pass_statistics"])
        # the edit shifts statement numbering but not the findings:
        # same bug kinds over the same value-flow paths
        def identity(result):
            return sorted((b["kind"], b["path"]) for b in result["bugs"])

        assert identity(warm.result) == identity(cold.result)


# ----- request isolation -----------------------------------------------------


class TestRequestIsolation:
    def test_per_request_checkers(self, service):
        text, _overrides = _subject("mixed_all_checkers.mcc")
        uaf = service.analyze(
            text, "m.mcc", {"checkers": ["use-after-free"]}, timeout=120
        )
        df = service.analyze(
            text, "m.mcc", {"checkers": ["double-free"]}, timeout=120
        )
        assert {b["kind"] for b in uaf.result["bugs"]} <= {"use-after-free"}
        assert {b["kind"] for b in df.result["bugs"]} <= {"double-free"}
        assert uaf.config_digest != df.config_digest

    def test_unknown_knob_rejected(self, service):
        with pytest.raises(ConfigError):
            service.request_config({"no_such_knob": 1})

    def test_server_owned_knob_rejected(self, service):
        with pytest.raises(ConfigError):
            service.request_config({"cache_dir": "/tmp/elsewhere"})

    def test_unknown_checker_rejected(self, service):
        with pytest.raises(ConfigError):
            service.request_config({"checkers": ["nope"]})

    def test_per_request_budget(self, service):
        cfg = service.request_config({"timeout_seconds": 0.5})
        assert cfg.timeout_seconds == 0.5
        assert service.config.timeout_seconds is None  # default untouched

    def test_frontend_error_fails_one_request_only(self, service):
        bad = service.analyze("int main( {{{", "bad.mcc", timeout=60)
        assert bad.status == "failed"
        assert "frontend" in bad.error
        text, overrides = _subject("uaf_basic.mcc")
        good = service.analyze(text, "good.mcc", overrides, timeout=120)
        assert good.status == "done"  # the worker survived


# ----- concurrency through the daemon ---------------------------------------


class TestConcurrentRequests:
    def test_parallel_mixed_submissions_match_serial(self, service):
        expected = {name: _reference_portable(name)["bugs"] for name in SUBJECTS}
        records = {}
        for name in SUBJECTS:  # enqueue everything, then drain
            text, overrides = _subject(name)
            records[name] = service.submit(text, name, overrides)
        for name, record in records.items():
            finished = service.registry.wait(record.id, timeout=120)
            assert finished.status == "done", (name, finished.error)
            assert finished.result["bugs"] == expected[name], name

    def test_metrics_accumulate_across_requests(self, service):
        text, overrides = _subject("uaf_basic.mcc")
        service.analyze(text, "a.mcc", overrides, timeout=120)
        service.analyze(text, "b.mcc", overrides, timeout=120)
        snapshot = service.metrics_snapshot()
        assert snapshot["server.requests"] == 2
        assert snapshot["server.completed"] == 2
        assert snapshot["server.analyze_seconds.count"] == 2
        assert snapshot["server.reports_done"] == 2
        assert snapshot["store.artifact_hits"] >= 0


# ----- report registry -------------------------------------------------------


class TestReportRegistry:
    def test_lifecycle(self):
        registry = ReportRegistry()
        record = registry.create("f.mcc", "cfg1")
        assert record.status == "queued"
        registry.set_running(record.id)
        assert registry.get(record.id).status == "running"
        registry.set_done(record.id, {"bugs": []}, metrics={"m": 1})
        done = registry.get(record.id)
        assert done.status == "done"
        assert done.result == {"bugs": []}
        assert done.as_dict()["metrics"] == {"m": 1}

    def test_wait_returns_after_done(self):
        registry = ReportRegistry()
        record = registry.create("f.mcc", "cfg1")
        timer = threading.Timer(
            0.05, registry.set_done, args=(record.id, {"bugs": []})
        )
        timer.start()
        finished = registry.wait(record.id, timeout=5)
        assert finished.status == "done"

    def test_wait_timeout_returns_unfinished(self):
        registry = ReportRegistry()
        record = registry.create("f.mcc", "cfg1")
        waited = registry.wait(record.id, timeout=0.05)
        assert waited.status == "queued"

    def test_bounded_retention_evicts_finished_only(self):
        registry = ReportRegistry(max_reports=3)
        done_ids = []
        for i in range(3):
            rec = registry.create(f"f{i}.mcc", "cfg")
            registry.set_done(rec.id, {})
            done_ids.append(rec.id)
        inflight = registry.create("live.mcc", "cfg")
        assert len(registry) == 3  # oldest finished record evicted
        assert registry.get(done_ids[0]) is None
        assert registry.get(inflight.id) is not None
        assert registry.counts()["evicted"] == 1


# ----- the HTTP face ---------------------------------------------------------


@pytest.fixture(scope="class")
def http_server():
    service = AnalysisService(workers=2, max_reports=64)
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address[1], service
    server.shutdown()
    server.server_close()
    service.shutdown()


def _call(port, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHttpEndpoints:
    def test_healthz(self, http_server):
        port, _service = http_server
        status, body = _call(port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 2

    def test_analyze_wait_round_trip(self, http_server):
        port, _service = http_server
        text, overrides = _subject("uaf_basic.mcc")
        status, body = _call(
            port,
            "POST",
            "/analyze",
            {"source": text, "filename": "uaf.mcc", "config": overrides, "wait": True},
        )
        assert status == 200
        assert body["status"] == "done"
        assert body["result"]["bugs"] == _reference_portable("uaf_basic.mcc")["bugs"]

    def test_analyze_poll_round_trip(self, http_server):
        port, service = http_server
        text, overrides = _subject("uaf_basic.mcc")
        status, body = _call(
            port,
            "POST",
            "/analyze",
            {"source": text, "filename": "poll.mcc", "config": overrides},
        )
        assert status == 202
        report_id = body["report_id"]
        service.registry.wait(report_id, timeout=120)
        status, body = _call(port, "GET", f"/reports/{report_id}")
        assert status == 200
        assert body["status"] == "done"
        assert body["metrics"]  # the run's scoped metrics snapshot rides along

    def test_reports_listing(self, http_server):
        port, _service = http_server
        status, body = _call(port, "GET", "/reports")
        assert status == 200
        assert isinstance(body["reports"], list)
        assert all("result" not in r for r in body["reports"])

    def test_metrics_endpoint(self, http_server):
        port, _service = http_server
        status, body = _call(port, "GET", "/metrics")
        assert status == 200
        assert body["server.requests"] >= 1
        assert "store.artifact_hits" in body
        assert "server.uptime_seconds" in body

    def test_bad_requests(self, http_server):
        port, _service = http_server
        assert _call(port, "POST", "/analyze", {"source": ""})[0] == 400
        assert _call(port, "POST", "/analyze", {"filename": "x"})[0] == 400
        status, body = _call(
            port, "POST", "/analyze", {"source": "int main() { return 0; }",
                                       "config": {"bogus": 1}}
        )
        assert status == 400 and "bogus" in body["error"]
        assert _call(port, "GET", "/reports/r999999")[0] == 404
        assert _call(port, "GET", "/nope")[0] == 404

    def test_cancel_endpoints(self, http_server):
        port, service = http_server
        text, overrides = _subject("uaf_basic.mcc")
        status, body = _call(
            port,
            "POST",
            "/analyze",
            {"source": text, "filename": "c.mcc", "config": overrides, "wait": True},
        )
        report_id = body["id"]
        # finished runs cannot be cancelled: 409, record untouched
        status, body = _call(port, "DELETE", f"/reports/{report_id}")
        assert status == 409
        assert body["cancelled"] is False
        status, _body = _call(port, "POST", f"/reports/{report_id}/cancel")
        assert status == 409


# ----- the serve subcommand --------------------------------------------------


class TestServeCli:
    def test_serve_dispatch_exists(self):
        from repro.__main__ import main

        # --help exits 0 through argparse's SystemExit
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0

    def test_unknown_checker_rejected(self):
        from repro.server.app import serve_main

        with pytest.raises(SystemExit) as excinfo:
            serve_main(["--checkers", "nope"])
        assert excinfo.value.code == 2
