"""Tests for the lock/unlock extension (paper future work 1)."""

import pytest

from repro import AnalysisConfig, Canary
from repro.frontend import parse_program
from repro.ir import LoadInst, LockInst, StoreInst, UnlockInst
from repro.lowering import lower_program
from repro.threads.locks import LockAnalysis

# A write publishes a temporary into the shared slot inside a critical
# section and replaces it before unlocking; the temporary is freed after
# the section.  A reader that takes the same lock can never observe the
# temporary — but without lock semantics this looks like a UAF.
LOCK_PROTECTED = """
void main() {
    int** slot = malloc();
    int* initial = malloc();
    *slot = initial;
    fork(t, writer, slot);
    lock(m);
    int* v = *slot;
    unlock(m);
    print(*v);
}

void writer(int** s) {
    int* tmp = malloc();
    int* final = malloc();
    lock(m);
    *s = tmp;
    *s = final;
    unlock(m);
    free(tmp);
}
"""


def lower(src):
    return lower_program(parse_program(src))


class TestLockAnalysis:
    def test_regions_computed(self):
        module = lower(LOCK_PROTECTED)
        locks = LockAnalysis(module)
        store_tmp = [
            i for i in module.functions["writer"].body if isinstance(i, StoreInst)
        ][0]
        regions = locks.regions_of(store_tmp)
        assert len(regions) == 1
        assert regions[0].mutex == "m"

    def test_statement_outside_region(self):
        module = lower(LOCK_PROTECTED)
        locks = LockAnalysis(module)
        from repro.ir import FreeInst

        free = [i for i in module.functions["writer"].body if isinstance(i, FreeInst)][0]
        assert locks.regions_of(free) == ()

    def test_common_mutex_regions(self):
        module = lower(LOCK_PROTECTED)
        locks = LockAnalysis(module)
        store = [
            i for i in module.functions["writer"].body if isinstance(i, StoreInst)
        ][0]
        load = [
            i for i in module.functions["main"].body if isinstance(i, LoadInst)
        ][0]
        pairs = locks.common_mutex_regions(store, load)
        assert len(pairs) == 1

    def test_unbalanced_lock_no_region(self):
        module = lower(
            """
            void main() {
                int** p = malloc();
                lock(m);
                int* v = *p;
            }
            """
        )
        locks = LockAnalysis(module)
        load = [i for i in module.functions["main"].body if isinstance(i, LoadInst)][0]
        assert locks.regions_of(load) == ()

    def test_nested_regions(self):
        module = lower(
            """
            void main() {
                int** p = malloc();
                lock(a);
                lock(b);
                int* v = *p;
                unlock(b);
                unlock(a);
            }
            """
        )
        locks = LockAnalysis(module)
        load = [i for i in module.functions["main"].body if isinstance(i, LoadInst)][0]
        mutexes = {r.mutex for r in locks.regions_of(load)}
        assert mutexes == {"a", "b"}


class TestLockRegionBoundaries:
    """The region is the *open interval* between lock and unlock: the
    lock/unlock statements themselves are not inside it, and sequential
    same-mutex sections are distinct regions."""

    def test_lock_and_unlock_not_inside_their_own_region(self):
        module = lower(LOCK_PROTECTED)
        locks = LockAnalysis(module)
        for func in module.functions.values():
            for inst in func.body:
                if isinstance(inst, (LockInst, UnlockInst)):
                    assert locks.regions_of(inst) == ()

    def test_first_statement_after_lock_is_inside(self):
        module = lower(
            """
            void main() {
                int** p = malloc();
                lock(m);
                int* v = *p;
                unlock(m);
            }
            """
        )
        locks = LockAnalysis(module)
        load = [i for i in module.functions["main"].body if isinstance(i, LoadInst)][0]
        regions = locks.regions_of(load)
        assert len(regions) == 1
        assert regions[0].lock.label < load.label < regions[0].unlock.label

    def test_sequential_sections_are_distinct_regions(self):
        module = lower(
            """
            void main() {
                int** p = malloc();
                lock(m);
                int* a = *p;
                unlock(m);
                lock(m);
                int* b = *p;
                unlock(m);
            }
            """
        )
        locks = LockAnalysis(module)
        loads = [i for i in module.functions["main"].body if isinstance(i, LoadInst)]
        ra = locks.regions_of(loads[0])
        rb = locks.regions_of(loads[1])
        assert len(ra) == len(rb) == 1
        assert ra[0] is not rb[0]
        # Distinct same-mutex regions of one thread still pair up for
        # mutual exclusion (they are trivially ordered by program order).
        assert locks.common_mutex_regions(loads[0], loads[1])

    def test_statement_between_sections_is_uncovered(self):
        module = lower(
            """
            void main() {
                int** p = malloc();
                lock(m);
                int* a = *p;
                unlock(m);
                int* mid = *p;
                lock(m);
                int* b = *p;
                unlock(m);
            }
            """
        )
        locks = LockAnalysis(module)
        loads = [i for i in module.functions["main"].body if isinstance(i, LoadInst)]
        assert locks.regions_of(loads[1]) == ()

    def test_mismatched_unlock_ignored(self):
        module = lower(
            """
            void main() {
                int** p = malloc();
                lock(m);
                int* v = *p;
                unlock(n);
            }
            """
        )
        locks = LockAnalysis(module)
        load = [i for i in module.functions["main"].body if isinstance(i, LoadInst)][0]
        # unlock(n) closes nothing and lock(m) stays unbalanced: no region.
        assert locks.regions_of(load) == ()

    def test_same_region_not_paired_with_itself(self):
        module = lower(
            """
            void main() {
                int** p = malloc();
                lock(m);
                int* a = *p;
                int* b = *p;
                unlock(m);
            }
            """
        )
        locks = LockAnalysis(module)
        loads = [i for i in module.functions["main"].body if isinstance(i, LoadInst)]
        assert locks.common_mutex_regions(loads[0], loads[1]) == []


class TestLockAwareChecking:
    def test_fp_without_lock_modeling(self):
        # Matching the published Canary: locks ignored => FP reported.
        report = Canary(AnalysisConfig(model_locks=False)).analyze_source(
            LOCK_PROTECTED
        )
        assert report.num_reports >= 1

    def test_fp_eliminated_with_lock_modeling(self):
        report = Canary(AnalysisConfig(model_locks=True)).analyze_source(
            LOCK_PROTECTED
        )
        assert report.num_reports == 0

    def test_real_bug_still_found_with_locks(self):
        # Locks do not protect a free-then-use of the *published* value.
        src = """
        void main() {
            int** slot = malloc();
            int* initial = malloc();
            *slot = initial;
            fork(t, writer, slot);
            lock(m);
            int* v = *slot;
            unlock(m);
            print(*v);
        }
        void writer(int** s) {
            int* fresh = malloc();
            lock(m);
            *s = fresh;
            unlock(m);
            free(fresh);
        }
        """
        report = Canary(AnalysisConfig(model_locks=True)).analyze_source(src)
        assert report.num_reports == 1

    def test_different_mutexes_do_not_exclude(self):
        src = LOCK_PROTECTED.replace("lock(m);\n    int* v", "lock(n);\n    int* v").replace(
            "unlock(m);\n    print", "unlock(n);\n    print"
        )
        report = Canary(AnalysisConfig(model_locks=True)).analyze_source(src)
        # Reader holds a different lock: the temporary IS observable.
        assert report.num_reports >= 1
