"""Per-sink detection sharding (:mod:`repro.detection.search` +
:class:`repro.checkers.base.SourceSinkChecker`).

The contract is byte-identical results: a sharded detection phase must
report the same bug keys, the same witness paths, and the same search
statistics as the serial phase at every worker count, because every
worker runs the *unrestricted* DFS and filters only at emission, so the
(idx, seq) ordinal each candidate carries is its true serial position.
Degradation: a dying shard pool falls back to the in-process path with
findings intact.
"""

import pytest

from repro import AnalysisConfig, Canary
from repro.detection.search import partition_sink_labels
from repro.testing import faults
from repro.testing.faults import FaultPlan, inject

from fuzz_gen import detection_scaled_program, scaled_program
from test_corpus import CORPUS_FILES, _parse_directives

SCALED = scaled_program(n_groups=10, helpers_per_group=2)
DETECT_HEAVY = detection_scaled_program(n_threads=8, n_slots=2, pad_functions=4)

SHARDING_CORPUS = [
    p
    for p in CORPUS_FILES
    if p.stem
    in {
        "mixed_all_checkers",
        "doublefree_cross_thread",
        "uaf_sibling_threads",
        "nullderef_shared",
        "leak_shared_memory",
        "uaf_guarded_infeasible",
    }
]


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    faults.clear()


def _keys(report):
    return sorted(b.key for b in report.bugs)


def _paths(report):
    return sorted((b.key, tuple(b.path)) for b in report.bugs)


def _run(text, **overrides):
    overrides.setdefault("use_cache", False)
    return Canary(AnalysisConfig(**overrides)).analyze_source(text)


class TestPartition:
    def test_round_robin_is_deterministic_and_disjoint(self):
        labels = [9, 3, 7, 1, 4, 4, 8]
        shards = partition_sink_labels(labels, 3)
        assert shards == partition_sink_labels(reversed(labels), 3)
        flat = sorted(l for shard in shards for l in shard)
        assert flat == sorted(set(labels))

    def test_empty_buckets_dropped(self):
        assert partition_sink_labels([5], 4) == [(5,)]
        assert partition_sink_labels([], 4) == []

    def test_single_shard(self):
        assert partition_sink_labels([2, 1], 1) == [(1, 2)]


class TestExactness:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_scaled_subject_equal_at_every_width(self, workers):
        ref = _run(SCALED)
        rep = _run(SCALED, detect_workers=workers, solver_backend="process")
        assert _keys(rep) == _keys(ref)
        assert _paths(rep) == _paths(ref)
        assert rep.vfg_summary == ref.vfg_summary
        assert rep.metrics.snapshot().get("detect.shards", 0) >= 2

    def test_detection_heavy_subject(self):
        ref = _run(DETECT_HEAVY)
        rep = _run(DETECT_HEAVY, detect_workers=4, solver_backend="process")
        assert _keys(rep) == _keys(ref)
        assert _paths(rep) == _paths(ref)
        # Shard workers' search statistics are adopted, not summed: the
        # sharded report describes the same single search.
        assert rep.search_statistics == ref.search_statistics

    @pytest.mark.parametrize(
        "path", SHARDING_CORPUS, ids=[p.stem for p in SHARDING_CORPUS]
    )
    def test_corpus_keys_equal(self, path):
        text = path.read_text()
        _expects, checkers, config = _parse_directives(text)
        base = dict(config, checkers=checkers, use_cache=False)
        ref = Canary(AnalysisConfig(**base)).analyze_source(text)
        rep = Canary(
            AnalysisConfig(**base, detect_workers=3, solver_backend="process")
        ).analyze_source(text)
        assert _keys(rep) == _keys(ref)
        assert _paths(rep) == _paths(ref)

    def test_thread_backend_stays_in_process(self):
        # Sharding requires the process backend; the thread backend keeps
        # the serial path (and its results) untouched.
        rep = _run(SCALED, detect_workers=4, solver_backend="thread")
        assert "detect.shards" not in rep.metrics.snapshot()
        assert _keys(rep) == _keys(_run(SCALED))

    def test_suppressed_diagnostics_bypass_sharding(self):
        ref = _run(SCALED, collect_suppressed=True)
        rep = _run(
            SCALED,
            collect_suppressed=True,
            detect_workers=4,
            solver_backend="process",
        )
        assert "detect.shards" not in rep.metrics.snapshot()
        assert _keys(rep) == _keys(ref)
        assert sorted(s.key for s in rep.suppressed) == sorted(
            s.key for s in ref.suppressed
        )


class TestDegradation:
    def test_shard_pool_death_falls_back(self):
        ref = _run(SCALED)
        with inject(FaultPlan.make(die=["worker:detect"])):
            rep = _run(SCALED, detect_workers=4, solver_backend="process")
        assert _keys(rep) == _keys(ref)
        assert _paths(rep) == _paths(ref)
        snap = rep.metrics.snapshot()
        assert snap.get("solver.pool_failures", 0) >= 1
        assert any("worker failure" in w for w in rep.degradation_warnings)

    def test_shard_pool_death_die_once(self, tmp_path):
        ref = _run(SCALED)
        plan = FaultPlan.make(
            die=["worker:detect"], die_once_path=str(tmp_path / "died")
        )
        with inject(plan):
            rep = _run(SCALED, detect_workers=4, solver_backend="process")
        assert _keys(rep) == _keys(ref)
