"""The staged pass pipeline: pass accounting, the artifact cache, and
cold/warm/incremental equivalence.

The load-bearing property is the last one: whatever the cache reuses,
the reported bug keys must be exactly what a fresh cold run on the same
source would produce — checked over the whole regression corpus, for
identical re-runs and for single-function edits.
"""

from __future__ import annotations

import dataclasses
import pathlib

import pytest

from repro.analysis import AnalysisConfig, ArtifactStore, Canary
from repro.analysis.config import CACHE_ONLY_FIELDS
from repro.analysis.passes import PassManager

from test_corpus import CORPUS_FILES, _parse_directives

CORPUS = pathlib.Path(__file__).parent / "corpus"

UAF = """
int *g;

void w_free() {
  free(g);
}

void w_use() {
  int x;
  x = *g;
  print(x);
}

int spin(int a) {
  return a + 1;
}

int main() {
  g = malloc(4);
  fork(t1, w_free);
  fork(t2, w_use);
  spin(1);
  return 0;
}
"""

#: a probe appended to any program: declared last, never called, no
#: memory traffic — label blocks keep every existing label (and bug key)
#: stable, while the module context fingerprint forces a full relower.
PROBE = "\nint incrprobe() {\n  return 1;\n}\n"


def _keys(report):
    return sorted(b.key for b in report.bugs)


# ----- pass manager ----------------------------------------------------------


class TestPassManager:
    def test_run_records_status_and_timing(self):
        pm = PassManager()
        assert pm.run("work", lambda: 42) == 42
        pm.cached("skip", detail="because")
        assert [r.status for r in pm.records] == ["run", "cached"]
        assert pm.records[0].seconds >= 0.0
        assert pm.records[1].seconds == 0.0
        assert pm.counts() == {"run": 1, "cached": 1}

    def test_seconds_of_sums_prefixed_passes(self):
        pm = PassManager()
        pm.record("dataflow:f", "run", 1.0)
        pm.record("dataflow:g", "run", 2.0)
        pm.record("detect:uaf", "run", 4.0)
        assert pm.seconds_of("dataflow") == pytest.approx(3.0)
        assert pm.seconds_of("dataflow", "detect") == pytest.approx(7.0)

    def test_statistics_rows_are_uniform(self):
        pm = PassManager()
        pm.run("p", lambda: None, detail="d")
        (row,) = pm.statistics()
        assert set(row) == {"name", "status", "seconds", "detail"}


# ----- config hashing --------------------------------------------------------


def _variant(value):
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, str):
        return value + "_alt"
    if isinstance(value, tuple):
        return value + ("alt",)
    if value is None:
        return 1
    raise AssertionError(f"no variant rule for {value!r}")


class TestConfigCacheKey:
    def test_stable_across_instances(self):
        assert AnalysisConfig().cache_key() == AnalysisConfig().cache_key()

    def test_every_analysis_knob_changes_the_key(self):
        base = AnalysisConfig()
        base_key = base.cache_key()
        seen = {base_key}
        for f in dataclasses.fields(base):
            if f.name in CACHE_ONLY_FIELDS:
                continue
            flipped = dataclasses.replace(
                base, **{f.name: _variant(getattr(base, f.name))}
            )
            key = flipped.cache_key()
            assert key != base_key, f"{f.name} did not change the cache key"
            assert key not in seen, f"{f.name} collided with another knob"
            seen.add(key)

    def test_cache_plumbing_fields_do_not_change_the_key(self):
        base = AnalysisConfig()
        assert (
            dataclasses.replace(base, cache_dir="/tmp/x", explain_cache=True)
            .cache_key()
            == base.cache_key()
        )


# ----- driver construction ---------------------------------------------------


class TestDriverConstruction:
    def test_default_config_is_fresh_per_instance(self):
        a, b = Canary(), Canary()
        assert a.config == AnalysisConfig()
        assert a.config is not b.config
        assert a.store is not b.store

    def test_explicit_store_is_shared(self):
        store = ArtifactStore()
        a = Canary(store=store)
        b = Canary(store=store)
        assert a.store is b.store


# ----- warm and incremental runs --------------------------------------------


class TestWarmRuns:
    def test_warm_run_executes_no_pass(self):
        canary = Canary()
        cold = canary.analyze_source(UAF, filename="uaf.mcc")
        warm = canary.analyze_source(UAF, filename="uaf.mcc")
        assert cold.passes_run()
        assert warm.passes_run() == []
        assert _keys(warm) == _keys(cold)
        assert warm.bundle is not None  # memory hits keep the live bundle
        assert warm.vfg_summary == cold.vfg_summary

    def test_use_cache_false_always_reruns(self):
        canary = Canary(AnalysisConfig(use_cache=False))
        first = canary.analyze_source(UAF, filename="uaf.mcc")
        second = canary.analyze_source(UAF, filename="uaf.mcc")
        assert second.passes_run() == first.passes_run() != []

    def test_track_memory_bypasses_the_run_cache(self):
        canary = Canary()
        canary.analyze_source(UAF, filename="uaf.mcc")
        tracked = canary.analyze_source(UAF, filename="uaf.mcc", track_memory=True)
        assert tracked.passes_run() != []
        assert tracked.peak_memory_bytes > 0

    def test_incremental_edit_skips_unaffected_passes(self):
        canary = Canary()
        cold = canary.analyze_source(UAF, filename="uaf.mcc")
        edited = UAF.replace("return a + 1;", "return a + 7;")
        incr = canary.analyze_source(edited, filename="uaf.mcc")
        ran = incr.passes_run()
        # The pointer/thread triple and the detection region are reusable
        # (the edit is inside a function with no thread or sink relevance),
        # and only the edited function's dataflow suffix re-runs.
        for name in ("pointer", "tcg", "mhp", "dataflow:w_free", "dataflow:w_use"):
            assert name not in ran
        assert not any(name.startswith("detect:") for name in ran)
        assert "dataflow:spin" in ran
        assert _keys(incr) == _keys(cold)
        fresh = Canary().analyze_source(edited, filename="uaf.mcc")
        assert _keys(incr) == _keys(fresh)

    def test_explain_cache_collects_events(self):
        canary = Canary(AnalysisConfig(explain_cache=True))
        canary.analyze_source(UAF, filename="uaf.mcc")
        warm = canary.analyze_source(UAF, filename="uaf.mcc")
        assert any(e.startswith("hit run") for e in warm.cache_events)
        assert warm.cache_statistics["artifact_hits"] >= 1
        assert "passes:" in warm.describe_statistics()
        assert "cached" in warm.describe_passes()


class TestDiskCache:
    def test_warm_rerun_across_driver_instances(self, tmp_path):
        cfg = AnalysisConfig(cache_dir=str(tmp_path))
        cold = Canary(cfg).analyze_source(UAF, filename="uaf.mcc")
        warm = Canary(cfg).analyze_source(UAF, filename="uaf.mcc")
        assert _keys(warm) == _keys(cold)
        assert warm.bugs[0].path == cold.bugs[0].path
        assert warm.bugs[0].inter_thread == cold.bugs[0].inter_thread
        assert [s.label for s in warm.bugs[0].statements] == [
            s.label for s in cold.bugs[0].statements
        ]
        # only the frontend re-executes; everything else rehydrates
        assert set(warm.passes_run()) == {"parse", "lower"}
        assert list(tmp_path.glob("run-*.json"))

    def test_stale_disk_entry_falls_back_to_analysis(self, tmp_path):
        cfg = AnalysisConfig(cache_dir=str(tmp_path))
        Canary(cfg).analyze_source(UAF, filename="uaf.mcc")
        for path in tmp_path.glob("run-*.json"):
            path.write_text('{"version": 999}')
        report = Canary(cfg).analyze_source(UAF, filename="uaf.mcc")
        assert "detect:use-after-free" in report.passes_run()
        assert _keys(report) == _keys(Canary().analyze_source(UAF))

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cfg = AnalysisConfig(cache_dir=str(tmp_path))
        Canary(cfg).analyze_source(UAF, filename="uaf.mcc")
        for path in tmp_path.glob("run-*.json"):
            path.write_text("not json {")
        report = Canary(cfg).analyze_source(UAF, filename="uaf.mcc")
        assert _keys(report) == _keys(Canary().analyze_source(UAF))

    def test_different_config_misses(self, tmp_path):
        cfg = AnalysisConfig(cache_dir=str(tmp_path))
        Canary(cfg).analyze_source(UAF, filename="uaf.mcc")
        other = AnalysisConfig(cache_dir=str(tmp_path), unroll_depth=3)
        report = Canary(other).analyze_source(UAF, filename="uaf.mcc")
        assert report.passes_run() != ["parse", "lower"]


# ----- corpus-wide equivalence ----------------------------------------------


@pytest.mark.parametrize("path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
def test_corpus_cold_warm_incremental_equivalence(path):
    """Over every corpus program: a warm re-run executes no pass and an
    appended-function edit re-analyzes — both with identical bug keys."""
    text = path.read_text()
    _expects, checkers, overrides = _parse_directives(text)
    config = AnalysisConfig(checkers=checkers, **overrides)
    canary = Canary(config)
    cold = canary.analyze_source(text, filename=path.name)
    warm = canary.analyze_source(text, filename=path.name)
    assert warm.passes_run() == [], path.name
    assert _keys(warm) == _keys(cold), path.name

    edited = text + PROBE
    incr = canary.analyze_source(edited, filename=path.name)
    assert incr.passes_run() != [], path.name
    # label blocks: appending a function shifts no existing label
    assert _keys(incr) == _keys(cold), path.name
    fresh = Canary(config).analyze_source(edited, filename=path.name)
    assert _keys(incr) == _keys(fresh), path.name
