"""Incremental-solving tests: UNKNOWN recovery, scopes, warm solvers.

Covers the reusable-solver bugfix sweep:

* every ``UNKNOWN`` exit of :meth:`SatSolver.solve` (conflict budget and
  deadline alike) leaves the solver backtracked to level zero with a
  consistent trail, so a warm instance can be re-solved;
* root simplification in ``add_clause`` is scope-aware — a clause
  simplified against a popped scope's assignment is restored;
* learnt-database reduction keeps verdicts exact;
* the warm per-family :class:`IncrementalSolver` agrees with the
  one-shot :class:`Solver` and with itself across sibling queries;
* corpus-wide bug keys are identical with ``incremental_smt`` on or off.
"""

import glob
import itertools
import os
import random

import pytest

from repro.analysis import AnalysisConfig, Canary
from repro.smt.sat import SAT, UNKNOWN, UNSAT, SatSolver
from repro.smt.solver import (
    IncrementalSolver,
    Solver,
    _warm_solver,
    reset_warm_solvers,
    solve_formula,
    warm_solver_counters,
)
from repro.smt.terms import and_, bool_var, int_var, lt, not_, or_


def pigeonhole(holes):
    """PHP(holes+1, holes) clauses — UNSAT, needs real search."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def brute_force_sat(num_vars, clauses, assumptions=()):
    for bits in itertools.product([False, True], repeat=num_vars):
        if any(bits[abs(lit) - 1] != (lit > 0) for lit in assumptions):
            continue
        if all(any(bits[abs(lit) - 1] == (lit > 0) for lit in c) for c in clauses):
            return True
    return False


def assert_at_root(solver):
    """The invariant every solve() exit must restore (the bugfix)."""
    assert solver._trail_lim == []
    assert solver._prop_head <= len(solver._trail)
    for lit in solver._trail:
        assert solver._level[abs(lit) - 1] == 0


class TestUnknownRecovery:
    def test_resolve_after_conflict_budget_unknown(self):
        solver = SatSolver()
        for clause in pigeonhole(4):
            assert solver.add_clause(clause)
        result = solver.solve(max_conflicts=3)
        assert result is UNKNOWN
        assert solver.unknown_reason == "conflicts"
        assert_at_root(solver)
        # the warm instance must still decide correctly
        assert solver.solve() is UNSAT

    def test_resolve_after_deadline_unknown(self):
        solver = SatSolver()
        for clause in pigeonhole(4):
            assert solver.add_clause(clause)
        import time

        result = solver.solve(deadline=time.monotonic() + 1e-9)
        assert result is UNKNOWN
        assert solver.unknown_reason == "deadline"
        assert_at_root(solver)
        assert solver.solve() is UNSAT

    def test_model_integrity_after_unknown(self):
        # A SAT instance inside a scope above UNSAT ballast: budget-UNKNOWN,
        # pop the ballast, then the re-solve must produce a valid model.
        base = [[1, 2], [-1, 2], [1, -2]]  # forces 2 true; SAT
        solver = SatSolver()
        for clause in base:
            assert solver.add_clause(clause)
        solver.push()
        offset = 4
        hard = [
            [lit + offset if lit > 0 else lit - offset for lit in c]
            for c in pigeonhole(4)
        ]
        for clause in hard:
            assert solver.add_clause(clause)
        import time

        assert solver.solve(max_conflicts=2) is UNKNOWN
        assert_at_root(solver)
        assert solver.solve(deadline=time.monotonic() + 1e-9) is UNKNOWN
        assert_at_root(solver)
        solver.pop()
        assert solver.solve() is SAT
        assert solver.model[2] is True
        for clause in base:
            assert any(solver.model.get(abs(l), False) == (l > 0) for l in clause)


class TestScopeAwareSimplification:
    def test_falsified_literal_restored_after_pop(self):
        # Inside the scope, literal -1 of the permanent clause is root-
        # falsified by the scoped unit [1]; the unsound simplification
        # would leave the permanent clause as unit [2] forever.
        solver = SatSolver()
        solver.push()
        assert solver.add_clause([1])
        assert solver.add_clause([-1, 2], scope=0)
        assert solver.solve() is SAT
        assert solver.model[2] is True  # simplification active in-scope
        solver.pop()
        # (a=False, b=False) satisfies (-a or b): must be allowed again
        assert solver.solve(assumptions=[-1, -2]) is SAT

    def test_satisfied_clause_restored_after_pop(self):
        # Inside the scope, the permanent clause [1, 2] is root-satisfied
        # by the scoped unit [1]; dropping it for good would lose the
        # constraint after pop.
        solver = SatSolver()
        solver.push()
        assert solver.add_clause([1])
        assert solver.add_clause([1, 2], scope=0)
        solver.pop()
        assert solver.solve(assumptions=[-1, -2]) is UNSAT
        assert solver.ok  # only the assumptions are to blame
        assert set(solver.failed_assumptions) <= {-1, -2}

    def test_unit_simplified_to_empty_under_scope(self):
        # [−1] is fully falsified by the scoped unit [1]: UNSAT only while
        # the scope lives.
        solver = SatSolver()
        solver.push()
        assert solver.add_clause([1])
        assert not solver.add_clause([-1], scope=0)
        assert not solver.ok
        assert solver.solve() is UNSAT
        solver.pop()
        assert solver.ok
        assert solver.solve(assumptions=[-1]) is SAT

    def test_cascading_dependency_across_scopes(self):
        solver = SatSolver()
        solver.push()
        assert solver.add_clause([1])
        solver.push()
        assert solver.add_clause([2])
        # simplifies against both scoped units; must survive both pops
        assert solver.add_clause([-1, -2, 3], scope=0)
        assert solver.solve() is SAT
        assert solver.model[3] is True
        solver.pop()
        solver.pop()
        assert solver.solve(assumptions=[1, 2, -3]) is UNSAT
        assert solver.solve(assumptions=[-1, -3]) is SAT


class TestDatabaseReduction:
    def test_reduction_keeps_verdict_exact(self):
        rng = random.Random(99)
        for trial in range(20):
            n = rng.randint(8, 12)
            clauses = [
                [
                    rng.choice([1, -1]) * rng.randint(1, n)
                    for _ in range(3)
                ]
                for _ in range(4 * n)
            ]
            expect = brute_force_sat(n, clauses)
            solver = SatSolver()
            if not all(solver.add_clause(list(c)) for c in clauses):
                assert not expect
                continue
            solver._max_learnts = 4  # force reductions early
            result = solver.solve()
            assert (result is SAT) == expect, f"trial {trial}"
        # at least one hard instance must actually have reduced
        solver = SatSolver()
        for clause in pigeonhole(5):
            solver.add_clause(clause)
        solver._max_learnts = 4
        assert solver.solve() is UNSAT
        assert solver.db_reductions >= 1


def _random_formula(rng, bools, ints):
    def atom():
        if rng.random() < 0.5:
            b = rng.choice(bools)
            return b if rng.random() < 0.5 else not_(b)
        x, y = rng.sample(ints, 2)
        a = lt(x, y)
        return a if rng.random() < 0.7 else not_(a)

    conjuncts = []
    for _ in range(rng.randint(2, 5)):
        if rng.random() < 0.4:
            conjuncts.append(atom())
        else:
            conjuncts.append(or_(*(atom() for _ in range(rng.randint(2, 3)))))
    return and_(*conjuncts)


class TestIncrementalSolverEquivalence:
    def test_warm_solver_agrees_with_one_shot(self):
        rng = random.Random(5150)
        bools = [bool_var(f"b{i}") for i in range(4)]
        ints = [int_var(f"t{i}") for i in range(5)]
        warm = IncrementalSolver()
        checked_sat = checked_unsat = 0
        for trial in range(120):
            formula = _random_formula(rng, bools, ints)
            reference = Solver()
            reference.add(formula)
            expect = reference.check()
            verdict, model, reason = warm.check_formula(formula)
            assert verdict == expect, f"trial {trial}"
            assert not warm.poisoned
            if verdict is SAT:
                checked_sat += 1
                assert model is not None
                assert model.eval(formula) is True, f"trial {trial}: bad model"
            else:
                checked_unsat += 1
        assert checked_sat > 10 and checked_unsat > 3
        stats = warm.statistics
        assert stats["conjuncts_reused"] > 0  # sibling overlap was exploited
        assert stats["queries"] == 120

    def test_model_restricted_to_query_atoms(self):
        warm = IncrementalSolver()
        a, b = bool_var("a"), bool_var("b")
        verdict, model, _ = warm.check_formula(a)
        assert verdict is SAT and model.eval(a) is True
        verdict, model, _ = warm.check_formula(b)
        assert verdict is SAT
        assert model.bool_value(b) is True
        assert model.bool_value(a) is None  # stale atom left out

    def test_unsat_query_does_not_poison_siblings(self):
        warm = IncrementalSolver()
        a = bool_var("a")
        x, y = int_var("x"), int_var("y")
        # Hide the bound contradiction behind disjunctions so the quick
        # semi-decision filter cannot refute it: the lazy theory loop must
        # learn a negative-cycle lemma to conclude UNSAT.
        hidden = and_(or_(a, lt(x, y)), or_(a, lt(y, x)), not_(a))
        assert warm.check_formula(hidden)[0] is UNSAT
        assert warm.statistics["theory_lemmas"] >= 1
        assert not warm.poisoned
        verdict, model, _ = warm.check_formula(and_(a, lt(x, y)))
        assert verdict is SAT
        assert model.eval(a) is True


class TestWarmRegistry:
    def setup_method(self):
        reset_warm_solvers()

    def teardown_method(self):
        reset_warm_solvers()

    def test_same_family_reuses_instance(self):
        first = _warm_solver("sink:free@main")
        second = _warm_solver("sink:free@main")
        other = _warm_solver("sink:free@worker")
        assert first is second
        assert first is not other
        assert warm_solver_counters()["warm_families"] == 2

    def test_solve_formula_family_path_accumulates(self):
        a = bool_var("a")
        x, y = int_var("x"), int_var("y")
        formula = and_(a, lt(x, y))
        verdict, ints, bools, seconds, reason = solve_formula(
            formula, family="sink:test"
        )
        assert verdict is SAT
        assert bools.get("a") is True
        assert reason == ""
        solve_formula(formula, family="sink:test")
        counters = warm_solver_counters()
        assert counters["queries"] == 2
        assert counters["conjuncts_reused"] >= 2  # second query all-warm
        reset_warm_solvers()
        assert warm_solver_counters()["warm_families"] == 0


CORPUS = sorted(glob.glob(os.path.join(os.path.dirname(__file__), "corpus", "*.mcc")))


class TestCorpusEquivalence:
    @pytest.mark.skipif(not CORPUS, reason="no corpus programs")
    def test_bug_keys_identical_with_and_without_incremental(self):
        keys = {}
        for incremental in (False, True):
            reset_warm_solvers()
            canary = Canary(
                AnalysisConfig(incremental_smt=incremental, use_cache=False)
            )
            found = {}
            for path in CORPUS:
                with open(path) as fh:
                    report = canary.analyze_source(fh.read(), filename=path)
                found[os.path.basename(path)] = sorted(
                    (b.kind, b.source.label, b.sink.label) for b in report.bugs
                )
            keys[incremental] = found
        assert keys[False] == keys[True]
