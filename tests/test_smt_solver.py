"""Tests for the DPLL(T) solver: SAT core, theory integration, models."""

import pytest

from repro.smt import (
    SAT,
    UNSAT,
    Solver,
    and_,
    bool_var,
    eq,
    ge,
    gt,
    iff,
    implies,
    int_const,
    int_var,
    is_satisfiable,
    le,
    lt,
    ne,
    not_,
    or_,
)


def check(*terms):
    s = Solver()
    s.add(*terms)
    return s.check()


class TestPropositional:
    def test_single_var_sat(self):
        assert check(bool_var("a")) is SAT

    def test_contradiction_unsat(self):
        a = bool_var("a")
        assert check(a, not_(a)) is UNSAT

    def test_unit_chain(self):
        a, b, c = (bool_var(n) for n in "abc")
        assert check(a, implies(a, b), implies(b, c), not_(c)) is UNSAT

    def test_disjunction_sat(self):
        a, b = bool_var("a"), bool_var("b")
        assert check(or_(a, b), not_(a)) is SAT

    def test_xor_like(self):
        a, b = bool_var("a"), bool_var("b")
        assert check(or_(a, b), or_(not_(a), not_(b))) is SAT
        assert check(or_(a, b), or_(not_(a), not_(b)), iff(a, b)) is UNSAT

    def test_pigeonhole_2_into_1(self):
        # two pigeons, one hole: p1h1, p2h1, not both
        p1, p2 = bool_var("p1h1"), bool_var("p2h1")
        assert check(p1, p2, or_(not_(p1), not_(p2))) is UNSAT

    def test_model_satisfies(self):
        a, b, c = (bool_var(n) for n in "abc")
        f = and_(or_(a, b), or_(not_(a), c), or_(not_(b), not_(c)))
        s = Solver()
        s.add(f)
        assert s.check() is SAT
        assert s.model().eval(f) is True

    def test_deep_formula(self):
        # chain of equivalences with a final contradiction
        xs = [bool_var(f"x{i}") for i in range(20)]
        chain = [iff(xs[i], xs[i + 1]) for i in range(19)]
        assert check(*chain, xs[0], not_(xs[19])) is UNSAT
        assert check(*chain, xs[0], xs[19]) is SAT


class TestDifferenceLogic:
    def test_simple_order_sat(self):
        x, y = int_var("x"), int_var("y")
        assert check(lt(x, y)) is SAT

    def test_order_cycle_unsat(self):
        x, y, z = int_var("x"), int_var("y"), int_var("z")
        assert check(lt(x, y), lt(y, z), lt(z, x)) is UNSAT

    def test_weak_cycle_sat(self):
        x, y = int_var("x"), int_var("y")
        assert check(le(x, y), le(y, x)) is SAT

    def test_strict_antisymmetry(self):
        x, y = int_var("x"), int_var("y")
        assert check(lt(x, y), lt(y, x)) is UNSAT

    def test_constant_bounds(self):
        x = int_var("x")
        assert check(lt(x, int_const(5)), gt(x, int_const(3))) is SAT
        assert check(lt(x, int_const(4)), gt(x, int_const(3))) is UNSAT  # integers!

    def test_equality(self):
        x, y = int_var("x"), int_var("y")
        assert check(eq(x, y), lt(x, y)) is UNSAT
        assert check(eq(x, y), le(x, y)) is SAT

    def test_disequality(self):
        x, y = int_var("x"), int_var("y")
        assert check(ne(x, y), eq(x, y)) is UNSAT
        assert check(ne(x, y)) is SAT

    def test_diseq_with_bounds(self):
        # x != y, 0 <= x <= 1, 0 <= y <= 1 is SAT (x=0,y=1)
        x, y = int_var("x"), int_var("y")
        zero, one = int_const(0), int_const(1)
        assert check(ne(x, y), ge(x, zero), le(x, one), ge(y, zero), le(y, one)) is SAT
        # forcing x == y too makes it UNSAT
        assert check(ne(x, y), eq(x, y), ge(x, zero)) is UNSAT

    def test_difference_constraint(self):
        x, y = int_var("x"), int_var("y")
        assert check(le(x - y, int_const(3)), ge(x - y, int_const(5))) is UNSAT
        assert check(le(x - y, int_const(3)), ge(x - y, int_const(2))) is SAT

    def test_int_model_values(self):
        x, y, z = int_var("x"), int_var("y"), int_var("z")
        s = Solver()
        s.add(lt(x, y), lt(y, z))
        assert s.check() is SAT
        m = s.model()
        assert m.int_value(x) < m.int_value(y) < m.int_value(z)


class TestMixedBooleanTheory:
    def test_guard_implies_order(self):
        # the Canary shape: boolean guard selects which order constraints apply
        g = bool_var("g")
        a, b = int_var("Oa"), int_var("Ob")
        assert check(implies(g, lt(a, b)), implies(not_(g), lt(b, a))) is SAT
        assert check(g, implies(g, lt(a, b)), lt(b, a)) is UNSAT

    def test_disjunctive_orders(self):
        # Eq. 2 shape: O_s' < O_s  or  O_l < O_s'
        s, l, s2 = int_var("Os"), int_var("Ol"), int_var("Os2")
        phi_ls = and_(lt(s, l), or_(lt(s2, s), lt(l, s2)))
        assert check(phi_ls) is SAT
        # pinning s2 strictly between s and l refutes it
        assert check(phi_ls, lt(s, s2), lt(s2, l)) is UNSAT

    def test_fig2_contradictory_guards(self):
        # theta and not theta on the same path: UNSAT regardless of orders
        theta = bool_var("theta1")
        o3, o6, o13 = int_var("O3"), int_var("O6"), int_var("O13")
        guard = and_(theta, not_(theta), lt(o13, o6), lt(o3, o13))
        assert check(guard) is UNSAT

    def test_theory_blocking_loop(self):
        # SAT core must enumerate boolean models until theory consistent
        p, q = bool_var("p"), bool_var("q")
        x, y, z = int_var("x"), int_var("y"), int_var("z")
        f = and_(
            or_(p, q),
            implies(p, and_(lt(x, y), lt(y, z), lt(z, x))),  # p branch theory-UNSAT
            implies(q, lt(x, y)),
        )
        s = Solver()
        s.add(f)
        assert s.check() is SAT
        assert s.model().eval(q) is True

    def test_all_branches_theory_unsat(self):
        p = bool_var("p")
        x, y = int_var("x"), int_var("y")
        f = and_(implies(p, lt(x, y)), implies(not_(p), lt(y, x)), lt(x, y), lt(y, x))
        assert check(f) is UNSAT


class TestStatistics:
    def test_quick_refutation_counted(self):
        a = bool_var("a")
        s = Solver()
        s.add(a, not_(a))
        assert s.check() is UNSAT
        assert s.statistics["quick_refuted"] == 1

    def test_is_satisfiable_helper(self):
        a = bool_var("a")
        assert is_satisfiable(a)
        assert not is_satisfiable(a, not_(a))


class TestEmptyAndTrivial:
    def test_empty_is_sat(self):
        assert Solver().check() is SAT

    def test_true_is_sat(self):
        from repro.smt import TRUE, FALSE

        assert check(TRUE) is SAT
        assert check(FALSE) is UNSAT
