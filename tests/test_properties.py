"""Property-based tests (hypothesis) for the core substrates.

Invariants covered:

* term constructors preserve boolean semantics and interning identity;
* the DPLL(T) solver agrees with brute-force enumeration on random
  propositional formulas;
* the semi-decision filter (`quick_unsat`) is *sound*: whatever it
  refutes, the full solver refutes;
* the difference-logic theory agrees with brute-force integer search on
  random bound systems;
* least-squares fitting recovers exact linear data;
* the workload generator always emits parseable, lowerable programs and
  Canary's verdict on them matches the injected ground truth.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt import (
    SAT,
    UNSAT,
    Solver,
    and_,
    bool_var,
    is_satisfiable,
    not_,
    or_,
    quick_unsat,
)
from repro.smt.terms import BoolTerm, TRUE, FALSE
from repro.smt.theory import DifferenceBound, DifferenceLogicSolver

# ---------------------------------------------------------------------------
# Random propositional formulas over a small variable pool


_VAR_NAMES = ["pa", "pb", "pc", "pd"]


def _formulas(depth: int = 3):
    leaves = st.sampled_from([bool_var(n) for n in _VAR_NAMES] + [TRUE, FALSE])

    def extend(children):
        return st.one_of(
            st.tuples(children).map(lambda t: not_(t[0])),
            st.tuples(children, children).map(lambda t: and_(t[0], t[1])),
            st.tuples(children, children).map(lambda t: or_(t[0], t[1])),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def _brute_force_sat(formula: BoolTerm) -> bool:
    for bits in itertools.product([False, True], repeat=len(_VAR_NAMES)):
        env = dict(zip(_VAR_NAMES, bits))
        if _eval(formula, env):
            return True
    return False


def _eval(t: BoolTerm, env) -> bool:
    from repro.smt.terms import And, BoolConst, BoolVar, Not, Or

    if isinstance(t, BoolConst):
        return t.value
    if isinstance(t, BoolVar):
        return env[t.name]
    if isinstance(t, Not):
        return not _eval(t.arg, env)
    if isinstance(t, And):
        return all(_eval(a, env) for a in t.args)
    if isinstance(t, Or):
        return any(_eval(a, env) for a in t.args)
    raise TypeError(t)


class TestSolverAgainstBruteForce:
    @given(_formulas())
    @settings(max_examples=150, deadline=None)
    def test_solver_matches_enumeration(self, formula):
        solver = Solver()
        solver.add(formula)
        assert (solver.check() is SAT) == _brute_force_sat(formula)

    @given(_formulas())
    @settings(max_examples=150, deadline=None)
    def test_model_satisfies_formula(self, formula):
        solver = Solver()
        solver.add(formula)
        if solver.check() is SAT:
            model = solver.model()
            value = model.eval(formula)
            # eval may be None for variables the model left unconstrained;
            # it must never be False.
            assert value is not False

    @given(_formulas())
    @settings(max_examples=150, deadline=None)
    def test_quick_unsat_sound(self, formula):
        if quick_unsat(formula):
            assert not _brute_force_sat(formula)

    @given(_formulas())
    @settings(max_examples=100, deadline=None)
    def test_negation_flips_tautologies(self, formula):
        # formula and ~formula cannot both be UNSAT
        assert is_satisfiable(formula) or is_satisfiable(not_(formula))

    @given(_formulas(), _formulas())
    @settings(max_examples=100, deadline=None)
    def test_conjunction_implies_both(self, f, g):
        if is_satisfiable(and_(f, g)):
            assert is_satisfiable(f)
            assert is_satisfiable(g)


class TestTermAlgebra:
    @given(_formulas())
    @settings(max_examples=100, deadline=None)
    def test_double_negation_identity(self, f):
        assert not_(not_(f)) is f

    @given(_formulas())
    @settings(max_examples=100, deadline=None)
    def test_interning(self, f):
        # reconstructing the same structure yields the same object
        assert and_(f, f) is f or isinstance(f, BoolTerm)
        assert and_(f, TRUE) is f
        assert or_(f, FALSE) is f

    @given(_formulas(), _formulas())
    @settings(max_examples=100, deadline=None)
    def test_and_commutative_semantics(self, f, g):
        assert _brute_force_sat(and_(f, g)) == _brute_force_sat(and_(g, f))


# ---------------------------------------------------------------------------
# Difference logic vs brute force


_bounds = st.lists(
    st.tuples(
        st.integers(0, 3),  # x index
        st.integers(0, 3),  # y index
        st.integers(-3, 3),  # c
    ),
    min_size=1,
    max_size=8,
)


def _brute_force_bounds(bounds) -> bool:
    names = sorted({b.x for b in bounds} | {b.y for b in bounds})
    window = range(-13, 14)
    for values in itertools.product(window, repeat=len(names)):
        env = dict(zip(names, values))
        if all(env[b.x] - env[b.y] <= b.c for b in bounds):
            return True
    return False


class TestDifferenceLogic:
    @given(_bounds)
    @settings(max_examples=80, deadline=None)
    def test_consistency_matches_brute_force(self, raw):
        bounds = [
            DifferenceBound(f"v{x}", f"v{y}", c) for x, y, c in raw if x != y
        ]
        if not bounds:
            return
        solver = DifferenceLogicSolver()
        for i, b in enumerate(bounds):
            solver.assert_bound(b, i)
        consistent = solver.check() is None
        assert consistent == _brute_force_bounds(bounds)

    @given(_bounds)
    @settings(max_examples=60, deadline=None)
    def test_model_satisfies_bounds(self, raw):
        bounds = [
            DifferenceBound(f"v{x}", f"v{y}", c) for x, y, c in raw if x != y
        ]
        if not bounds:
            return
        solver = DifferenceLogicSolver()
        for i, b in enumerate(bounds):
            solver.assert_bound(b, i)
        if solver.check() is None:
            model = solver.model()
            for b in bounds:
                assert model[b.x] - model[b.y] <= b.c

    @given(_bounds)
    @settings(max_examples=60, deadline=None)
    def test_core_is_inconsistent_subset(self, raw):
        bounds = [
            DifferenceBound(f"v{x}", f"v{y}", c) for x, y, c in raw if x != y
        ]
        if not bounds:
            return
        solver = DifferenceLogicSolver()
        for i, b in enumerate(bounds):
            solver.assert_bound(b, i)
        core = solver.check()
        if core is not None:
            subset = [bounds[i] for i in core]
            assert not _brute_force_bounds(subset)


# ---------------------------------------------------------------------------
# Curve fitting


class TestLinearFitProperties:
    @given(
        st.floats(-50, 50),
        st.floats(-50, 50),
        st.lists(st.floats(-100, 100), min_size=3, max_size=12, unique=True),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_recovery(self, slope, intercept, xs):
        from hypothesis import assume

        from repro.bench import linear_fit

        assume(max(xs) - min(xs) > 1e-3)  # avoid numerically-degenerate fits
        ys = [slope * x + intercept for x in xs]
        fit = linear_fit(xs, ys)
        assert abs(fit.slope - slope) < 1e-6 + 1e-6 * abs(slope)
        assert fit.r_squared > 0.999999 or all(abs(y - ys[0]) < 1e-9 for y in ys)


# ---------------------------------------------------------------------------
# Workload generator end-to-end


class TestGeneratorProperties:
    @given(
        st.integers(0, 2),  # real bugs
        st.integers(0, 2),  # canary fps
        st.integers(0, 3),  # guard baits
        st.integers(0, 3),  # order baits
        st.integers(0, 1000),  # seed
    )
    @settings(max_examples=15, deadline=None)
    def test_canary_verdict_matches_ground_truth(
        self, real, cfp, gbait, obait, seed
    ):
        from repro import Canary
        from repro.bench import ProjectSpec, generate_project

        spec = ProjectSpec(
            name="prop",
            target_lines=260,
            real_bugs=real,
            canary_fps=cfp,
            guard_baits=gbait,
            order_baits=obait,
            seed=seed,
        )
        source, truth = generate_project(spec)
        report = Canary().analyze_source(source)
        tps = sum(
            1
            for b in report.bugs
            if truth.classify_free_site(
                report.bundle.module.function_of(b.source)
            )
            == "tp"
        )
        assert tps == real  # every injected bug found, nothing more
        assert report.num_reports == real + cfp  # baits always pruned
