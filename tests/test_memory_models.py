"""Tests for the relaxed-memory extension (paper future work 2)."""

import pytest

from repro import AnalysisConfig, Canary
from repro.detection import OrderConstraintBuilder
from repro.frontend import parse_program
from repro.ir import LoadInst, StoreInst
from repro.lowering import lower_program
from repro.smt import TRUE
from repro.vfg import build_vfg

from programs import FIG2_BUGGY, FIG2_BUG_FREE, SIMPLE_UAF

# Two stores through *different pointer names*; the reader thread is
# forked after both.  Under SC the first store's value is dead before the
# fork, so freeing it is harmless.  Under PSO the stores may reorder, so
# the reader may observe the freed value.
PSO_SENSITIVE = """
void main() {
    int** slot = malloc();
    int** alias = slot;
    int* old = malloc();
    int* fresh = malloc();
    *slot = old;
    *alias = fresh;
    fork(t, user, slot);
    free(old);
}

void user(int** s) {
    int* v = *s;
    print(*v);
}
"""


def lower(src):
    return lower_program(parse_program(src))


def analyze(src, model):
    return Canary(AnalysisConfig(memory_model=model)).analyze_source(src)


class TestRelaxationClassification:
    @pytest.fixture()
    def pair(self):
        module = lower(
            """
            void main(int** a, int** b) {
                int* v = *b;
                *a = v;
                int* w = *b;
                *b = w;
            }
            """
        )
        bundle = build_vfg(module)
        body = module.functions["main"].body
        store_a = next(i for i in body if isinstance(i, StoreInst))
        load_after = [i for i in body if isinstance(i, LoadInst)][1]
        store_b = [i for i in body if isinstance(i, StoreInst)][1]
        return bundle, store_a, load_after, store_b

    def test_sc_keeps_all_orders(self, pair):
        bundle, store_a, load_after, store_b = pair
        builder = OrderConstraintBuilder(bundle, memory_model="sc")
        assert builder.program_order_pair(store_a, load_after) is not TRUE
        assert builder.program_order_pair(store_a, store_b) is not TRUE

    def test_tso_relaxes_store_load(self, pair):
        bundle, store_a, load_after, store_b = pair
        builder = OrderConstraintBuilder(bundle, memory_model="tso")
        assert builder.program_order_pair(store_a, load_after) is TRUE
        # ... but not store-store:
        assert builder.program_order_pair(store_a, store_b) is not TRUE

    def test_pso_relaxes_store_store_too(self, pair):
        bundle, store_a, load_after, store_b = pair
        builder = OrderConstraintBuilder(bundle, memory_model="pso")
        assert builder.program_order_pair(store_a, load_after) is TRUE
        assert builder.program_order_pair(store_a, store_b) is TRUE

    def test_same_pointer_stays_ordered(self):
        # Coherence: accesses through the identical pointer never relax.
        module = lower("void main(int** a) { *a = 1; int* v = *a; }")
        bundle = build_vfg(module)
        body = module.functions["main"].body
        store = next(i for i in body if isinstance(i, StoreInst))
        load = next(i for i in body if isinstance(i, LoadInst))
        builder = OrderConstraintBuilder(bundle, memory_model="pso")
        assert builder.program_order_pair(store, load) is not TRUE

    def test_unknown_model_rejected(self):
        module = lower("void main() {}")
        bundle = build_vfg(module)
        with pytest.raises(ValueError):
            OrderConstraintBuilder(bundle, memory_model="arm")


class TestEndToEnd:
    def test_pso_exposes_reordering_bug(self):
        sc = analyze(PSO_SENSITIVE, "sc")
        pso = analyze(PSO_SENSITIVE, "pso")
        assert sc.num_reports == 0, "under SC the old value is overwritten pre-fork"
        assert pso.num_reports >= 1, "store-store reordering exposes the freed value"

    def test_monotonicity_sc_tso_pso(self):
        # Relaxing the model can only add behaviors, never remove reports.
        for src in (FIG2_BUG_FREE, FIG2_BUGGY, SIMPLE_UAF, PSO_SENSITIVE):
            r_sc = analyze(src, "sc").num_reports
            r_tso = analyze(src, "tso").num_reports
            r_pso = analyze(src, "pso").num_reports
            assert r_sc <= r_tso <= r_pso

    def test_fig2_still_pruned_under_pso(self):
        # Guard contradiction is model-independent.
        assert analyze(FIG2_BUG_FREE, "pso").num_reports == 0

    def test_config_default_is_sc(self):
        assert AnalysisConfig().memory_model == "sc"
