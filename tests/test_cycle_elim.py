"""Tests for Andersen's analysis with online cycle elimination."""

import pytest

from repro.bench import ProjectSpec, generate_project
from repro.frontend import parse_program
from repro.ir import ForkInst, LoadInst, StoreInst, Variable
from repro.lowering import lower_program
from repro.pointer import andersen, andersen_collapsing

from programs import FIG2_BUGGY, SIMPLE_UAF, THROUGH_CALL


def lower(src):
    return lower_program(parse_program(src))


def all_variables(module):
    out = []
    for func in module.functions.values():
        out.extend(func.params)
        for inst in func.body:
            var = inst.defined_var()
            if var is not None:
                out.append(var)
    return out


def assert_equivalent(module):
    plain = andersen(module)
    fancy = andersen_collapsing(module)
    for var in all_variables(module):
        assert plain.points_to(var) == fancy.points_to(var), repr(var)


class TestEquivalence:
    @pytest.mark.parametrize("src", [SIMPLE_UAF, FIG2_BUGGY, THROUGH_CALL])
    def test_same_points_to_small_programs(self, src):
        assert_equivalent(lower(src))

    def test_same_points_to_generated(self):
        source, _ = generate_project(
            ProjectSpec(name="ce", target_lines=500, real_bugs=1, seed=17)
        )
        assert_equivalent(lower(source))

    def test_copy_cycle_collapsed(self):
        # p -> q -> r -> p is a pure copy cycle: all three end equal, and
        # the collapsing solver merges them.
        module = lower(
            """
            void main(int* seedv) {
                int* p = malloc();
                int* q = p;
                int* r = q;
                p = r;
                int* s = p;
            }
            """
        )
        # NOTE: MiniCC lowering renames (SSA), so build an artificial cycle
        # through memory instead: *box flows both ways.
        module = lower(
            """
            void main() {
                int** a = malloc();
                int** b = malloc();
                int* x = malloc();
                *a = x;
                int* va = *a;
                *b = va;
                int* vb = *b;
                *a = vb;
                int* final = *a;
            }
            """
        )
        plain = andersen(module)
        fancy = andersen_collapsing(module)
        for var in all_variables(module):
            assert plain.points_to(var) == fancy.points_to(var)

    def test_callees_equivalent(self):
        module = lower(
            """
            void work() {}
            void main() {
                int* fp = work;
                fork(t, fp);
            }
            """
        )
        fork = next(
            i for i in module.functions["main"].body if isinstance(i, ForkInst)
        )
        assert andersen(module).callees(fork.callee) == andersen_collapsing(
            module
        ).callees(fork.callee)

    def test_collapse_counter_exposed(self):
        source, _ = generate_project(
            ProjectSpec(name="ce2", target_lines=800, real_bugs=1, seed=23)
        )
        result = andersen_collapsing(lower(source))
        assert hasattr(result, "collapsed_nodes")
        assert result.collapsed_nodes >= 0


class TestDelegation:
    def test_flag_delegates(self):
        module = lower(SIMPLE_UAF)
        result = andersen(module, collapse_cycles=True)
        assert hasattr(result, "collapsed_nodes")

    def test_deadline_respected(self):
        import time

        module = lower(SIMPLE_UAF)
        # an already-expired deadline: solver returns promptly with a
        # partial (under-approximate) result
        result = andersen_collapsing(module, deadline=time.perf_counter() - 1)
        assert result is not None
