"""End-to-end checker tests: the paper's bug classes on small programs."""

import pytest

from repro import AnalysisConfig, Canary

from programs import (
    DOUBLE_FREE,
    FIG2_BUGGY,
    FIG2_BUG_FREE,
    JOIN_PROTECTED,
    NULL_SHARED,
    SIMPLE_UAF,
    TAINT_LEAK,
    THROUGH_CALL,
    USE_BEFORE_FORK,
)


def analyze(src, **cfg):
    config = AnalysisConfig(**cfg) if cfg else AnalysisConfig()
    return Canary(config).analyze_source(src)


class TestUseAfterFree:
    def test_fig2_bug_free_no_report(self):
        # The paper's headline example: contradictory guards, no report.
        report = analyze(FIG2_BUG_FREE)
        assert report.num_reports == 0

    def test_fig2_buggy_reports(self):
        report = analyze(FIG2_BUGGY)
        assert report.num_reports == 1
        bug = report.bugs[0]
        assert bug.kind == "use-after-free"
        assert bug.inter_thread

    def test_simple_uaf(self):
        report = analyze(SIMPLE_UAF)
        assert report.num_reports >= 1
        assert all(b.kind == "use-after-free" for b in report.bugs)

    def test_join_protected_no_report(self):
        report = analyze(JOIN_PROTECTED)
        assert report.num_reports == 0

    def test_use_before_fork_no_report(self):
        # The dereference precedes the fork; the free cannot precede it.
        report = analyze(USE_BEFORE_FORK)
        assert report.num_reports == 0

    def test_uaf_through_calls(self):
        report = analyze(THROUGH_CALL)
        assert report.num_reports >= 1

    def test_witness_order_is_consistent(self):
        report = analyze(SIMPLE_UAF)
        bug = report.bugs[0]
        if bug.witness_order:
            free_o = bug.witness_order.get(f"O{bug.source.label}")
            sink_o = bug.witness_order.get(f"O{bug.sink.label}")
            if free_o is not None and sink_o is not None:
                assert free_o < sink_o

    def test_report_describes_path(self):
        report = analyze(SIMPLE_UAF)
        text = report.bugs[0].describe()
        assert "use-after-free" in text
        assert "free" in text

    def test_ordered_free_then_use_found(self):
        # Inter-thread UAF whose endpoints are *ordered* by a join:
        # the free and the use never run concurrently, yet the bug is
        # real (free happens-before use).  MHP-based admission would
        # miss it; thread-crossing admission plus O_free < O_use finds it.
        src = """
        void main() {
            int** x = malloc();
            int* a = malloc();
            *x = a;
            fork(t, worker, x);
            join(t);
            int* c = *x;
            print(*c);
        }
        void worker(int** y) {
            int* old = *y;
            free(old);
        }
        """
        report = analyze(src)
        assert report.num_reports == 1
        assert report.bugs[0].inter_thread

    def test_intra_thread_suppressed_by_default(self):
        # A purely sequential UAF is not an *inter-thread* bug.
        report = analyze(
            """
            void main() {
                int* p = malloc();
                free(p);
                print(*p);
            }
            """
        )
        assert report.num_reports == 0

    def test_intra_thread_found_when_enabled(self):
        report = analyze(
            """
            void main() {
                int* p = malloc();
                free(p);
                print(*p);
            }
            """,
            inter_thread_only=False,
        )
        assert report.num_reports == 1


class TestDoubleFree:
    def test_double_free_across_threads(self):
        report = analyze(DOUBLE_FREE, checkers=("double-free",))
        assert report.num_reports >= 1
        assert report.bugs[0].kind == "double-free"

    def test_single_free_no_report(self):
        report = analyze(SIMPLE_UAF, checkers=("double-free",))
        assert report.num_reports == 0

    def test_pair_reported_once(self):
        report = analyze(DOUBLE_FREE, checkers=("double-free",))
        pairs = {
            tuple(sorted((b.source.label, b.sink.label))) for b in report.bugs
        }
        assert len(pairs) == len(report.bugs)


class TestNullDeref:
    def test_null_through_shared_memory(self):
        report = analyze(NULL_SHARED, checkers=("null-deref",))
        assert report.num_reports >= 1
        assert report.bugs[0].kind == "null-deref"

    def test_no_null_no_report(self):
        report = analyze(SIMPLE_UAF, checkers=("null-deref",))
        assert report.num_reports == 0

    def test_guarded_null_not_reported(self):
        # null is stored under theta, deref under !theta: infeasible.
        src = """
        extern int theta;
        void main() {
            int** x = malloc();
            int* a = malloc();
            *x = a;
            fork(t, nuller, x);
            if (!theta) {
                int* c = *x;
                *c = 5;
            }
        }
        void nuller(int** y) {
            if (theta) { *y = null; }
        }
        """
        # Wait: guards theta (store null) and !theta (deref) contradict.
        report = analyze(src, checkers=("null-deref",))
        assert report.num_reports == 0


class TestTaintLeak:
    def test_leak_through_shared_memory(self):
        report = analyze(TAINT_LEAK, checkers=("info-leak",))
        assert report.num_reports >= 1
        assert report.bugs[0].kind == "info-leak"

    def test_no_source_no_report(self):
        report = analyze(SIMPLE_UAF, checkers=("info-leak",))
        assert report.num_reports == 0

    def test_sanitized_flow_not_tracked(self):
        # value never reaches the sink
        src = """
        void main() {
            int* secret = taint_source();
            int* benign = malloc();
            taint_sink(benign);
        }
        """
        report = analyze(src, checkers=("info-leak",))
        assert report.num_reports == 0


class TestMultipleCheckers:
    def test_all_checkers_together(self):
        report = analyze(
            DOUBLE_FREE,
            checkers=("use-after-free", "double-free", "null-deref", "info-leak"),
        )
        kinds = {b.kind for b in report.bugs}
        assert "double-free" in kinds

    def test_report_summary(self):
        report = analyze(SIMPLE_UAF)
        text = report.describe()
        assert "report" in text
        assert report.vfg_summary["threads"] == 2
        assert "vfg" in report.timings


class TestAblations:
    def test_no_order_constraints_more_reports(self):
        # Without Φ_po/Φ_ls the join-protected program is (wrongly) flagged.
        precise = analyze(JOIN_PROTECTED)
        sloppy = analyze(JOIN_PROTECTED, order_constraints=False, use_mhp=False)
        assert precise.num_reports == 0
        assert sloppy.num_reports >= precise.num_reports

    def test_no_guard_pruning_same_verdict(self):
        # Pruning is an optimization: verdicts must not change.
        a = analyze(FIG2_BUG_FREE, prune_guards=True)
        b = analyze(FIG2_BUG_FREE, prune_guards=False)
        assert a.num_reports == b.num_reports == 0
        c = analyze(FIG2_BUGGY, prune_guards=False)
        assert c.num_reports == 1

    def test_parallel_solving_same_result(self):
        a = analyze(SIMPLE_UAF)
        b = analyze(SIMPLE_UAF, parallel_solving=True)
        assert a.num_reports == b.num_reports
