"""Regression corpus runner.

Each ``tests/corpus/*.mcc`` file carries directives in its leading
comments:

* ``// EXPECT <kind> <min> [<max>]`` — expected report count for that
  checker kind (``max`` defaults to ``min``);
* ``// CHECKERS a,b,c``              — checkers to run (default: the
  kinds named in EXPECT lines, or use-after-free);
* ``// CONFIG key=value``            — AnalysisConfig overrides
  (booleans and strings supported).

This is the analyzer's lit-test-style suite: every entry is a distinct
concurrency pattern with a pinned verdict.
"""

from __future__ import annotations

import pathlib
import re
from typing import Dict, List, Tuple

import pytest

from repro import AnalysisConfig, Canary

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.mcc"))

_EXPECT_RE = re.compile(r"^//\s*EXPECT\s+(\S+)\s+(\d+)(?:\s+(\d+))?\s*$")
_CHECKERS_RE = re.compile(r"^//\s*CHECKERS\s+(\S+)\s*$")
_CONFIG_RE = re.compile(r"^//\s*CONFIG\s+(\w+)=(\S+)\s*$")


def _parse_directives(text: str):
    expects: Dict[str, Tuple[int, int]] = {}
    checkers: List[str] = []
    config: Dict[str, object] = {}
    for line in text.splitlines():
        m = _EXPECT_RE.match(line.strip())
        if m:
            kind, lo, hi = m.group(1), int(m.group(2)), m.group(3)
            expects[kind] = (lo, int(hi) if hi is not None else lo)
            continue
        m = _CHECKERS_RE.match(line.strip())
        if m:
            checkers = [c.strip() for c in m.group(1).split(",")]
            continue
        m = _CONFIG_RE.match(line.strip())
        if m:
            key, raw = m.group(1), m.group(2)
            if raw in ("true", "false"):
                config[key] = raw == "true"
            elif raw.isdigit():
                config[key] = int(raw)
            else:
                config[key] = raw
    if not checkers:
        checkers = sorted(expects) or ["use-after-free"]
    return expects, tuple(checkers), config


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_program(path: pathlib.Path):
    text = path.read_text()
    expects, checkers, overrides = _parse_directives(text)
    assert expects, f"{path.name}: no EXPECT directive"
    config = AnalysisConfig(checkers=checkers, **overrides)
    report = Canary(config).analyze_source(text, filename=path.name)
    counts: Dict[str, int] = {}
    for bug in report.bugs:
        counts[bug.kind] = counts.get(bug.kind, 0) + 1
    for kind, (lo, hi) in expects.items():
        got = counts.get(kind, 0)
        assert lo <= got <= hi, (
            f"{path.name}: expected {lo}..{hi} {kind} report(s), got {got}\n"
            + "\n".join(b.describe() for b in report.bugs)
        )


def test_corpus_not_empty():
    assert len(CORPUS_FILES) >= 20
