"""Tests for monolithic array accesses (paper §6: "arrays monolithic")."""

import pytest

from repro import AnalysisConfig, Canary
from repro.frontend import ParseError, parse_program
from repro.frontend import ast_nodes as A
from repro.ir import LoadInst, StoreInst
from repro.lowering import lower_program


def lower(src):
    return lower_program(parse_program(src))


class TestParsing:
    def test_index_expr(self):
        prog = parse_program("void main(int* p) { int x = p[3]; }")
        init = prog.functions[0].body.body[0].init
        assert isinstance(init, A.IndexExpr)
        assert isinstance(init.index, A.NumberExpr)

    def test_index_store(self):
        prog = parse_program("void main(int* p) { p[2] = 9; }")
        stmt = prog.functions[0].body.body[0]
        assert isinstance(stmt, A.IndexStoreStmt)

    def test_chained_index(self):
        prog = parse_program("void main(int** p) { int x = p[1][2]; }")
        init = prog.functions[0].body.body[0].init
        assert isinstance(init, A.IndexExpr)
        assert isinstance(init.base, A.IndexExpr)

    def test_index_with_expression(self):
        prog = parse_program("void main(int* p, int i) { int x = p[i + 1]; }")
        init = prog.functions[0].body.body[0].init
        assert isinstance(init.index, A.BinaryExpr)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse_program("void main() { 3 = 4; }")


class TestLowering:
    def test_index_load_is_plain_load(self):
        module = lower("void main(int* p) { int x = p[5]; }")
        loads = [i for i in module.functions["main"].body if isinstance(i, LoadInst)]
        assert len(loads) == 1
        assert loads[0].pointer is module.functions["main"].params[0]

    def test_index_store_is_plain_store(self):
        module = lower("void main(int* p) { p[0] = 42; }")
        stores = [i for i in module.functions["main"].body if isinstance(i, StoreInst)]
        assert len(stores) == 1
        assert stores[0].pointer is module.functions["main"].params[0]

    def test_index_side_effects_evaluated(self):
        # the index expression's calls still execute
        module = lower(
            """
            int next() { return 1; }
            void main(int* p) { int x = p[next()]; }
            """
        )
        from repro.ir import CallInst

        calls = [i for i in module.functions["main"].body if isinstance(i, CallInst)]
        assert len(calls) == 1


class TestAnalysis:
    def test_monolithic_array_race(self):
        # Writes to arr[0] and reads of arr[7] alias (monolithic): the
        # inter-thread UAF through an "array slot" is reported.
        src = """
        void worker(int** arr) {
            int* buf = malloc();
            arr[0] = buf;
            free(buf);
        }
        void main() {
            int** arr = malloc();
            int* init = malloc();
            arr[3] = init;
            fork(t, worker, arr);
            int* v = arr[7];
            print(*v);
        }
        """
        report = Canary().analyze_source(src)
        assert report.num_reports == 1

    def test_distinct_arrays_do_not_alias(self):
        src = """
        void worker(int** arr) {
            int* buf = malloc();
            arr[0] = buf;
            free(buf);
        }
        void main() {
            int** arr_a = malloc();
            int** arr_b = malloc();
            int* init = malloc();
            arr_a[0] = init;
            arr_b[0] = init;
            fork(t, worker, arr_a);
            int* v = arr_b[0];
            print(*v);
        }
        """
        report = Canary().analyze_source(src)
        assert report.num_reports == 0
