"""Random MiniCC program generator for differential testing.

Unlike the benchmark generator (which injects *known* patterns), this
one composes random store/load/free/branch/fork soups — programs nobody
designed — to cross-check the analyses against each other and against
the concrete interpreter.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["random_program", "scaled_program", "lock_bait_program"]


def random_program(seed: int, n_workers: int = 2, ops_per_body: int = 6) -> str:
    rng = random.Random(seed)
    n_slots = rng.randint(1, 3)
    n_externs = 2

    lines: List[str] = []
    for i in range(n_externs):
        lines.append(f"extern int cfg{i};")
    lines.append("")

    def body_ops(prefix: str, indent: str, rng: random.Random) -> List[str]:
        ops: List[str] = []
        locals_: List[str] = []
        counter = [0]

        def fresh(kind: str) -> str:
            counter[0] += 1
            return f"{prefix}_{kind}{counter[0]}"

        depth = 0
        for _ in range(ops_per_body):
            pad = indent + "    " * depth
            slot = f"slot{rng.randrange(n_slots)}"
            choice = rng.randrange(8)
            if choice == 0:  # allocate + publish
                v = fresh("p")
                ops.append(f"{pad}int* {v} = malloc();")
                ops.append(f"{pad}*{slot} = {v};")
                locals_.append(v)
            elif choice == 1:  # load
                v = fresh("l")
                ops.append(f"{pad}int* {v} = *{slot};")
                locals_.append(v)
            elif choice == 2 and locals_:  # free a local pointer
                ops.append(f"{pad}free({rng.choice(locals_)});")
            elif choice == 3 and locals_:  # deref a local pointer
                ops.append(f"{pad}print(*{rng.choice(locals_)});")
            elif choice == 4 and depth < 2:  # open a guard
                cfg = f"cfg{rng.randrange(n_externs)}"
                cond = rng.choice([cfg, f"!{cfg}", f"{cfg} > {rng.randrange(4)}"])
                ops.append(f"{pad}if ({cond}) {{")
                depth += 1
            elif choice == 5 and depth > 0:  # close a guard
                depth -= 1
                ops.append(f"{indent}{'    ' * depth}}}")
            elif choice == 6 and locals_:  # republish
                ops.append(f"{pad}*{slot} = {rng.choice(locals_)};")
            else:  # arithmetic noise
                v = fresh("n")
                ops.append(f"{pad}int {v} = {rng.randrange(10)} + {rng.randrange(10)};")
        while depth > 0:
            depth -= 1
            ops.append(f"{indent}{'    ' * depth}}}")
        return ops

    worker_params = ", ".join(f"int** slot{k}" for k in range(n_slots))
    for w in range(n_workers):
        lines.append(f"void worker{w}({worker_params}) {{")
        lines.extend(body_ops(f"w{w}", "    ", rng))
        lines.append("}")
        lines.append("")

    lines.append("void main() {")
    for k in range(n_slots):
        lines.append(f"    int** slot{k} = malloc();")
        lines.append(f"    int* init{k} = malloc();")
        lines.append(f"    *slot{k} = init{k};")
    slots_args = ", ".join(f"slot{k}" for k in range(n_slots))
    for w in range(n_workers):
        lines.append(f"    fork(t{w}, worker{w}, {slots_args});")
    lines.extend(body_ops("m", "    ", rng))
    if rng.random() < 0.4:
        lines.append(f"    join(t{rng.randrange(n_workers)});")
        lines.extend(body_ops("m2", "    ", rng))
    lines.append("}")
    return "\n".join(lines) + "\n"


def lock_bait_program(
    seed: int,
    n_workers: int = 2,
    protected: bool = True,
    ops_per_body: int = 4,
) -> str:
    """Lock-protected bait (the paper's Fig. 2 false-positive class):
    every access to the shared cell sits inside a critical section.

    With ``protected`` every thread takes the *same* mutex, so a
    lock-aware analysis must stay silent on the conflicting accesses;
    with ``protected=False`` each thread takes its own private mutex and
    the very same accesses race.  The generated access soup is random
    but the locking discipline is exact, which makes the pair a
    differential oracle for the data-race checker's lock-set filter.
    """
    rng = random.Random(seed)

    def body_ops(prefix: str, mutex: str) -> List[str]:
        ops: List[str] = [f"    lock({mutex});"]
        for i in range(ops_per_body):
            choice = rng.randrange(3)
            if choice == 0:
                ops.append(f"    *c = {rng.randrange(100)};")
            elif choice == 1:
                ops.append(f"    int {prefix}_r{i} = *c;")
            else:
                ops.append(f"    *c = *c + {rng.randrange(10)};")
        ops.append(f"    unlock({mutex});")
        return ops

    lines: List[str] = []
    for w in range(n_workers):
        mutex = "m" if protected else f"m{w}"
        lines.append(f"void worker{w}(int* c) {{")
        lines.extend(body_ops(f"w{w}", mutex))
        lines.append("}")
        lines.append("")
    lines.append("void main() {")
    lines.append("    int* c = malloc();")
    lines.append("    *c = 0;")
    for w in range(n_workers):
        lines.append(f"    fork(t{w}, worker{w}, c);")
    main_mutex = "m" if protected else "mmain"
    lines.extend(body_ops("m", main_mutex))
    lines.append("}")
    return "\n".join(lines) + "\n"


def scaled_program(
    seed: int = 0,
    n_groups: int = 60,
    helpers_per_group: int = 5,
    bug_groups: int = 2,
) -> str:
    """The scale knob: a multi-hundred-function module for the sharding
    benchmark (``n_groups * (helpers_per_group + 4) + 1`` functions, one
    thread per group, mixed escape patterns).

    Each group owns a shared slot and exercises a different escape route:
    the slot and its initial object escape through the fork argument,
    while the group's fresh allocation escapes *only* through a store
    inside ``publish<g>`` — a summary-boundary escape, invisible to any
    per-function view that drops boundary stores.  Exactly ``bug_groups``
    groups contain a deterministic use-after-free (worker republishes and
    frees, main reads), so expected bug keys are independent of scale.
    """
    rng = random.Random(seed)
    lines: List[str] = ["extern int mode;", ""]
    for g in range(n_groups):
        for j in range(helpers_per_group):
            lines.append(f"void help{g}_{j}(int** s) {{")
            lines.append(f"    int* h{g}_{j} = *s;")
            lines.append(f"    *s = h{g}_{j};")
            if j % 2 == 0:
                lines.append(f"    print(*h{g}_{j});")
            else:
                lines.append(f"    int n{g}_{j} = {j} + {rng.randrange(7)};")
            lines.append("}")
            lines.append("")
        lines.append(f"void publish{g}(int** s, int* p) {{ *s = p; }}")
        lines.append("")
        lines.append(f"void alloc{g}(int** s) {{")
        lines.append(f"    int* fresh{g} = malloc();")
        lines.append(f"    publish{g}(s, fresh{g});")
        lines.append("}")
        lines.append("")
        lines.append(f"void reader{g}(int** s) {{")
        lines.append(f"    int* r{g} = *s;")
        lines.append(f"    print(*r{g});")
        lines.append("}")
        lines.append("")
        lines.append(f"void wthread{g}(int** s) {{")
        if g < bug_groups:
            lines.append(f"    int* b{g} = malloc();")
            lines.append(f"    *s = b{g};")
            lines.append(f"    free(b{g});")
        else:
            lines.append(f"    alloc{g}(s);")
            for j in range(helpers_per_group):
                lines.append(f"    help{g}_{j}(s);")
            lines.append(f"    reader{g}(s);")
        lines.append("}")
        lines.append("")
    lines.append("void main() {")
    for g in range(n_groups):
        lines.append(f"    int** slot{g} = malloc();")
        lines.append(f"    int* init{g} = malloc();")
        lines.append(f"    *slot{g} = init{g};")
        lines.append(f"    fork(t{g}, wthread{g}, slot{g});")
    for g in range(n_groups):
        lines.append(f"    int* v{g} = *slot{g};")
        lines.append(f"    print(*v{g});")
    lines.append("}")
    return "\n".join(lines) + "\n"


def detection_scaled_program(
    n_threads: int = 64,
    n_slots: int = 3,
    pad_functions: int = 0,
) -> str:
    """The detection-heavy companion to :func:`scaled_program`: every
    writer thread republishes-and-frees on every shared slot, so each
    slot has ``n_threads`` interfering stores and every candidate's SMT
    order constraints grow with that count — the detect phase dominates
    the run instead of the summary phase.

    ``pad_functions`` adds trivial integer helpers (called from main) to
    hit a target module size without changing the detection load; the
    sharding benchmark pads to the standard 721-function subject
    (``n_threads + pad_functions + 1`` functions).  Deterministic: no
    randomness, bug keys depend only on the parameters.
    """
    lines: List[str] = ["extern int mode;", ""]
    for t in range(n_threads):
        lines.append(f"void wt{t}(int** s) {{")
        lines.append(f"    int* b{t} = malloc();")
        lines.append(f"    *s = b{t};")
        lines.append(f"    free(b{t});")
        lines.append("}")
        lines.append("")
    for p in range(pad_functions):
        lines.append(f"void pad{p}(int x) {{")
        lines.append(f"    int y{p} = x + {p};")
        lines.append(f"    print(y{p});")
        lines.append("}")
        lines.append("")
    lines.append("void main() {")
    for s in range(n_slots):
        lines.append(f"    int** slot{s} = malloc();")
        lines.append(f"    int* init{s} = malloc();")
        lines.append(f"    *slot{s} = init{s};")
        for t in range(n_threads):
            lines.append(f"    fork(t{s}_{t}, wt{t}, slot{s});")
    for p in range(pad_functions):
        lines.append(f"    pad{p}({p});")
    for s in range(n_slots):
        lines.append(f"    int* v{s} = *slot{s};")
        lines.append(f"    print(*v{s});")
    lines.append("}")
    return "\n".join(lines) + "\n"
