"""Coverage for the quick semi-decision filter and the Tseitin encoder.

``quick_unsat`` / ``GuardPrefix`` are *sound but incomplete* refuters:
``True``/unsat must imply real unsatisfiability (checked here against the
full solver), ``False`` promises nothing.  The CNF encoder is checked by
round-trip: encoding a term, solving the CNF, and evaluating the original
term under the decoded model.
"""

import random

from repro.smt.cnf import CnfEncoder
from repro.smt.sat import SAT, UNSAT, SatSolver
from repro.smt.simplify import GuardPrefix, quick_unsat, simplify_conjunction
from repro.smt.solver import Model, Solver
from repro.smt.terms import (
    FALSE,
    TRUE,
    and_,
    bool_var,
    eq,
    int_var,
    le,
    lt,
    not_,
    or_,
)


def _random_guard(rng, bools, ints):
    def literal():
        roll = rng.random()
        if roll < 0.4:
            b = rng.choice(bools)
            return b if rng.random() < 0.5 else not_(b)
        x, y = rng.sample(ints, 2)
        atom = lt(x, y) if roll < 0.8 else le(x, y)
        return atom if rng.random() < 0.7 else not_(atom)

    return and_(*(literal() for _ in range(rng.randint(1, 6))))


class TestQuickUnsat:
    def test_constants(self):
        assert quick_unsat(FALSE)
        assert not quick_unsat(TRUE)

    def test_complementary_boolean_literals(self):
        a = bool_var("a")
        assert quick_unsat(and_(a, not_(a), bool_var("b"))) or and_(
            a, not_(a)
        ) is FALSE  # smart constructors may cancel first

    def test_negative_cycle_detected(self):
        x, y, z = int_var("x"), int_var("y"), int_var("z")
        assert quick_unsat(and_(lt(x, y), lt(y, z), lt(z, x)))

    def test_satisfiable_chain_not_refuted(self):
        x, y, z = int_var("x"), int_var("y"), int_var("z")
        assert not quick_unsat(and_(lt(x, y), lt(y, z), le(x, z)))

    def test_soundness_against_full_solver(self):
        """quick_unsat(f) == True must imply the solver says UNSAT."""
        rng = random.Random(31337)
        bools = [bool_var(f"g{i}") for i in range(3)]
        ints = [int_var(f"o{i}") for i in range(4)]
        refuted = 0
        for _ in range(200):
            guard = _random_guard(rng, bools, ints)
            if quick_unsat(guard):
                refuted += 1
                solver = Solver()
                solver.add(guard)
                assert solver.check() is UNSAT, f"unsound quick refutation: {guard}"
        assert refuted > 5  # the generator must exercise the refuter

    def test_simplify_conjunction(self):
        x, y = int_var("x"), int_var("y")
        contradiction = and_(lt(x, y), lt(y, x))
        assert simplify_conjunction(contradiction) is FALSE
        fine = and_(lt(x, y), bool_var("a"))
        assert simplify_conjunction(fine) is fine


class TestGuardPrefix:
    def test_incremental_matches_batch(self):
        rng = random.Random(4242)
        bools = [bool_var(f"g{i}") for i in range(3)]
        ints = [int_var(f"o{i}") for i in range(4)]
        for _ in range(150):
            guards = [_random_guard(rng, bools, ints) for _ in range(rng.randint(1, 5))]
            prefix = GuardPrefix()
            incremental = False
            for g in guards:
                incremental = prefix.push(g) or incremental
            # the prefix refutes only what quick_unsat would refute given
            # the same accumulated literals — and must stay sound
            if incremental or prefix.unsat:
                solver = Solver()
                solver.add(*guards)
                assert solver.check() is UNSAT

    def test_pop_restores_satisfiable_state(self):
        x, y = int_var("x"), int_var("y")
        prefix = GuardPrefix()
        assert not prefix.push(lt(x, y))
        assert prefix.push(lt(y, x))  # now refuted
        assert prefix.unsat
        prefix.pop()
        assert not prefix.unsat
        assert not prefix.push(le(x, y))  # compatible again
        assert not prefix.unsat

    def test_fingerprint_cache_tracks_mutations(self):
        a, b = bool_var("a"), bool_var("b")
        prefix = GuardPrefix()
        prefix.push(a)
        fp1 = prefix.fingerprint()
        assert prefix.fingerprint() is fp1  # memoized between mutations
        prefix.push(b)
        fp2 = prefix.fingerprint()
        assert fp2 == (a, b)
        prefix.push(a)  # duplicate literal: no new entries
        assert prefix.fingerprint() is fp2
        prefix.pop()
        prefix.pop()
        assert prefix.fingerprint() == fp1
        prefix.pop()
        assert prefix.fingerprint() == ()


class TestCnfRoundTrip:
    def _decode(self, encoder, sat_model):
        bools = {
            atom: sat_model[v]
            for v, atom in encoder.atom_of_var.items()
            if v in sat_model
        }
        return Model(bools, {})

    def test_boolean_round_trip(self):
        """encode -> solve -> decoded model satisfies the original term."""
        rng = random.Random(777)
        names = [bool_var(f"v{i}") for i in range(5)]

        def random_term(depth):
            if depth == 0 or rng.random() < 0.3:
                v = rng.choice(names)
                return v if rng.random() < 0.5 else not_(v)
            op = and_ if rng.random() < 0.5 else or_
            return op(*(random_term(depth - 1) for _ in range(rng.randint(2, 3))))

        solved = 0
        for trial in range(120):
            term = random_term(3)
            if term is TRUE or term is FALSE:
                continue
            encoder = CnfEncoder()
            encoder.add_assertion(term)
            solver = SatSolver()
            ok = all(solver.add_clause(list(c)) for c in encoder.clauses)
            if ok and solver.solve() is SAT:
                model = self._decode(encoder, solver.model)
                assert model.eval(term) is True, f"trial {trial}: {term}"
                solved += 1
        assert solved > 40

    def test_unsat_term_has_unsat_encoding(self):
        a, b = bool_var("a"), bool_var("b")
        term = and_(or_(a, b), not_(a), not_(b))
        if term is FALSE:
            return  # simplified away structurally
        encoder = CnfEncoder()
        encoder.add_assertion(term)
        solver = SatSolver()
        ok = all(solver.add_clause(list(c)) for c in encoder.clauses)
        assert not ok or solver.solve() is UNSAT

    def test_gate_cache_shares_subterms(self):
        a, b = bool_var("a"), bool_var("b")
        disj = or_(a, b)
        encoder = CnfEncoder()
        lit1 = encoder.encode_literal(disj)
        before = len(encoder.clauses)
        lit2 = encoder.encode_literal(disj)
        assert lit1 == lit2
        assert len(encoder.clauses) == before  # no re-encoding

    def test_encode_literal_does_not_assert(self):
        a = bool_var("a")
        encoder = CnfEncoder()
        lit = encoder.encode_literal(not_(a))
        solver = SatSolver()
        for clause in encoder.clauses:
            solver.add_clause(list(clause))
        solver.ensure_var(abs(lit))
        # both polarities must still be possible: nothing was asserted
        assert solver.solve(assumptions=[lit]) is SAT
        assert solver.solve(assumptions=[-lit]) is SAT

    def test_fresh_var_is_unused(self):
        encoder = CnfEncoder()
        a = bool_var("a")
        v_atom = encoder.var_for_atom(a)
        act = encoder.fresh_var()
        assert act != v_atom
        assert act not in encoder.atom_of_var

    def test_eq_atom_maps_to_theory(self):
        x, y = int_var("x"), int_var("y")
        encoder = CnfEncoder()
        encoder.add_assertion(and_(eq(x, y), bool_var("a")))
        theory = encoder.theory_atoms()
        assert len(theory) == 1
        (atom,) = theory.values()
        assert atom == eq(x, y)
