"""Tests for AST unrolling and lowering to the guarded partial-SSA IR."""

import pytest

from repro.frontend import parse_program
from repro.frontend import ast_nodes as A
from repro.ir import (
    AllocInst,
    CopyInst,
    ForkInst,
    FreeInst,
    LoadInst,
    PhiInst,
    SinkInst,
    StoreInst,
)
from repro.lowering import lower_program, unroll_loops
from repro.smt.terms import FALSE, TRUE, and_, not_

from programs import FIG2_BUG_FREE, FORK_IN_LOOP


def lower(src, depth=2):
    return lower_program(parse_program(src), unroll_depth=depth)


def insts_of(module, func, cls):
    return [i for i in module.functions[func].body if isinstance(i, cls)]


class TestUnrolling:
    def test_while_becomes_nested_ifs(self):
        prog = parse_program("void main() { while (c) { x = 1; } }")
        out = unroll_loops(prog, depth=2)
        stmt = out.functions[0].body.body[0]
        assert isinstance(stmt, A.IfStmt)
        inner = stmt.then_body.body[-1]
        assert isinstance(inner, A.IfStmt)

    def test_depth_one(self):
        prog = parse_program("void main() { while (c) { x = 1; } }")
        out = unroll_loops(prog, depth=1)
        stmt = out.functions[0].body.body[0]
        assert isinstance(stmt, A.IfStmt)
        assert not any(isinstance(s, A.IfStmt) for s in stmt.then_body.body)

    def test_depth_zero_rejected(self):
        prog = parse_program("void main() {}")
        with pytest.raises(ValueError):
            unroll_loops(prog, depth=0)

    def test_input_not_mutated(self):
        prog = parse_program("void main() { while (c) { x = 1; } }")
        unroll_loops(prog, depth=3)
        assert isinstance(prog.functions[0].body.body[0], A.WhileStmt)

    def test_nested_loops(self):
        prog = parse_program(
            "void main() { while (a) { while (b) { x = 1; } } }"
        )
        out = unroll_loops(prog, depth=2)
        # Fully unrolled: no while statements remain anywhere.
        def has_while(stmt):
            if isinstance(stmt, A.WhileStmt):
                return True
            if isinstance(stmt, A.BlockStmt):
                return any(has_while(s) for s in stmt.body)
            if isinstance(stmt, A.IfStmt):
                return has_while(stmt.then_body) or (
                    stmt.else_body is not None and has_while(stmt.else_body)
                )
            return False

        assert not has_while(out.functions[0].body)

    def test_fork_in_loop_duplicated(self):
        module = lower(FORK_IN_LOOP, depth=2)
        forks = insts_of(module, "main", ForkInst)
        assert len(forks) == 2  # one per unrolled iteration


class TestLoweringBasics:
    def test_malloc_allocates_fresh_objects(self):
        module = lower("void main() { int* p = malloc(); int* q = malloc(); }")
        allocs = insts_of(module, "main", AllocInst)
        assert len(allocs) == 2
        assert allocs[0].obj is not allocs[1].obj

    def test_deref_becomes_load(self):
        module = lower("void main(int** p) { int* q = *p; }")
        assert len(insts_of(module, "main", LoadInst)) == 1

    def test_store_statement(self):
        module = lower("void main(int** p, int* v) { *p = v; }")
        stores = insts_of(module, "main", StoreInst)
        assert len(stores) == 1

    def test_free_and_print(self):
        module = lower("void main(int* p) { print(*p); free(p); }")
        assert len(insts_of(module, "main", FreeInst)) == 1
        assert len(insts_of(module, "main", SinkInst)) == 1
        # print(*p) loads first
        assert len(insts_of(module, "main", LoadInst)) == 1

    def test_labels_globally_unique(self):
        module = lower(FIG2_BUG_FREE)
        labels = [i.label for i in module.all_instructions()]
        assert len(labels) == len(set(labels))

    def test_externs_registered(self):
        module = lower("extern int flag; void main() {}")
        assert "flag" in module.externs

    def test_globals_registered(self):
        module = lower("int* g; void main() { g = malloc(); }")
        assert "g" in module.globals
        # writing a global is a store
        assert len(insts_of(module, "main", StoreInst)) == 1

    def test_addr_taken_local_becomes_memory(self):
        module = lower("void main() { int x; int* p = &x; *p = 3; int y = x; }")
        # reading x after &x goes through a load
        assert len(insts_of(module, "main", LoadInst)) == 1
        assert len(insts_of(module, "main", StoreInst)) == 1


class TestGuards:
    def test_branch_guards(self):
        module = lower(
            "extern int c; void main() { if (c) { int x = 1; } else { int y = 2; } }"
        )
        copies = insts_of(module, "main", CopyInst)
        assert len(copies) == 2
        then_guard, else_guard = copies[0].guard, copies[1].guard
        assert then_guard is not TRUE and else_guard is not TRUE
        assert and_(then_guard, else_guard) is FALSE  # complementary

    def test_correlated_across_functions(self):
        module = lower(FIG2_BUG_FREE)
        main_guard = next(
            i.guard for i in module.functions["main"].body if isinstance(i, LoadInst)
        )
        t1_guard = next(
            i.guard for i in module.functions["thread1"].body if isinstance(i, StoreInst)
        )
        assert and_(main_guard, t1_guard) is FALSE

    def test_nested_guards_conjoin(self):
        module = lower(
            "extern int a; extern int b;"
            "void main() { if (a) { if (b) { int x = 1; } } }"
        )
        copy = insts_of(module, "main", CopyInst)[0]
        # guard is a conjunction of two conditions
        from repro.smt.terms import And

        assert isinstance(copy.guard, And)
        assert len(copy.guard.args) == 2

    def test_phi_at_join(self):
        module = lower(
            "extern int c;"
            "void main() { int x = 1; if (c) { x = 2; } print(x); }"
        )
        phis = insts_of(module, "main", PhiInst)
        assert len(phis) == 1
        values = {repr(v) for v, _g in phis[0].incomings}
        assert len(values) == 2

    def test_no_phi_when_unchanged(self):
        module = lower(
            "extern int c;"
            "void main() { int x = 1; if (c) { int y = 2; } print(x); }"
        )
        assert insts_of(module, "main", PhiInst) == []

    def test_comparison_condition_precise(self):
        module = lower(
            "extern int n; void main() { if (n < 3) { int x = 1; } if (n >= 3) { int y = 2; } }"
        )
        copies = insts_of(module, "main", CopyInst)
        from repro.smt import quick_unsat

        assert quick_unsat(and_(copies[0].guard, copies[1].guard))

    def test_returns_recorded_with_guards(self):
        module = lower(
            "extern int c; int f() { if (c) { return 1; } return 2; }"
        )
        returns = module.functions["f"].returns
        assert len(returns) == 2
        assert returns[0][1] is not TRUE


class TestFunctionLowering:
    def test_fork_lowered(self):
        module = lower(FIG2_BUG_FREE)
        forks = insts_of(module, "main", ForkInst)
        assert len(forks) == 1
        assert forks[0].thread == "t"

    def test_call_with_return(self):
        module = lower("int id(int x) { return x; } void main() { int y = id(3); }")
        from repro.ir import CallInst

        calls = insts_of(module, "main", CallInst)
        assert len(calls) == 1
        assert calls[0].dst is not None

    def test_module_size(self):
        module = lower(FIG2_BUG_FREE)
        assert module.size() == len(list(module.all_instructions()))

    def test_pretty_output(self):
        module = lower(FIG2_BUG_FREE)
        text = module.pretty()
        assert "func main" in text and "func thread1" in text
        assert "fork" in text
