"""Coverage for the VFG exporters (``repro.vfg.export``) and the IR
well-formedness verifier (``repro.ir.verifier``)."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import AnalysisConfig, Canary
from repro.ir.instructions import CopyInst, JoinInst, LoadInst
from repro.ir.values import IntConstant, fresh_variable
from repro.ir.verifier import VerificationError, verify_module
from repro.lowering import lower_program
from repro.frontend import parse_program
from repro.smt.terms import FALSE
from repro.vfg.export import to_dot, to_json

CORPUS = pathlib.Path(__file__).parent / "corpus"

INTER_THREAD_UAF = """
int *g;

void writer(int *p) {
  *p = 5;
  g = p;
}

void reader() {
  int x;
  x = *g;
  print(x);
}

int main() {
  int *h;
  h = malloc(4);
  fork(t1, writer, h);
  fork(t2, reader);
  join(t1);
  join(t2);
  return 0;
}
"""


@pytest.fixture(scope="module")
def bundle():
    report = Canary(AnalysisConfig()).analyze_source(INTER_THREAD_UAF)
    assert report.bundle is not None
    return report.bundle


@pytest.fixture()
def module():
    return lower_program(parse_program(INTER_THREAD_UAF, "uaf.mcc"))


# ----- export: DOT -----------------------------------------------------------


class TestToDot:
    def test_shape_of_the_document(self, bundle):
        dot = to_dot(bundle.vfg)
        assert dot.startswith("digraph vfg {")
        assert dot.rstrip().endswith("}")
        assert "rankdir=LR;" in dot

    def test_every_node_and_edge_is_rendered(self, bundle):
        dot = to_dot(bundle.vfg)
        node_lines = [l for l in dot.splitlines() if "[label=" in l and "->" not in l]
        edge_lines = [l for l in dot.splitlines() if "->" in l]
        assert len(node_lines) == bundle.vfg.num_nodes
        assert len(edge_lines) == bundle.vfg.num_edges

    def test_node_styles_by_type(self, bundle):
        dot = to_dot(bundle.vfg)
        assert "shape=box, style=filled" in dot  # ObjNode (heap object / global)
        assert "shape=oval" in dot  # StoreNode (g = malloc store)
        assert "shape=ellipse" in dot  # DefNode

    def test_interference_edges_are_dashed(self, bundle):
        assert any(e.interthread for e in bundle.vfg.edges())
        assert "style=dashed, color=red" in to_dot(bundle.vfg)

    def test_fork_binding_edges_are_blue(self, bundle):
        assert "color=blue" in to_dot(bundle.vfg)

    def test_long_guards_are_truncated(self):
        text = (CORPUS / "uaf_guarded_infeasible.mcc").read_text()
        report = Canary(AnalysisConfig()).analyze_source(text)
        vfg = report.bundle.vfg
        assert any(len(e.guard.pretty()) > 5 for e in vfg.edges())
        assert "…" in to_dot(vfg, max_guard_len=5)


# ----- export: JSON ----------------------------------------------------------


class TestToJson:
    def test_round_trips_through_json(self, bundle):
        data = json.loads(to_json(bundle.vfg))
        assert set(data) == {"nodes", "edges"}
        assert len(data["nodes"]) == bundle.vfg.num_nodes
        assert len(data["edges"]) == bundle.vfg.num_edges

    def test_edges_reference_declared_nodes(self, bundle):
        data = json.loads(to_json(bundle.vfg))
        ids = {n["id"] for n in data["nodes"]}
        assert len(ids) == len(data["nodes"])  # ids are unique
        for edge in data["edges"]:
            assert edge["src"] in ids and edge["dst"] in ids

    def test_node_types_and_labels(self, bundle):
        data = json.loads(to_json(bundle.vfg))
        types = {n["type"] for n in data["nodes"]}
        assert {"object", "store", "def"} <= types
        for node in data["nodes"]:
            if node["type"] == "object":
                assert node["object_kind"] in ("heap", "global", "stack", "formal")
            elif node["type"] in ("store", "null"):
                assert isinstance(node["label"], int)

    def test_edge_payload(self, bundle):
        data = json.loads(to_json(bundle.vfg))
        kinds = {e["kind"] for e in data["edges"]}
        assert "load" in kinds and "forkarg" in kinds
        assert any(e["interthread"] for e in data["edges"])
        for edge in data["edges"]:
            if edge["kind"] in ("call", "ret", "forkarg"):
                assert isinstance(edge["callsite"], int)
            assert isinstance(edge["guard"], str)


# ----- verifier --------------------------------------------------------------


def _loc(module):
    return next(module.all_instructions()).location


class TestVerifier:
    def test_lowered_corpus_module_is_well_formed(self):
        for path in sorted(CORPUS.glob("*.mcc"))[:5]:
            module = lower_program(parse_program(path.read_text(), path.name))
            report = verify_module(module)
            assert report.ok, f"{path.name}: {report.describe()}"
            assert report.describe() == "ok" or "warning" in report.describe()

    def test_duplicate_label(self, module):
        func = module.functions["main"]
        first = func.body[0]
        clone = CopyInst(
            label=first.label,
            guard=first.guard,
            location=first.location,
            dst=fresh_variable("dup"),
            src=IntConstant(1),
        )
        func.body.append(clone)
        report = verify_module(module)
        assert not report.ok
        assert any("duplicate label" in e for e in report.errors)

    def test_unregistered_label(self, module):
        label = module.functions["main"].body[0].label
        del module._labels[label]
        report = verify_module(module)
        assert any("not registered" in e for e in report.errors)

    def test_label_registered_to_other_instruction(self, module):
        body = module.functions["main"].body
        module._labels[body[0].label] = body[1]
        report = verify_module(module)
        assert any("registered to a different instruction" in e for e in report.errors)

    def test_ssa_redefinition(self, module):
        func = module.functions["main"]
        defined = next(
            i.defined_var() for i in func.body if i.defined_var() is not None
        )
        label = module.new_label()
        dup = CopyInst(
            label=label,
            guard=func.body[0].guard,
            location=_loc(module),
            dst=defined,
            src=IntConstant(0),
        )
        func.body.append(dup)
        module.register(dup, "main")
        report = verify_module(module)
        assert any("SSA violation" in e for e in report.errors)

    def test_false_guard_is_a_dead_code_warning(self, module):
        module.functions["main"].body[0].guard = FALSE
        report = verify_module(module)
        assert report.ok  # warning, not error
        assert any("dead instruction" in w for w in report.warnings)

    def test_integer_used_as_pointer(self, module):
        label = module.new_label()
        bad = LoadInst(
            label=label,
            guard=module.functions["main"].body[0].guard,
            location=_loc(module),
            dst=fresh_variable("x"),
            pointer=IntConstant(5),
        )
        module.functions["main"].body.append(bad)
        module.register(bad, "main")
        report = verify_module(module)
        assert any("integer used as pointer" in e for e in report.errors)

    def test_join_without_fork_warns(self, module):
        label = module.new_label()
        join = JoinInst(
            label=label,
            guard=module.functions["writer"].body[0].guard,
            location=_loc(module),
            thread="phantom",
        )
        module.functions["writer"].body.append(join)
        module.register(join, "writer")
        report = verify_module(module)
        assert report.ok
        assert any("without a" in w and "phantom" in w for w in report.warnings)

    def test_strict_raises_on_error(self, module):
        label = module.functions["main"].body[0].label
        del module._labels[label]
        with pytest.raises(VerificationError):
            verify_module(module, strict=True)

    def test_verification_runs_as_a_pipeline_pass(self):
        report = Canary(AnalysisConfig()).analyze_source(INTER_THREAD_UAF)
        rows = {p["name"]: p for p in report.pass_statistics}
        assert "verify" in rows
        assert rows["verify"]["detail"].startswith("0 error(s)")
