"""Cross-run identity: independent processes must mint byte-identical
IR names, summary fingerprints, VFG summaries, and bug keys.

This is the end-to-end contract behind the portable disk summary
namespace — identity keys computed in one process must mean the same
thing in another, regardless of hash seed, import order, or interning
state.  The subprocess tests run the full pipeline twice under
*different* ``PYTHONHASHSEED`` values and compare JSON dumps byte for
byte.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.ir.values import VariableNamer

from test_corpus import CORPUS_FILES

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

DRIVER = textwrap.dedent(
    """
    import json, sys
    from repro import AnalysisConfig, Canary

    text = open(sys.argv[1]).read()
    rep = Canary(AnalysisConfig(use_cache=False)).analyze_source(text)
    index = rep.bundle.summary_index
    fps = {n: s.fingerprint for n, s in index.summaries.items()} if index else {}
    print(json.dumps({
        "keys": sorted(str(b.key) for b in rep.bugs),
        "vfg": rep.vfg_summary,
        "fps": fps,
        "vars": sorted(
            v.name
            for fn in rep.bundle.module.functions.values()
            for inst in fn.body
            if (v := getattr(inst, "target", None)) is not None
        ),
    }, sort_keys=True))
    """
)


def _pipeline_dump(path, hashseed):
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER, str(path)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


class TestVariableNamer:
    def test_names_are_pure_functions_of_scope_prefix_ordinal(self):
        a = VariableNamer("f")
        b = VariableNamer("f")
        seq_a = [a.fresh("tmp").name, a.fresh("tmp").name, a.fresh("phi").name]
        seq_b = [b.fresh("tmp").name, b.fresh("tmp").name, b.fresh("phi").name]
        assert seq_a == seq_b == ["f::tmp", "f::tmp#1", "f::phi"]

    def test_scopes_do_not_collide(self):
        assert VariableNamer("f").fresh("tmp").name != VariableNamer("g").fresh("tmp").name

    def test_source_name_passthrough(self):
        v = VariableNamer("f").fresh("load", source_name="p")
        assert v.name == "f::load"
        assert v.source_name == "p"

    def test_separators_cannot_occur_in_identifiers(self):
        # ``::`` and ``#`` are not legal MiniCC identifier characters, so
        # scoped names can never collide with user variables.
        v = VariableNamer("worker").fresh("tmp")
        assert "::" in v.name


class TestCrossProcess:
    @pytest.mark.parametrize("stem", ["uaf_basic", "mixed_all_checkers"])
    def test_two_processes_differ_only_in_hashseed(self, stem):
        path = next(p for p in CORPUS_FILES if p.stem == stem)
        first = _pipeline_dump(path, "1")
        second = _pipeline_dump(path, "4242")
        assert first == second
        payload = json.loads(first)
        assert payload["fps"]
        assert all("::" in name for name in payload["vars"] if "::" in name)

    def test_full_corpus_fingerprints_stable(self, tmp_path):
        # One subprocess per seed over the whole corpus (batched in a
        # single interpreter each, to keep this test affordable).
        batch = textwrap.dedent(
            """
            import json, sys
            from repro import AnalysisConfig, Canary
            out = {}
            for path in sys.argv[1:]:
                rep = Canary(AnalysisConfig(use_cache=False)).analyze_source(
                    open(path).read()
                )
                index = rep.bundle.summary_index
                out[path] = {
                    "keys": sorted(str(b.key) for b in rep.bugs),
                    "fps": {n: s.fingerprint for n, s in index.summaries.items()}
                    if index
                    else {},
                }
            print(json.dumps(out, sort_keys=True))
            """
        )
        files = [str(p) for p in CORPUS_FILES]
        dumps = []
        for seed in ("0", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=REPO_SRC)
            proc = subprocess.run(
                [sys.executable, "-c", batch, *files],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            dumps.append(proc.stdout)
        assert dumps[0] == dumps[1]
