"""The three concurrency-bug checker families (data-race, atomicity
violation, order violation) on the ordering engine.

Each family gets a bait/safe pair: the bait must fire, and the
synchronised variant of the *same* access pattern must stay silent —
the lock-set filter, the mutual-exclusion constraints, and the Φ_po
signal→wait edges are what make the difference.  Every realizable
report of the new kinds must also replay concretely (the interpreter's
opt-in dynamic detectors), and keys must be identical at every
detect-worker width.
"""

import sys

import pytest

from repro import AnalysisConfig, Canary
from repro.checkers import ALL_CHECKERS, CHECKER_ALIASES, resolve_checker_names
from repro.interp import confirm_all

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from fuzz_gen import lock_bait_program

RACE_BAIT = """
void main() {
    int* c = malloc();
    *c = 1;
    fork(t, worker, c);
    *c = 2;
    print(*c);
}
void worker(int* c) {
    *c = 7;
}
"""

RACE_LOCKED = """
void main() {
    int* c = malloc();
    *c = 1;
    fork(t, worker, c);
    lock(m);
    *c = 2;
    int r = *c;
    unlock(m);
    print(r);
}
void worker(int* c) {
    lock(m);
    *c = 7;
    unlock(m);
}
"""

RACE_WRONG_MUTEX = RACE_LOCKED.replace(
    "lock(m);\n    *c = 7;", "lock(other);\n    *c = 7;"
).replace("*c = 7;\n    unlock(m);", "*c = 7;\n    unlock(other);")

RMW_BAIT = """
void main() {
    int* c = malloc();
    *c = 0;
    fork(t, worker, c);
    int tmp = *c;
    *c = tmp + 1;
    print(*c);
}
void worker(int* c) {
    *c = 100;
}
"""

RMW_LOCKED = """
void main() {
    int* c = malloc();
    *c = 0;
    fork(t, worker, c);
    lock(m);
    int tmp = *c;
    *c = tmp + 1;
    unlock(m);
    print(*c);
}
void worker(int* c) {
    lock(m);
    *c = 100;
    unlock(m);
}
"""

# Consumer forked before the final store: the stale read interleaves
# even under SC, so the witness is concretely executable.
ORDER_SC_BAIT = """
void main() {
    int* d = malloc();
    *d = 41;
    fork(t, consumer, d);
    *d = 42;
}
void consumer(int* d) {
    int v = *d;
    print(v);
}
"""

# Both stores retire before the fork; only PSO's store-store relaxation
# can delay the superseding store past the consumer's read.
ORDER_PUBLISH = """
void main() {
    int* d = malloc();
    int* a = d;
    *d = 41;
    *a = 42;
    fork(t, consumer, d);
}
void consumer(int* d) {
    int v = *d;
    print(v);
}
"""


def run(src, checkers, **overrides):
    overrides.setdefault("use_cache", False)
    config = AnalysisConfig(checkers=checkers, **overrides)
    return Canary(config).analyze_source(src)


def kinds(report):
    return sorted(b.kind for b in report.bugs)


class TestDataRace:
    def test_unprotected_conflicts_fire(self):
        report = run(RACE_BAIT, ("data-race",))
        assert report.num_reports >= 1
        assert set(kinds(report)) == {"data-race"}

    def test_same_mutex_is_silent(self):
        report = run(RACE_LOCKED, ("data-race",), model_locks=True)
        assert report.num_reports == 0

    def test_wrong_mutex_fires(self):
        report = run(RACE_WRONG_MUTEX, ("data-race",), model_locks=True)
        assert report.num_reports >= 1

    def test_locks_ignored_without_model_locks(self):
        # Matching the published Canary: locks unmodeled => FP reported.
        report = run(RACE_LOCKED, ("data-race",), model_locks=False)
        assert report.num_reports >= 1

    def test_write_write_pair_reported_once(self):
        src = """
        void main() {
            int* c = malloc();
            *c = 1;
            fork(t, worker, c);
            *c = 2;
        }
        void worker(int* c) {
            *c = 7;
        }
        """
        report = run(src, ("data-race",))
        # One conflicting write pair — deduplicated by label order, not
        # reported once per direction.
        assert report.num_reports == 1

    def test_join_ordered_accesses_do_not_race(self):
        src = """
        void main() {
            int* c = malloc();
            *c = 1;
            fork(t, worker, c);
            join(t);
            *c = 2;
            print(*c);
        }
        void worker(int* c) {
            *c = 7;
        }
        """
        report = run(src, ("data-race",))
        assert report.num_reports == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fuzzed_lock_discipline_differential(self, seed):
        safe = lock_bait_program(seed, protected=True)
        racy = lock_bait_program(seed, protected=False)
        assert run(safe, ("data-race",), model_locks=True).num_reports == 0
        assert run(racy, ("data-race",), model_locks=True).num_reports >= 1


class TestAtomicityViolation:
    def test_unprotected_rmw_fires(self):
        report = run(RMW_BAIT, ("atomicity-violation",))
        assert report.num_reports >= 1
        assert set(kinds(report)) == {"atomicity-violation"}

    def test_locked_rmw_is_silent(self):
        report = run(RMW_LOCKED, ("atomicity-violation",), model_locks=True)
        assert report.num_reports == 0

    def test_locks_ignored_without_model_locks(self):
        report = run(RMW_LOCKED, ("atomicity-violation",), model_locks=False)
        assert report.num_reports >= 1

    def test_no_remote_writer_is_silent(self):
        src = """
        void main() {
            int* c = malloc();
            *c = 0;
            fork(t, worker, c);
            int tmp = *c;
            *c = tmp + 1;
        }
        void worker(int* c) {
            int r = *c;
            print(r);
        }
        """
        # The remote thread only reads: no store can split the RMW pair.
        report = run(src, ("atomicity-violation",))
        assert report.num_reports == 0

    def test_join_before_rmw_is_silent(self):
        src = """
        void main() {
            int* c = malloc();
            *c = 0;
            fork(t, worker, c);
            join(t);
            int tmp = *c;
            *c = tmp + 1;
        }
        void worker(int* c) {
            *c = 100;
        }
        """
        report = run(src, ("atomicity-violation",))
        assert report.num_reports == 0


class TestOrderViolation:
    def test_sc_interleaved_stale_read_fires(self):
        report = run(ORDER_SC_BAIT, ("order-violation",))
        assert report.num_reports >= 1

    def test_publish_safe_under_sc_and_tso(self):
        for model in ("sc", "tso"):
            report = run(ORDER_PUBLISH, ("order-violation",), memory_model=model)
            assert report.num_reports == 0, model

    def test_publish_fires_under_pso(self):
        report = run(ORDER_PUBLISH, ("order-violation",), memory_model="pso")
        assert report.num_reports >= 1

    def test_coherence_kept_for_same_pointer_stores(self):
        # Same SSA pointer for both stores: per-location coherence keeps
        # them ordered even under PSO, so the stale read never appears.
        src = ORDER_PUBLISH.replace("*a = 42;", "*d = 42;")
        report = run(src, ("order-violation",), memory_model="pso")
        assert report.num_reports == 0

    def test_lock_protected_publication_is_silent(self):
        src = """
        void main() {
            int* d = malloc();
            fork(t, consumer, d);
            lock(m);
            *d = 41;
            *d = 42;
            unlock(m);
        }
        void consumer(int* d) {
            lock(m);
            int v = *d;
            unlock(m);
            print(v);
        }
        """
        report = run(src, ("order-violation",), model_locks=True)
        assert report.num_reports == 0


class TestAliasesAndSelection:
    def test_aliases_resolve_to_canonical_kinds(self):
        assert resolve_checker_names(["race", "atomicity", "order"]) == (
            "data-race",
            "atomicity-violation",
            "order-violation",
        )

    def test_canonical_names_pass_through(self):
        names = tuple(sorted(ALL_CHECKERS))
        assert resolve_checker_names(names) == names

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown checker"):
            resolve_checker_names(["race", "nonsense"])

    def test_every_alias_targets_a_registered_checker(self):
        for target in CHECKER_ALIASES.values():
            assert target in ALL_CHECKERS

    def test_families_only_report_their_kind(self):
        report = run(RACE_BAIT, ("atomicity-violation", "order-violation"))
        assert "data-race" not in kinds(report)


class TestReplay:
    @pytest.mark.parametrize(
        "src,checker",
        [
            (RACE_BAIT, "data-race"),
            (RMW_BAIT, "atomicity-violation"),
            (ORDER_SC_BAIT, "order-violation"),
        ],
        ids=["race", "atomicity", "order"],
    )
    def test_every_report_confirms_dynamically(self, src, checker):
        report = run(src, (checker,))
        assert report.num_reports >= 1
        results = confirm_all(report.bundle.module, report.bugs)
        assert all(r.confirmed for r in results), [r.describe() for r in results]


class TestShardingEquivalence:
    @pytest.mark.parametrize("workers", [2, 8])
    def test_keys_identical_across_widths(self, workers):
        checkers = (
            "data-race",
            "atomicity-violation",
            "order-violation",
            "use-after-free",
        )
        src = RACE_BAIT + RMW_BAIT.replace("main", "rmain").replace(
            "worker", "rworker"
        )
        ref = run(src, checkers)
        rep = run(src, checkers, detect_workers=workers, solver_backend="process")
        assert sorted(b.key for b in rep.bugs) == sorted(b.key for b in ref.bugs)
        assert sorted((b.key, tuple(b.path)) for b in rep.bugs) == sorted(
            (b.key, tuple(b.path)) for b in ref.bugs
        )
