"""The unified observability layer: tracer, metrics, exporters, gates.

Covers the guarantees ``docs/architecture.md`` §12 documents:

* span nesting/ordering on one thread, explicit parenting across helper
  threads, and cross-process propagation through the solver pool;
* zero overhead with tracing off (the default);
* the :class:`~repro.obs.metrics.MetricsRegistry` instruments and the
  legacy ``AnalysisReport`` accessors being exact views over it;
* exporter round-trips and both directions of every schema validator;
* the ``repro.bench.compare_baselines`` benchmark-regression gate.
"""

import json
import pathlib
import pickle

import pytest

from programs import SIMPLE_UAF
from repro import AnalysisConfig, Canary
from repro.__main__ import main as repro_main
from repro.analysis.driver import AnalysisReport
from repro.bench.baseline import load_bench_results, write_bench_results
from repro.bench.compare_baselines import (
    compare_documents,
    is_timing_key,
    main as compare_main,
    render_deltas,
)
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    SchemaError,
    SpanContext,
    SpanRecorder,
    Tracer,
    read_trace_ndjson,
    run_meta,
    validate_chrome_trace_file,
    validate_metrics_file,
    validate_trace_file,
    write_chrome_trace,
    write_metrics_json,
    write_trace_ndjson,
)
from repro.obs.export import spans_to_chrome_events
from repro.obs.schema import validate_metrics_doc, validate_span
from repro.obs.tracer import NULL_SPAN
from repro.obs.__main__ import main as obs_main

CORPUS = pathlib.Path(__file__).parent / "corpus"


# ----- tracer: nesting, ordering, attributes ---------------------------------


class TestSpans:
    def test_nesting_and_finish_order(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # children finish (and are appended) before their parents
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        assert inner.end is not None and inner.end >= inner.start
        assert outer.trace_id == inner.trace_id == tracer.trace_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = tracer.spans_named("a")[0], tracer.spans_named("b")[0]
        root = tracer.spans_named("root")[0]
        assert a.parent_id == b.parent_id == root.span_id

    def test_attrs_coerced_to_json_scalars(self):
        tracer = Tracer()
        with tracer.span("s", n=3, label="x") as span:
            span.set("obj", object())
        rec = tracer.finished[0]
        assert rec.attrs["n"] == 3 and rec.attrs["label"] == "x"
        assert isinstance(rec.attrs["obj"], str)  # repr()-coerced
        validate_span(rec.as_dict())

    def test_exception_recorded_and_span_closed(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        span = tracer.finished[0]
        assert span.end is not None
        assert "ValueError" in span.attrs["error"]
        assert tracer.current_context() is None  # stack unwound

    def test_explicit_parent_does_not_join_ambient_stack(self):
        # A span parented explicitly (helper-thread work attached to its
        # logical parent) must not become the calling thread's "current"
        # span.
        tracer = Tracer()
        with tracer.span("root") as root:
            ctx = root.context()
            detached = tracer.span("helper", parent=ctx)
            assert tracer.current_context() == ctx  # not the helper
            with tracer.span("child") as child:
                assert child.parent_id == root.span_id
            detached.__exit__(None, None, None)
        helper = tracer.spans_named("helper")[0]
        assert helper.parent_id == root.span_id

    def test_current_context_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current_context() == inner.context()
        assert tracer.current_context() is None


class TestDisabledTracer:
    def test_null_tracer_span_is_shared_singleton(self):
        # the off path allocates nothing: every call returns NULL_SPAN
        assert NULL_TRACER.span("x") is NULL_SPAN
        assert NULL_TRACER.span("y", parent=SpanContext("t", "s")) is NULL_SPAN
        assert NULL_SPAN.set("k", "v") is NULL_SPAN
        assert NULL_SPAN.context() is None

    def test_null_tracer_collects_and_ingests_nothing(self):
        with NULL_TRACER.span("ignored"):
            pass
        assert NULL_TRACER.finished == []
        assert NULL_TRACER.current_context() is None
        assert NULL_TRACER.recorder() is None
        assert NULL_TRACER.ingest([{"name": "x"}]) == 0

    def test_canary_defaults_to_disabled_tracing(self):
        canary = Canary(AnalysisConfig(use_cache=False))
        assert canary.tracer is NULL_TRACER
        report = canary.analyze_source(SIMPLE_UAF)
        assert report.num_reports >= 1
        assert NULL_TRACER.finished == []


# ----- cross-process span propagation ----------------------------------------


class TestSpanRecorder:
    def test_recorder_round_trips_through_pickle(self):
        ctx = SpanContext("deadbeef", "s7")
        recorder = SpanRecorder(ctx)
        shipped = pickle.loads(pickle.dumps(recorder))  # parent -> worker
        with shipped.span("solver.query", pooled=True):
            with shipped.span("solver.solve") as solve:
                solve.set("verdict", "sat")
        records = pickle.loads(pickle.dumps(shipped.records))  # worker -> parent
        assert records[0]["parent_index"] is None
        assert records[0]["parent_ctx"] == ("deadbeef", "s7")
        assert records[1]["parent_index"] == 0
        assert records[1]["attrs"]["verdict"] == "sat"

    def test_ingest_rebuilds_subtree_under_parent_ctx(self):
        tracer = Tracer()
        with tracer.span("checker") as parent:
            recorder = tracer.recorder(parent.context())
            with recorder.span("solver.query"):
                with recorder.span("solver.solve"):
                    pass
            assert tracer.ingest(recorder.records) == 2
        by_name = {s.name: s for s in tracer.finished}
        assert by_name["solver.query"].parent_id == parent.span_id
        assert by_name["solver.solve"].parent_id == by_name["solver.query"].span_id

    def test_record_span_attaches_posthoc_work(self):
        recorder = SpanRecorder(None)
        with recorder.span("solver.solve"):
            recorder.record_span("solver.cube", 10.0, 11.5, index=0, verdict="unsat")
        cube = recorder.records[1]
        assert cube["start"] == 10.0 and cube["end"] == 11.5
        assert cube["parent_index"] == 0
        assert cube["attrs"] == {"index": 0, "verdict": "unsat"}

    def test_pool_solved_queries_nest_under_checker_span(self):
        # The acceptance criterion: with the process pool on, solver.query
        # spans recorded in worker processes still nest under the
        # submitting checker span.
        tracer = Tracer()
        config = AnalysisConfig(
            use_cache=False,
            parallel_solving=True,
            solver_backend="process",
            solver_workers=2,
        )
        report = Canary(config, tracer=tracer).analyze_source(SIMPLE_UAF)
        assert report.num_reports >= 1
        by_id = {s.span_id: s for s in tracer.finished}

        def ancestors(span):
            names = []
            while span.parent_id is not None:
                span = by_id[span.parent_id]
                names.append(span.name)
            return names

        queries = tracer.spans_named("solver.query")
        assert queries, "no solver.query spans recorded"
        for query in queries:
            chain = ancestors(query)
            assert any(name.startswith("pass:detect:") for name in chain), chain
            assert chain[-1] == "analyze"
        solves = tracer.spans_named("solver.solve")
        assert solves, "no solver.solve spans recorded"
        assert all(by_id[s.parent_id].name == "solver.query" for s in solves)
        # every span of the run belongs to one trace, no dangling parents
        assert all(s.parent_id is None or s.parent_id in by_id for s in tracer.finished)


# ----- metrics registry ------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_promotion_and_labels(self):
        reg = MetricsRegistry()
        reg.inc("solver.queries")
        reg.inc("solver.queries", 2)
        reg.counter("solver.solve_seconds").add(0.0)
        reg.counter("solver.solve_seconds").add(0.25)
        assert reg.value("solver.queries") == 3
        assert reg.value("solver.solve_seconds") == 0.25
        reg.inc("search.visits", 5, checker="use-after-free")
        assert reg.value("search.visits", checker="use-after-free") == 5
        assert reg.value("search.visits") is None  # unlabeled is distinct

    def test_namespace_view_preserves_insertion_order(self):
        reg = MetricsRegistry()
        for key in ("queries", "sat", "unsat", "unknown"):
            reg.counter(f"solver.{key}")
        assert list(reg.namespace("solver")) == ["queries", "sat", "unsat", "unknown"]

    def test_namespace_label_filtering(self):
        reg = MetricsRegistry()
        reg.inc("checker.sources", 4, checker="uaf")
        reg.inc("checker.sources", 2, checker="df")
        reg.inc("checker.unlabeled", 1)
        assert reg.namespace("checker", label=("checker", "uaf")) == {"sources": 4}
        assert reg.namespace("checker") == {"unlabeled": 1}
        assert reg.label_values("checker", "checker") == ["uaf", "df"]

    def test_series_and_snapshot(self):
        reg = MetricsRegistry()
        reg.append("passes", name="parse", status="ran")
        reg.append("passes", name="lower", status="cached")
        reg.inc("cache.hits", 2)
        reg.set("vfg.nodes", 17)
        reg.observe("solver.latency", 0.5)
        reg.observe("solver.latency", 1.5)
        snap = reg.snapshot()
        assert snap["cache.hits"] == 2
        assert snap["vfg.nodes"] == 17
        assert snap["passes"] == [
            {"name": "parse", "status": "ran"},
            {"name": "lower", "status": "cached"},
        ]
        assert snap["solver.latency.count"] == 2
        assert snap["solver.latency.sum"] == 2.0
        assert snap["solver.latency.min"] == 0.5
        assert snap["solver.latency.max"] == 1.5
        assert list(snap) == sorted(snap)
        validate_metrics_doc({"meta": run_meta(), "metrics": snap})

    def test_clear_namespace(self):
        reg = MetricsRegistry()
        reg.inc("solver.queries")
        reg.set("vfg.nodes", 1)
        reg.clear_namespace("solver")
        assert reg.namespace("solver") == {}
        assert reg.value("vfg.nodes") == 1


class TestLegacyAccessorEquivalence:
    """AnalysisReport's historical dict accessors are views over the
    registry: seeding from legacy kwargs must reproduce the dicts
    exactly, including key order."""

    SOLVER = {"queries": 7, "sat": 3, "unsat": 4, "solve_seconds": 0.125}
    CHECKER = {"use-after-free": {"sources": 2, "sinks": 5}}
    SEARCH = {"use-after-free": {"visits": 40, "paths": 6}}
    VFG = {"nodes": 11, "edges": 30}
    TIMINGS = {"parse": 0.01, "solving": 0.2}
    PASSES = [{"name": "parse", "status": "ran"}]
    CACHE = {"hits": 1, "misses": 2}

    def _report(self):
        return AnalysisReport(
            vfg_summary=dict(self.VFG),
            timings=dict(self.TIMINGS),
            peak_memory_bytes=4096,
            solver_statistics=dict(self.SOLVER),
            checker_statistics={k: dict(v) for k, v in self.CHECKER.items()},
            search_statistics={k: dict(v) for k, v in self.SEARCH.items()},
            pass_statistics=[dict(r) for r in self.PASSES],
            cache_statistics=dict(self.CACHE),
        )

    def test_round_trip_shapes_and_order(self):
        report = self._report()
        assert report.solver_statistics == self.SOLVER
        assert list(report.solver_statistics) == list(self.SOLVER)
        assert report.checker_statistics == self.CHECKER
        assert report.search_statistics == self.SEARCH
        assert report.vfg_summary == self.VFG
        assert report.timings == self.TIMINGS
        assert report.pass_statistics == self.PASSES
        assert report.cache_statistics == self.CACHE
        assert report.peak_memory_bytes == 4096
        # float promotion survived the seed
        assert isinstance(report.solver_statistics["solve_seconds"], float)

    def test_accessors_are_registry_views(self):
        report = self._report()
        report.metrics.inc("solver.queries", 3)
        assert report.solver_statistics["queries"] == self.SOLVER["queries"] + 3
        assert report.metrics.value("vfg.nodes") == self.VFG["nodes"]

    def test_live_run_exposes_registry_and_identical_stats(self):
        config = AnalysisConfig(use_cache=False)
        report = Canary(config).analyze_source(SIMPLE_UAF)
        snap = report.metrics.snapshot()
        assert report.solver_statistics["queries"] == snap["solver.queries"]
        assert "parse" in report.timings
        text = report.describe_statistics()
        assert "solver:" in text and "queries" in text


# ----- exporters and schema validators ---------------------------------------


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("analyze", file="x.mcc"):
        with tracer.span("pass:parse"):
            pass
        with tracer.span("solver.query") as q:
            q.set("verdict", "sat")
    return tracer


class TestExporters:
    def test_run_meta_block(self):
        meta = run_meta(config_digest="abc123", suite="enumeration")
        for key in ("schema", "git_sha", "python", "platform", "timestamp"):
            assert key in meta
        assert meta["config_digest"] == "abc123"
        assert meta["suite"] == "enumeration"

    def test_ndjson_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        out = tmp_path / "trace.ndjson"
        assert write_trace_ndjson(tracer.finished, out) == 3
        assert validate_trace_file(out) == 3
        records = read_trace_ndjson(out)
        assert [r["name"] for r in records] == [s.name for s in tracer.finished]
        assert records == [s.as_dict() for s in tracer.finished]

    def test_chrome_trace_export(self, tmp_path):
        tracer = _sample_tracer()
        out = tmp_path / "trace.chrome.json"
        assert write_chrome_trace(tracer.finished, out) == 3
        assert validate_chrome_trace_file(out) == 3
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert all(ev["ph"] == "X" for ev in events)
        by_name = {ev["name"]: ev for ev in events}
        root = by_name["analyze"]
        assert by_name["pass:parse"]["args"]["parent_id"] == root["args"]["span_id"]
        assert by_name["solver.query"]["args"]["verdict"] == "sat"
        # timestamps/durations are microseconds
        span = tracer.spans_named("analyze")[0]
        assert root["ts"] == pytest.approx(span.start * 1e6)
        assert root["dur"] == pytest.approx((span.end - span.start) * 1e6)

    def test_chrome_events_keep_worker_pid(self):
        tracer = Tracer()
        with tracer.span("checker") as parent:
            recorder = SpanRecorder(parent.context())
            recorder.record_span("solver.cube", 1.0, 2.0)
            recorder.records[-1]["pid"] = 99999  # as if from a pool worker
            tracer.ingest(recorder.records)
        events = spans_to_chrome_events(tracer.finished)
        assert {ev["pid"] for ev in events} >= {99999}

    def test_metrics_json_single_registry(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("solver.queries", 2)
        out = tmp_path / "metrics.json"
        doc = write_metrics_json(out, registry=reg, config_digest="cfg")
        assert doc["metrics"]["solver.queries"] == 2
        assert doc["meta"]["config_digest"] == "cfg"
        assert validate_metrics_file(out) == 1

    def test_metrics_json_multi_file(self, tmp_path):
        out = tmp_path / "metrics.json"
        write_metrics_json(
            out, files={"a.mcc": {"solver.queries": 1}, "b.mcc": {"cache.hits": 0}}
        )
        assert validate_metrics_file(out) == 2


class TestSchemaRejections:
    def test_trace_missing_meta_line(self, tmp_path):
        tracer = _sample_tracer()
        bad = tmp_path / "bad.ndjson"
        bad.write_text(
            "\n".join(json.dumps(s.as_dict()) for s in tracer.finished) + "\n"
        )
        with pytest.raises(SchemaError, match="no meta record"):
            validate_trace_file(bad)

    def test_trace_dangling_parent(self, tmp_path):
        tracer = _sample_tracer()
        spans = [s.as_dict() for s in tracer.finished]
        spans[0]["parent_id"] = "s999"
        bad = tmp_path / "bad.ndjson"
        bad.write_text(
            json.dumps({"meta": run_meta(), "kind": "trace"})
            + "\n"
            + "\n".join(json.dumps(s) for s in spans)
        )
        with pytest.raises(SchemaError, match="dangling parent"):
            validate_trace_file(bad)

    def test_span_end_before_start(self):
        tracer = _sample_tracer()
        span = tracer.finished[0].as_dict()
        span["end"] = span["start"] - 1.0
        with pytest.raises(SchemaError, match="end precedes start"):
            validate_span(span)

    def test_chrome_event_without_dur(self, tmp_path):
        bad = tmp_path / "bad.chrome.json"
        bad.write_text(
            json.dumps(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]}
            )
        )
        with pytest.raises(SchemaError, match="without dur"):
            validate_chrome_trace_file(bad)

    def test_metrics_non_numeric_value(self):
        doc = {"meta": run_meta(), "metrics": {"solver.queries": "three"}}
        with pytest.raises(SchemaError, match="must be numeric"):
            validate_metrics_doc(doc)

    def test_validate_cli(self, tmp_path, capsys):
        tracer = _sample_tracer()
        good = tmp_path / "trace.ndjson"
        write_trace_ndjson(tracer.finished, good)
        assert obs_main(["validate", "--trace", str(good)]) == 0
        bad = tmp_path / "bad.ndjson"
        bad.write_text("{}\n")
        assert obs_main(["validate", "--trace", str(bad)]) == 1
        assert obs_main(["validate", "--trace", str(tmp_path / "absent")]) == 2


# ----- CLI exporters end-to-end ----------------------------------------------


class TestCliExport:
    def test_analyzer_writes_all_three_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "t.ndjson"
        chrome = tmp_path / "t.chrome.json"
        metrics = tmp_path / "m.json"
        rc = repro_main(
            [
                str(CORPUS / "uaf_basic.mcc"),
                "--trace-out",
                str(trace),
                "--trace-chrome",
                str(chrome),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert rc == 1  # findings present
        assert validate_trace_file(trace) > 0
        assert validate_chrome_trace_file(chrome) > 0
        assert validate_metrics_file(metrics) > 0
        doc = json.loads(metrics.read_text())
        (file_metrics,) = doc["files"].values()
        assert file_metrics["solver.queries"] >= 1
        assert "config_digest" in doc["meta"]
        names = {r["name"] for r in read_trace_ndjson(trace)}
        assert "analyze" in names
        assert any(n.startswith("pass:") for n in names)
        assert "solver.query" in names


# ----- benchmark baselines and the regression gate ---------------------------


class TestBenchBaselines:
    RESULTS = {
        "dead_fanout": {
            "reference_visits": 125,
            "pruned_visits": 5,
            "visit_reduction": 0.96,
            "reference_wall_s": 0.10,
            "pruned_wall_s": 0.01,
        },
        "warm": {"speedup": 20.0, "warm_seconds": 0.001, "cold_passes_run": 19},
    }

    def _write(self, path, results):
        write_bench_results(path, results)

    def test_write_stamps_meta_and_load_strips_it(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        self._write(path, self.RESULTS)
        doc = json.loads(path.read_text())
        assert "meta" in doc and "git_sha" in doc["meta"]
        meta, results = load_bench_results(path)
        assert meta == doc["meta"]
        assert results == self.RESULTS

    def test_reserved_meta_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_results(tmp_path / "x.json", {"meta": {}})

    def test_loading_pre_meta_baseline(self, tmp_path):
        # baselines committed before the observability layer have no meta
        path = tmp_path / "old.json"
        path.write_text(json.dumps(self.RESULTS))
        meta, results = load_bench_results(path)
        assert meta == {}
        assert results == self.RESULTS

    def test_timing_key_classification(self):
        assert is_timing_key("reference_wall_s")
        assert is_timing_key("cold_seconds")
        assert is_timing_key("speedup")
        assert not is_timing_key("visit_reduction")
        assert not is_timing_key("passes_rerun")

    def test_identical_documents_pass(self):
        deltas = compare_documents(self.RESULTS, self.RESULTS)
        assert not any(d.regressed for d in deltas)

    def test_timing_within_tolerance_passes_and_improvement_always_passes(self):
        fresh = json.loads(json.dumps(self.RESULTS))
        fresh["dead_fanout"]["reference_wall_s"] = 0.12  # +20% < 35%
        fresh["dead_fanout"]["pruned_wall_s"] = 0.001  # 10x faster
        deltas = compare_documents(self.RESULTS, fresh)
        assert not any(d.regressed for d in deltas)

    def test_timing_regression_beyond_tolerance_fails(self):
        fresh = json.loads(json.dumps(self.RESULTS))
        fresh["dead_fanout"]["reference_wall_s"] = 0.30  # 3x slower
        deltas = compare_documents(self.RESULTS, fresh)
        bad = [d for d in deltas if d.regressed]
        assert [(d.benchmark, d.key) for d in bad] == [
            ("dead_fanout", "reference_wall_s")
        ]

    def test_speedup_direction_is_mirrored(self):
        fresh = json.loads(json.dumps(self.RESULTS))
        fresh["warm"]["speedup"] = 60.0  # higher is better: fine
        assert not any(d.regressed for d in compare_documents(self.RESULTS, fresh))
        fresh["warm"]["speedup"] = 5.0  # -75%: regression
        bad = [d for d in compare_documents(self.RESULTS, fresh) if d.regressed]
        assert [(d.benchmark, d.key) for d in bad] == [("warm", "speedup")]

    def test_counter_metrics_are_exact(self):
        fresh = json.loads(json.dumps(self.RESULTS))
        fresh["dead_fanout"]["pruned_visits"] = 6  # within any tolerance, still fails
        bad = [d for d in compare_documents(self.RESULTS, fresh) if d.regressed]
        assert [(d.benchmark, d.key) for d in bad] == [("dead_fanout", "pruned_visits")]

    def test_missing_metric_and_missing_benchmark_regress(self):
        fresh = json.loads(json.dumps(self.RESULTS))
        del fresh["dead_fanout"]["reference_visits"]
        del fresh["warm"]
        bad = {(d.benchmark, d.key) for d in compare_documents(self.RESULTS, fresh) if d.regressed}
        assert bad == {("dead_fanout", "reference_visits"), ("warm", "*")}

    def test_new_metric_is_reported_not_failed(self):
        fresh = json.loads(json.dumps(self.RESULTS))
        fresh["dead_fanout"]["edges_pruned"] = 12
        deltas = compare_documents(self.RESULTS, fresh)
        assert not any(d.regressed for d in deltas)
        assert any(d.status == "new" and d.key == "edges_pruned" for d in deltas)

    def test_gate_cli_doctored_baseline(self, tmp_path, capsys):
        # CI contract: a doctored fresh run exits non-zero and the delta
        # table names the regressed metric.
        baseline = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        self._write(baseline, self.RESULTS)
        fresh = json.loads(json.dumps(self.RESULTS))
        fresh["dead_fanout"]["reference_wall_s"] = 1.0  # 10x slower
        self._write(fresh_path, fresh)
        rc = compare_main([str(baseline), str(fresh_path)])
        out = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in out.out
        assert "reference_wall_s" in out.out
        assert "FAIL" in out.err

    def test_gate_cli_clean_pass(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        self._write(baseline, self.RESULTS)
        rc = compare_main([str(baseline), str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no benchmark regressions" in out

    def test_gate_cli_tolerance_flag(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        fresh_path = tmp_path / "fresh.json"
        self._write(baseline, self.RESULTS)
        fresh = json.loads(json.dumps(self.RESULTS))
        fresh["dead_fanout"]["reference_wall_s"] = 0.25  # 2.5x
        self._write(fresh_path, fresh)
        assert compare_main([str(baseline), str(fresh_path)]) == 1
        capsys.readouterr()
        assert (
            compare_main([str(baseline), str(fresh_path), "--tolerance", "2.0"]) == 0
        )

    def test_gate_cli_missing_file(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        self._write(baseline, self.RESULTS)
        assert compare_main([str(baseline), str(tmp_path / "absent.json")]) == 2

    def test_render_deltas_table_shape(self):
        deltas = compare_documents(self.RESULTS, self.RESULTS)
        table = render_deltas(deltas)
        lines = table.splitlines()
        assert lines[0].startswith("benchmark")
        assert len(lines) == len(deltas) + 2  # header + rule

    def test_committed_baselines_carry_meta(self):
        root = pathlib.Path(__file__).parent.parent
        for name in ("BENCH_enumeration.json", "BENCH_incremental.json"):
            meta, results = load_bench_results(root / name)
            assert meta.get("git_sha"), name
            assert results, name
