"""Parallel realizability engine v2: term pickling, the verdict cache,
process/thread batch backends, cube-and-conquer budget/witness fixes,
and serial vs. parallel equivalence over the regression corpus."""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import AnalysisConfig, Canary
from repro.detection import (
    PathQuery,
    RealizabilityChecker,
    ValueFlowPath,
    VerdictCache,
)
from repro.frontend import parse_program
from repro.lowering import lower_program
from repro.smt import (
    FALSE,
    SAT,
    TRUE,
    UNSAT,
    Solver,
    and_,
    bool_var,
    cube_solve,
    eq,
    implies,
    int_const,
    int_var,
    le,
    lt,
    not_,
    or_,
    solve_formula,
    structural_key,
)
from repro.smt import portfolio
from repro.vfg import ObjNode, build_vfg

from programs import FIG2_BUGGY, SIMPLE_UAF
from test_corpus import CORPUS_FILES, _parse_directives


def bundle_for(src):
    return build_vfg(lower_program(parse_program(src)))


def empty_query(bundle):
    alloc = next(
        inst
        for func in bundle.module.functions.values()
        for inst in func.body
        if hasattr(inst, "obj")
    )
    return PathQuery(
        path=ValueFlowPath(origin=ObjNode(alloc.obj)),
        source_inst=None,
        sink_inst=None,
    )


def interference_query(bundle):
    edge = bundle.vfg.interference_edges()[0]
    return PathQuery(
        path=ValueFlowPath(origin=edge.src, edges=[edge]),
        source_inst=None,
        sink_inst=None,
    )


class TestTermPickling:
    def test_round_trip_is_identity(self):
        x, y = int_var("x"), int_var("y")
        theta = bool_var("theta")
        samples = [
            TRUE,
            FALSE,
            theta,
            not_(theta),
            x,
            int_const(7),
            x + 3,
            x - y,
            lt(x, y),
            le(x, int_const(5)),
            eq(x, y),
            and_(theta, lt(x, y)),
            or_(theta, not_(bool_var("phi"))),
        ]
        for term in samples:
            assert pickle.loads(pickle.dumps(term)) is term

    def test_composite_formula_round_trip(self):
        g1, g2 = bool_var("g1"), bool_var("g2")
        x, y, z = int_var("x"), int_var("y"), int_var("z")
        formula = and_(
            or_(g1, g2),
            implies(g1, and_(lt(x, y), lt(y, z))),
            implies(g2, le(z, x)),
        )
        clone = pickle.loads(pickle.dumps(formula))
        assert clone is formula
        assert structural_key(clone) == structural_key(formula)

    def test_structural_key_distinguishes_sorts(self):
        assert structural_key(bool_var("x")) != structural_key(int_var("x"))

    def test_structural_key_distinguishes_structure(self):
        x, y = int_var("x"), int_var("y")
        assert structural_key(lt(x, y)) != structural_key(lt(y, x))
        assert structural_key(le(x, y)) != structural_key(lt(x, y))

    def test_formula_solves_in_worker_process(self):
        x, y = int_var("x"), int_var("y")
        formula = and_(lt(x, y), lt(y, x + 3))
        local = solve_formula(formula)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(solve_formula, formula).result()
        assert local[0] == remote[0] == SAT
        # The worker's model satisfies the formula in the parent too.
        assert remote[1]["x"] < remote[1]["y"]


class TestVerdictCache:
    def test_repeat_query_hits(self):
        bundle = bundle_for(SIMPLE_UAF)
        cache = VerdictCache()
        checker = RealizabilityChecker(bundle, cache=cache)
        query = empty_query(bundle)
        first = checker.check(query)
        second = checker.check(query)
        assert first.realizable and second.realizable
        assert first.witness_order == second.witness_order
        assert checker.statistics["cache_misses"] == 1
        assert checker.statistics["cache_hits"] == 1
        assert cache.hits == 1 and cache.misses == 1
        assert 0.0 < cache.hit_rate < 1.0
        assert len(cache) == 1

    def test_cache_shared_across_checkers(self):
        bundle = bundle_for(SIMPLE_UAF)
        cache = VerdictCache()
        first = RealizabilityChecker(bundle, cache=cache)
        second = RealizabilityChecker(bundle, cache=cache)
        query = empty_query(bundle)
        first.check(query)
        second.check(query)
        assert second.statistics["cache_hits"] == 1
        assert cache.hits == 1

    def test_batch_dedupes_repeated_queries(self):
        bundle = bundle_for(FIG2_BUGGY)
        cache = VerdictCache()
        checker = RealizabilityChecker(bundle, cache=cache, backend="process")
        query = interference_query(bundle)
        results = checker.check_many([query] * 6, parallel=True, max_workers=2)
        assert all(r.realizable for r in results)
        assert checker.statistics["queries"] == 6
        assert checker.statistics["cache_misses"] == 1
        assert checker.statistics["cache_hits"] == 5

    def test_unknown_backend_rejected(self):
        bundle = bundle_for(SIMPLE_UAF)
        with pytest.raises(ValueError):
            RealizabilityChecker(bundle, backend="carrier-pigeon")


class TestBatchBackends:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_matches_serial(self, backend):
        bundle = bundle_for(FIG2_BUGGY)
        queries = [empty_query(bundle), interference_query(bundle)] * 2
        serial = RealizabilityChecker(bundle)
        parallel = RealizabilityChecker(bundle, backend=backend)
        expected = [serial.check(q) for q in queries]
        got = parallel.check_many(queries, parallel=True, max_workers=3)
        assert [r.verdict for r in got] == [r.verdict for r in expected]
        for r in got:
            if r.realizable:
                assert all(k.startswith("O") for k in r.witness_order)

    def test_statistics_exact_under_thread_pool(self):
        # Regression: check() used to do unsynchronized dict updates from
        # worker threads, losing counts.
        bundle = bundle_for(SIMPLE_UAF)
        checker = RealizabilityChecker(bundle, cache=None)
        queries = [empty_query(bundle) for _ in range(48)]
        checker.check_many(queries, parallel=True, max_workers=8, backend="thread")
        s = checker.statistics
        assert s["queries"] == 48
        assert s["sat"] + s["unsat"] + s["unknown"] == 48

    def test_process_backend_counts_every_occurrence(self):
        bundle = bundle_for(SIMPLE_UAF)
        checker = RealizabilityChecker(bundle, cache=VerdictCache(), backend="process")
        queries = [empty_query(bundle) for _ in range(10)]
        checker.check_many(queries, parallel=True, max_workers=4)
        s = checker.statistics
        assert s["queries"] == 10
        assert s["cache_hits"] + s["cache_misses"] == 10


class TestCubeAndConquer:
    def test_conflict_budget_plumbed_to_cubes(self, monkeypatch):
        seen = []

        class Recording(Solver):
            def __init__(self, *args, **kwargs):
                seen.append(kwargs.get("max_conflicts"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(portfolio, "Solver", Recording)
        g1, g2 = bool_var("g1"), bool_var("g2")
        x, y = int_var("x"), int_var("y")
        formula = and_(or_(g1, g2), implies(g1, lt(x, y)), implies(g2, lt(y, x)))
        assert cube_solve(formula, max_conflicts=1234) == SAT
        assert seen and all(budget == 1234 for budget in seen)

    def test_checker_budget_reaches_cube_solver(self, monkeypatch):
        seen = []

        class Recording(Solver):
            def __init__(self, *args, **kwargs):
                seen.append(kwargs.get("max_conflicts"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(portfolio, "Solver", Recording)
        bundle = bundle_for(FIG2_BUGGY)
        checker = RealizabilityChecker(
            bundle, use_cube_and_conquer=True, solver_max_conflicts=777
        )
        result = checker.check(interference_query(bundle))
        assert result.realizable
        assert seen and all(budget == 777 for budget in seen)

    def test_cube_sat_returns_witness(self):
        # Regression: cube mode used to discard the winning cube's model,
        # yielding reports with empty witness_order/witness_env.
        bundle = bundle_for(FIG2_BUGGY)
        cube = RealizabilityChecker(bundle, use_cube_and_conquer=True)
        plain = RealizabilityChecker(bundle)
        query = interference_query(bundle)
        cube_result = cube.check(query)
        plain_result = plain.check(query)
        assert cube_result.verdict == plain_result.verdict == SAT
        assert cube_result.witness_order
        assert all(k.startswith("O") for k in cube_result.witness_order)
        # The witness must satisfy the formula, like the monolithic path's.
        solver = Solver()
        solver.add(cube_result.formula)
        assert solver.check() == SAT

    def test_cube_bug_report_has_witness(self):
        config = AnalysisConfig(cube_and_conquer=True)
        report = Canary(config).analyze_source(SIMPLE_UAF)
        assert report.num_reports >= 1
        assert all(b.witness_order for b in report.bugs)


def _keys(report):
    return sorted(b.key for b in report.bugs)


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_corpus_program_same_keys(self, path, backend):
        text = path.read_text()
        expects, checkers, overrides = _parse_directives(text)
        overrides.pop("parallel_solving", None)
        base = dict(checkers=checkers, **overrides)
        serial = Canary(AnalysisConfig(parallel_solving=False, **base)).analyze_source(
            text, filename=path.name
        )
        parallel = Canary(
            AnalysisConfig(
                parallel_solving=True, solver_backend=backend, solver_workers=4, **base
            )
        ).analyze_source(text, filename=path.name)
        assert _keys(serial) == _keys(parallel), path.name


class TestDriverSurface:
    def test_parse_time_recorded(self):
        report = Canary(AnalysisConfig()).analyze_source(SIMPLE_UAF)
        assert report.timings["parse"] >= 0.0
        assert report.timings["solving"] >= 0.0

    def test_solver_statistics_include_cache(self):
        report = Canary(AnalysisConfig()).analyze_source(SIMPLE_UAF)
        s = report.solver_statistics
        assert "cache_hits" in s and "cache_misses" in s
        assert s["cache_hits"] + s["cache_misses"] == s["queries"]
        assert 0.0 <= report.cache_hit_rate <= 1.0

    def test_checker_statistics_surfaced(self):
        report = Canary(AnalysisConfig()).analyze_source(SIMPLE_UAF)
        assert "use-after-free" in report.checker_statistics
        assert report.checker_statistics["use-after-free"]["reports"] == 1

    def test_describe_statistics(self):
        report = Canary(AnalysisConfig()).analyze_source(SIMPLE_UAF)
        text = report.describe_statistics()
        assert "queries" in text and "cache" in text and "timings" in text
