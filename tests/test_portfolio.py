"""Cube-and-conquer portfolio: split-atom selection and SAT/UNSAT/UNKNOWN
propagation across cubes (an undecided cube must never collapse to UNSAT)."""

import threading

import pytest

from repro.smt import (
    SAT,
    TRUE,
    UNKNOWN,
    UNSAT,
    Model,
    Solver,
    and_,
    bool_var,
    cube_solve,
    cube_solve_model,
    int_var,
    lt,
    not_,
    or_,
    pick_split_atoms,
    solve_formula,
)

a, b, c = bool_var("a"), bool_var("b"), bool_var("c")
x, y = int_var("px"), int_var("py")

#: UNSAT, but only after real CDCL conflicts: every assignment to {a, b}
#: falsifies one clause, and no clause is unit before the first decision.
FOUR_CLAUSE_UNSAT = and_(or_(a, b), or_(a, not_(b)), or_(not_(a), b), or_(not_(a), not_(b)))


def scripted_factory(outcomes):
    """A solver factory replaying (verdict, reason) pairs, one per cube.

    Used with ``max_workers=1`` so cube evaluation order is the cube
    enumeration order and the script is deterministic.
    """
    remaining = list(outcomes)
    lock = threading.Lock()

    class Scripted:
        def __init__(self):
            with lock:
                self.verdict, reason = remaining.pop(0)
            self.unknown_reason = reason or None

        def add(self, *terms):
            pass

        def check(self):
            return self.verdict

        def model(self):
            return Model({}, {}) if self.verdict is SAT else None

    return Scripted


class TestSplitAtoms:
    def test_picks_most_frequent_atoms(self):
        formula = and_(or_(a, b), or_(a, c), or_(a, not_(b)))
        atoms = pick_split_atoms(formula, k=1)
        assert atoms == [a]

    def test_respects_k(self):
        formula = and_(or_(a, b), or_(b, c))
        assert len(pick_split_atoms(formula, k=2)) == 2

    def test_no_atoms_means_no_split(self):
        assert pick_split_atoms(TRUE) == []


class TestCubeVerdicts:
    def test_sat_formula_returns_model(self):
        formula = and_(or_(a, b), or_(not_(a), c))
        verdict, model, reason = cube_solve_model(formula)
        assert verdict is SAT
        assert reason == ""
        assert model is not None
        assert model.eval(formula) is True

    def test_unsat_only_when_every_cube_unsat(self):
        verdict, model, reason = cube_solve_model(FOUR_CLAUSE_UNSAT)
        assert verdict is UNSAT
        assert model is None
        assert reason == ""

    def test_verdict_only_wrapper_agrees(self):
        assert cube_solve(FOUR_CLAUSE_UNSAT) is UNSAT
        assert cube_solve(or_(a, b)) is SAT

    def test_arithmetic_sat_model_satisfies_original(self):
        formula = and_(lt(x, y), lt(x, x + 5))
        verdict, model, _reason = cube_solve_model(formula)
        assert verdict is SAT
        solver = Solver()
        solver.add(formula)
        assert solver.check() is SAT


class TestUnknownPropagation:
    def test_undecided_cube_never_collapses_to_unsat(self):
        verdict, model, reason = cube_solve_model(
            FOUR_CLAUSE_UNSAT,
            split_atoms=[a],
            max_workers=1,
            solver_factory=scripted_factory([(UNSAT, ""), (UNKNOWN, "conflicts")]),
        )
        assert verdict is UNKNOWN
        assert model is None
        assert reason == "conflicts"

    def test_first_undecided_cubes_reason_wins(self):
        verdict, _model, reason = cube_solve_model(
            FOUR_CLAUSE_UNSAT,
            split_atoms=[a, b],
            max_workers=1,
            solver_factory=scripted_factory(
                [(UNKNOWN, "deadline"), (UNSAT, ""), (UNKNOWN, "conflicts"), (UNSAT, "")]
            ),
        )
        assert verdict is UNKNOWN
        assert reason == "deadline"

    def test_sat_cube_wins_over_earlier_unknown(self):
        verdict, model, reason = cube_solve_model(
            FOUR_CLAUSE_UNSAT,  # any formula with atoms; the script decides
            split_atoms=[a],
            max_workers=1,
            solver_factory=scripted_factory([(UNKNOWN, "conflicts"), (SAT, "")]),
        )
        assert verdict is SAT
        assert model is not None
        assert reason == ""

    def test_reason_defaults_to_conflicts_when_solver_gave_none(self):
        verdict, _model, reason = cube_solve_model(
            FOUR_CLAUSE_UNSAT,
            split_atoms=[a],
            max_workers=1,
            solver_factory=scripted_factory([(UNKNOWN, ""), (UNSAT, "")]),
        )
        assert verdict is UNKNOWN
        assert reason == "conflicts"


class TestRealBudgets:
    def test_conflict_budget_yields_unknown_with_reason(self):
        # Splitting on a free atom keeps the hard subformula intact in
        # every cube, so the per-cube conflict budget actually binds.
        free = bool_var("free_split_atom")
        verdict, model, reason = cube_solve_model(
            FOUR_CLAUSE_UNSAT, split_atoms=[free], max_conflicts=1
        )
        assert verdict is UNKNOWN
        assert model is None
        assert reason == "conflicts"

    def test_unbounded_same_formula_is_unsat(self):
        free = bool_var("free_split_atom")
        verdict, _model, reason = cube_solve_model(
            FOUR_CLAUSE_UNSAT, split_atoms=[free]
        )
        assert verdict is UNSAT
        assert reason == ""

    def test_timeout_yields_unknown_deadline(self):
        # Split on a free atom so no cube is decided by unit propagation
        # or quick refutation before the (already expired) deadline check.
        free = bool_var("free_split_atom")
        verdict, _model, reason = cube_solve_model(
            FOUR_CLAUSE_UNSAT, split_atoms=[free], timeout=0.0
        )
        assert verdict is UNKNOWN
        assert reason == "deadline"

    def test_solve_formula_cube_path_propagates_reason(self):
        verdict, ints, bools, _seconds, reason = solve_formula(
            FOUR_CLAUSE_UNSAT, max_conflicts=1, use_cube=True
        )
        # Cubes on the formula's own atoms decide it by unit propagation,
        # so force the monolithic path's budget too for comparison.
        direct = solve_formula(FOUR_CLAUSE_UNSAT, max_conflicts=1)
        assert direct[0] is UNKNOWN and direct[4] == "conflicts"
        assert verdict in (UNSAT, UNKNOWN)
        if verdict is UNKNOWN:
            assert reason == "conflicts"
        assert ints == {} and bools == {}

    def test_decided_verdicts_have_empty_reason(self):
        verdict, _ints, _bools, _seconds, reason = solve_formula(or_(a, b))
        assert verdict is SAT
        assert reason == ""
