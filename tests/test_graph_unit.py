"""Unit tests for the VFG graph container and node types."""

import pytest

from repro.frontend import parse_program
from repro.frontend.source import Location
from repro.ir.instructions import LoadInst, StoreInst
from repro.ir.values import MemObject, fresh_variable
from repro.lowering import lower_program
from repro.smt.terms import FALSE, TRUE, bool_var
from repro.vfg.graph import DefNode, NullNode, ObjNode, StoreNode, ValueFlowGraph


def make_store(label=1):
    return StoreInst(
        label=label,
        guard=TRUE,
        location=Location.unknown(),
        pointer=fresh_variable("p"),
        value=fresh_variable("v"),
    )


class TestNodes:
    def test_def_node_identity(self):
        v = fresh_variable("x")
        assert DefNode(v) == DefNode(v)
        assert DefNode(v) != DefNode(fresh_variable("x"))

    def test_store_node_identity(self):
        s = make_store()
        assert StoreNode(s) == StoreNode(s)
        assert StoreNode(s) != StoreNode(make_store(2))

    def test_obj_node_identity(self):
        o = MemObject("o", "heap")
        assert ObjNode(o) == ObjNode(o)
        assert ObjNode(o) != ObjNode(MemObject("o", "heap"))  # eq by identity

    def test_reprs(self):
        v = fresh_variable("x")
        assert "def" in repr(DefNode(v))
        assert "store@ℓ" in repr(StoreNode(make_store(7)))


class TestGraphContainer:
    def test_add_and_query(self):
        g = ValueFlowGraph()
        a, b = DefNode(fresh_variable("a")), DefNode(fresh_variable("b"))
        edge = g.add_edge(a, b, TRUE, "direct")
        assert edge is not None
        assert g.num_edges == 1
        assert g.out_edges(a) == [edge]
        assert g.in_edges(b) == [edge]
        assert g.out_edges(b) == []

    def test_false_guard_suppressed(self):
        g = ValueFlowGraph()
        a, b = DefNode(fresh_variable("a")), DefNode(fresh_variable("b"))
        assert g.add_edge(a, b, FALSE, "direct") is None
        assert g.num_edges == 0

    def test_self_edge_suppressed(self):
        g = ValueFlowGraph()
        a = DefNode(fresh_variable("a"))
        assert g.add_edge(a, a, TRUE, "direct") is None

    def test_duplicate_suppressed(self):
        g = ValueFlowGraph()
        a, b = DefNode(fresh_variable("a")), DefNode(fresh_variable("b"))
        assert g.add_edge(a, b, TRUE, "direct") is not None
        assert g.add_edge(a, b, bool_var("g"), "direct") is None  # same key
        assert g.num_edges == 1

    def test_distinct_kinds_not_duplicates(self):
        g = ValueFlowGraph()
        a, b = DefNode(fresh_variable("a")), DefNode(fresh_variable("b"))
        assert g.add_edge(a, b, TRUE, "direct") is not None
        assert g.add_edge(a, b, TRUE, "call", callsite=3) is not None
        assert g.num_edges == 2

    def test_interference_listing(self):
        g = ValueFlowGraph()
        s = make_store()
        load = LoadInst(
            label=2,
            guard=TRUE,
            location=Location.unknown(),
            dst=fresh_variable("d"),
            pointer=fresh_variable("q"),
        )
        obj = MemObject("o", "heap")
        g.add_edge(
            StoreNode(s),
            DefNode(load.dst),
            TRUE,
            "load",
            obj=obj,
            store=s,
            load=load,
            interthread=True,
        )
        assert len(g.interference_edges()) == 1

    def test_pretty_truncates(self):
        g = ValueFlowGraph()
        for i in range(10):
            g.add_edge(
                DefNode(fresh_variable("a")), DefNode(fresh_variable("b")), TRUE, "direct"
            )
        text = g.pretty(max_edges=3)
        assert "more" in text
