"""Tests for the command-line interfaces (python -m repro / repro.bench)."""

import pathlib
import subprocess
import sys

import pytest

from repro.__main__ import main as repro_main

CORPUS = pathlib.Path(__file__).parent / "corpus"


class TestAnalyzerCli:
    def test_buggy_file_exit_code_and_output(self, capsys):
        rc = repro_main([str(CORPUS / "uaf_basic.mcc")])
        out = capsys.readouterr().out
        assert rc == 1  # findings present
        assert "1 finding(s)" in out
        assert "use-after-free" in out

    def test_clean_file_exit_zero(self, capsys):
        rc = repro_main([str(CORPUS / "uaf_guarded_infeasible.mcc")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out

    def test_multiple_checkers(self, capsys):
        rc = repro_main(
            [
                str(CORPUS / "mixed_all_checkers.mcc"),
                "--checkers",
                "use-after-free,double-free,null-deref",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "use-after-free" in out

    def test_unknown_checker_rejected(self):
        with pytest.raises(SystemExit):
            repro_main([str(CORPUS / "uaf_basic.mcc"), "--checkers", "nonsense"])

    def test_missing_file(self, capsys):
        rc = repro_main(["/nonexistent/file.mcc"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.mcc"
        bad.write_text("void main( {")
        rc = repro_main([str(bad)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_show_vfg(self, capsys):
        rc = repro_main([str(CORPUS / "uaf_basic.mcc"), "--show-vfg"])
        out = capsys.readouterr().out
        assert "VFG:" in out

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backend_flags(self, backend, capsys):
        rc = repro_main(
            [
                str(CORPUS / "uaf_basic.mcc"),
                "--parallel",
                "--backend",
                backend,
                "--workers",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 finding(s)" in out

    def test_cube_flag(self, capsys):
        rc = repro_main([str(CORPUS / "uaf_basic.mcc"), "--cube"])
        out = capsys.readouterr().out
        assert rc == 1
        # The cube backend must still produce a witness interleaving.
        assert "witness interleaving" in out

    def test_stats_flag(self, capsys):
        rc = repro_main([str(CORPUS / "uaf_basic.mcc"), "--stats"])
        out = capsys.readouterr().out
        assert "queries" in out and "cache" in out and "parse" in out

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            repro_main([str(CORPUS / "uaf_basic.mcc"), "--backend", "nonsense"])

    def test_all_threads_flag(self, tmp_path, capsys):
        seq = tmp_path / "seq.mcc"
        seq.write_text(
            "void main() { int* p = malloc(); free(p); print(*p); }"
        )
        assert repro_main([str(seq)]) == 0  # inter-thread only: clean
        assert repro_main([str(seq), "--all-threads"]) == 1


class TestBenchCli:
    def test_subject_selection(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.bench",
                "--subjects",
                "lrzip",
                "--tools",
                "canary",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0
        assert "lrzip" in proc.stdout
        assert "Table 1" in proc.stdout
        assert "Fig. 8" in proc.stdout
