"""Focused tests: SMT model evaluation, solver determinism, bench profiles."""

import os

import pytest

from repro.bench.subjects import PROFILES, SUBJECTS, active_profile, project_spec
from repro.smt import (
    SAT,
    Solver,
    and_,
    bool_var,
    eq,
    int_const,
    int_var,
    le,
    lt,
    not_,
    or_,
)


class TestModelEvaluation:
    def _model(self, *terms):
        s = Solver()
        s.add(*terms)
        assert s.check() is SAT
        return s.model()

    def test_eval_constants(self):
        from repro.smt import TRUE, FALSE

        m = self._model(bool_var("a"))
        assert m.eval(TRUE) is True
        assert m.eval(FALSE) is False

    def test_eval_negation(self):
        a = bool_var("a")
        m = self._model(not_(a))
        assert m.eval(a) is False
        assert m.eval(not_(a)) is True

    def test_eval_conjunction_short_circuit(self):
        a, b = bool_var("a"), bool_var("b")
        m = self._model(a, not_(b))
        assert m.eval(and_(a, b)) is False
        assert m.eval(or_(a, b)) is True

    def test_eval_comparison_from_ints(self):
        x, y = int_var("x"), int_var("y")
        m = self._model(lt(x, y))
        assert m.eval(lt(x, y)) is True
        assert m.eval(lt(y, x)) is False

    def test_eval_arithmetic_terms(self):
        x = int_var("x")
        m = self._model(eq(x, int_const(5)))
        assert m.eval(le(x + 1, int_const(6))) is True
        assert m.eval(lt(x - 2, int_const(2))) is False

    def test_int_value_accessors(self):
        x = int_var("x")
        m = self._model(eq(x, int_const(7)))
        assert m.int_value(x) == 7
        assert m.int_value("x") == 7

    def test_bool_assignments_exposed(self):
        a = bool_var("a")
        m = self._model(a)
        assert m.bool_assignments().get(a) is True


class TestSolverDeterminism:
    def test_same_formula_same_model(self):
        # determinism matters for reproducible witnesses
        def solve():
            x, y, z = int_var("x"), int_var("y"), int_var("z")
            g = bool_var("g")
            s = Solver()
            s.add(or_(g, not_(g)), lt(x, y), lt(y, z))
            assert s.check() is SAT
            return s.model().order()

        assert solve() == solve()

    def test_statistics_shape(self):
        s = Solver()
        s.add(bool_var("a"))
        s.check()
        assert {"theory_rounds", "sat_conflicts", "quick_refuted"} <= set(
            s.statistics
        )


class TestBenchProfiles:
    def test_profiles_exist(self):
        assert {"quick", "paper"} <= set(PROFILES)
        assert PROFILES["paper"].max_lines > PROFILES["quick"].max_lines

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert active_profile().name == "paper"
        monkeypatch.delenv("REPRO_BENCH_PROFILE")
        assert active_profile().name == "quick"

    def test_spec_scales_with_kloc(self):
        quick = PROFILES["quick"]
        small = project_spec(SUBJECTS[0], quick)  # lrzip
        big = project_spec(SUBJECTS[-1], quick)  # firefox
        assert big.target_lines > small.target_lines
        assert big.target_lines <= quick.max_lines

    def test_spec_ground_truth_from_table1(self):
        quick = PROFILES["quick"]
        for subject in SUBJECTS:
            spec = project_spec(subject, quick)
            assert spec.real_bugs == subject.canary_reports - subject.canary_fps
            assert spec.canary_fps == subject.canary_fps

    def test_subject_na_data_encoded(self):
        git = next(s for s in SUBJECTS if s.name == "git")
        assert git.saber_reports is None  # NA in the paper
        lrzip = SUBJECTS[0]
        assert lrzip.saber_reports == 63
        assert lrzip.fsam_fp_rate == 93.75
