"""Unit tests for the SMT term DSL."""

from repro.smt import terms as T


class TestInterning:
    def test_bool_vars_interned(self):
        assert T.bool_var("a") is T.bool_var("a")
        assert T.bool_var("a") is not T.bool_var("b")

    def test_int_terms_interned(self):
        assert T.int_var("x") is T.int_var("x")
        assert T.int_const(3) is T.int_const(3)

    def test_compound_interned(self):
        a, b = T.bool_var("a"), T.bool_var("b")
        assert T.and_(a, b) is T.and_(a, b)
        assert T.or_(a, b) is T.or_(a, b)


class TestBooleanConstruction:
    def test_constants(self):
        assert T.true() is T.TRUE
        assert T.false() is T.FALSE
        assert T.TRUE.value is True
        assert T.FALSE.value is False

    def test_double_negation(self):
        a = T.bool_var("a")
        assert T.not_(T.not_(a)) is a

    def test_negation_of_constants(self):
        assert T.not_(T.TRUE) is T.FALSE
        assert T.not_(T.FALSE) is T.TRUE

    def test_and_identity_absorption(self):
        a = T.bool_var("a")
        assert T.and_(a, T.TRUE) is a
        assert T.and_(a, T.FALSE) is T.FALSE
        assert T.and_() is T.TRUE

    def test_or_identity_absorption(self):
        a = T.bool_var("a")
        assert T.or_(a, T.FALSE) is a
        assert T.or_(a, T.TRUE) is T.TRUE
        assert T.or_() is T.FALSE

    def test_and_flattening(self):
        a, b, c = (T.bool_var(n) for n in "abc")
        nested = T.and_(T.and_(a, b), c)
        flat = T.and_(a, b, c)
        assert nested is flat
        assert len(nested.args) == 3

    def test_and_dedup(self):
        a = T.bool_var("a")
        assert T.and_(a, a) is a

    def test_complementary_literals_fold(self):
        a = T.bool_var("a")
        assert T.and_(a, T.not_(a)) is T.FALSE
        assert T.or_(a, T.not_(a)) is T.TRUE

    def test_implies_iff(self):
        a, b = T.bool_var("a"), T.bool_var("b")
        assert T.implies(T.FALSE, a) is T.TRUE
        assert T.implies(T.TRUE, a) is a
        assert T.iff(a, a) is T.TRUE

    def test_operator_overloads(self):
        a, b = T.bool_var("a"), T.bool_var("b")
        assert (a & b) is T.and_(a, b)
        assert (a | b) is T.or_(a, b)
        assert (~a) is T.not_(a)

    def test_python_bool_coercion(self):
        a = T.bool_var("a")
        assert T.and_(a, True) is a
        assert T.and_(a, False) is T.FALSE


class TestArithmetic:
    def test_constant_folding_cmp(self):
        assert T.lt(1, 2) is T.TRUE
        assert T.lt(2, 1) is T.FALSE
        assert T.le(2, 2) is T.TRUE
        assert T.eq(3, 3) is T.TRUE
        assert T.eq(3, 4) is T.FALSE

    def test_reflexive_cmp(self):
        x = T.int_var("x")
        assert T.le(x, x) is T.TRUE
        assert T.lt(x, x) is T.FALSE
        assert T.eq(x, x) is T.TRUE

    def test_ge_gt_normalize_to_le_lt(self):
        x, y = T.int_var("x"), T.int_var("y")
        assert T.ge(x, y) is T.le(y, x)
        assert T.gt(x, y) is T.lt(y, x)

    def test_add_sub_folding(self):
        x = T.int_var("x")
        assert (x + 0) is x
        assert (x - 0) is x
        assert (x - x) is T.int_const(0)
        assert (T.int_const(2) + 3) is T.int_const(5)

    def test_int_operator_cmp(self):
        x, y = T.int_var("x"), T.int_var("y")
        assert (x < y) is T.lt(x, y)
        assert (x >= y) is T.ge(x, y)


class TestLiteralHelpers:
    def test_is_literal(self):
        a = T.bool_var("a")
        x, y = T.int_var("x"), T.int_var("y")
        assert T.is_literal(a)
        assert T.is_literal(T.not_(a))
        assert T.is_literal(T.lt(x, y))
        assert not T.is_literal(T.and_(a, T.bool_var("b")))

    def test_literal_atom(self):
        a = T.bool_var("a")
        assert T.literal_atom(a) == (a, True)
        assert T.literal_atom(T.not_(a)) == (a, False)

    def test_conjuncts(self):
        a, b = T.bool_var("a"), T.bool_var("b")
        assert list(T.conjuncts(T.and_(a, b))) == [a, b]
        assert list(T.conjuncts(a)) == [a]

    def test_pretty_round_trip_stable(self):
        a, b = T.bool_var("a"), T.bool_var("b")
        t = T.and_(a, T.or_(b, T.not_(a)))
        assert isinstance(t.pretty(), str)
        assert "a" in t.pretty() and "b" in t.pretty()
