"""Tests for the Andersen/flow-sensitive analyses and the baselines."""

from repro.frontend import parse_program
from repro.ir import ForkInst, LoadInst, StoreInst
from repro.lowering import lower_program
from repro.pointer.andersen import andersen
from repro.pointer.flowsensitive import flow_sensitive_pointsto
from repro.baselines import FsamBaseline, SaberBaseline
from repro import Canary

from programs import FIG2_BUGGY, FIG2_BUG_FREE, SIMPLE_UAF


def lower(src):
    return lower_program(parse_program(src))


def find(module, func, cls, nth=0):
    return [i for i in module.functions[func].body if isinstance(i, cls)][nth]


class TestAndersen:
    def test_alloc_and_copy(self):
        module = lower("void main() { int* p = malloc(); int* q = p; }")
        pts = andersen(module)
        body = module.functions["main"].body
        p = body[1].dst  # copy into source var p
        q = body[2].dst
        assert pts.points_to(p) == pts.points_to(q)
        assert len(pts.points_to(p)) == 1

    def test_store_load_through_memory(self):
        module = lower(
            "void main() { int** x = malloc(); int* a = malloc(); *x = a; int* c = *x; }"
        )
        pts = andersen(module)
        load = find(module, "main", LoadInst)
        a_objs = pts.points_to(find(module, "main", StoreInst).value)
        assert a_objs and a_objs <= pts.points_to(load.dst)

    def test_flow_insensitive_weakness(self):
        # Andersen merges both stores regardless of order: the load sees both.
        module = lower(
            """
            void main() {
                int** x = malloc();
                int* a = malloc();
                int* b = malloc();
                *x = a;
                int* c = *x;
                *x = b;
            }
            """
        )
        pts = andersen(module)
        load = find(module, "main", LoadInst)
        assert len(pts.points_to(load.dst)) == 2  # sees a's and b's objects

    def test_interprocedural(self):
        module = lower(
            """
            int* id(int* v) { return v; }
            void main() { int* p = malloc(); int* q = id(p); }
            """
        )
        pts = andersen(module)
        main = module.functions["main"]
        q = main.body[-1].dst
        assert len(pts.points_to(q)) == 1

    def test_may_alias(self):
        module = lower("void main() { int* p = malloc(); int* q = p; *q = 1; }")
        pts = andersen(module)
        body = module.functions["main"].body
        assert pts.may_alias(body[1].dst, body[2].dst)


class TestFlowSensitive:
    def test_strong_update_precision(self):
        # Flow-sensitive: the load between the stores sees only 'a'.
        module = lower(
            """
            void main() {
                int** x = malloc();
                int* a = malloc();
                int* b = malloc();
                *x = a;
                int* c = *x;
                *x = b;
            }
            """
        )
        pts = flow_sensitive_pointsto(module)
        load = find(module, "main", LoadInst)
        a_obj = next(iter(pts.points_to(find(module, "main", StoreInst, 0).value)))
        assert a_obj in pts.points_to(load.dst)
        # ... and is strictly more precise than Andersen here:
        assert len(pts.points_to(load.dst)) == 1

    def test_cross_thread_flow(self):
        module = lower(SIMPLE_UAF)
        pts = flow_sensitive_pointsto(module)
        load_main = find(module, "main", LoadInst)
        worker_alloc_obj = module.functions["worker"].body[0].obj
        assert worker_alloc_obj in pts.points_to(load_main.dst)

    def test_iterates_to_fixpoint(self):
        module = lower(SIMPLE_UAF)
        pts = flow_sensitive_pointsto(module)
        assert 1 <= pts.iterations <= 20

    def test_memory_snapshots_exist(self):
        module = lower(SIMPLE_UAF)
        pts = flow_sensitive_pointsto(module)
        assert pts.total_facts > 0
        assert len(pts.memory_at) > 0


class TestSaberBaseline:
    def test_reports_real_bug(self):
        result = SaberBaseline().detect_uaf(lower(SIMPLE_UAF))
        assert len(result.reports) >= 1

    def test_reports_guard_infeasible_fp(self):
        # The crux of Table 1: Saber flags the paper's bug-free Fig. 2.
        result = SaberBaseline().detect_uaf(lower(FIG2_BUG_FREE))
        canary = Canary().analyze_source(FIG2_BUG_FREE)
        assert len(result.reports) >= 1  # false positive
        assert canary.num_reports == 0  # Canary: no report

    def test_vfg_stats_populated(self):
        result = SaberBaseline().detect_uaf(lower(SIMPLE_UAF))
        assert result.vfg_edges > 0
        assert result.pointsto_facts > 0
        assert result.build_seconds >= 0

    def test_time_budget_timeout(self):
        result = SaberBaseline(time_budget=0.0).detect_uaf(lower(SIMPLE_UAF))
        assert result.timed_out


class TestFsamBaseline:
    def test_reports_real_bug(self):
        result = FsamBaseline().detect_uaf(lower(SIMPLE_UAF))
        assert len(result.reports) >= 1

    def test_reports_guard_infeasible_fp(self):
        result = FsamBaseline().detect_uaf(lower(FIG2_BUG_FREE))
        assert len(result.reports) >= 1  # no path sensitivity: FP

    def test_not_more_reports_than_saber(self):
        module = lower(FIG2_BUGGY)
        saber = SaberBaseline().detect_uaf(module)
        fsam = FsamBaseline().detect_uaf(lower(FIG2_BUGGY))
        assert len(fsam.reports) <= len(saber.reports) + 2  # broadly comparable

    def test_stats(self):
        result = FsamBaseline().detect_uaf(lower(SIMPLE_UAF))
        assert result.iterations >= 1
        assert result.vfg_edges > 0
