"""Unit tests for the detection layer: Φ_po, Φ_ls, path search, solving."""

import pytest

from repro.detection import (
    OrderConstraintBuilder,
    PathQuery,
    PathSearcher,
    RealizabilityChecker,
    SearchLimits,
    ValueFlowPath,
    order_var,
)
from repro.frontend import parse_program
from repro.ir import CallInst, ForkInst, FreeInst, LoadInst, SinkInst, StoreInst
from repro.lowering import lower_program
from repro.smt import SAT, Solver, TRUE, is_satisfiable
from repro.vfg import DefNode, ObjNode, StoreNode, build_vfg

from programs import FIG2_BUGGY, JOIN_PROTECTED, SIMPLE_UAF, THROUGH_CALL


def bundle_for(src):
    return build_vfg(lower_program(parse_program(src)))


def find(module, func, cls, nth=0):
    return [i for i in module.functions[func].body if isinstance(i, cls)][nth]


class TestOrderVariables:
    def test_order_var_named_by_label(self):
        bundle = bundle_for(SIMPLE_UAF)
        inst = bundle.module.functions["main"].body[0]
        assert order_var(inst).name == f"O{inst.label}"

    def test_order_var_interned(self):
        bundle = bundle_for(SIMPLE_UAF)
        inst = bundle.module.functions["main"].body[0]
        assert order_var(inst) is order_var(inst)


class TestProgramOrder:
    def test_same_function_ordered(self):
        bundle = bundle_for(SIMPLE_UAF)
        builder = OrderConstraintBuilder(bundle)
        a, b = bundle.module.functions["main"].body[:2]
        term = builder.program_order_pair(a, b)
        # O_a < O_b must hold; its converse must be refutable.
        assert is_satisfiable(term)
        from repro.smt import and_, lt

        assert not is_satisfiable(and_(term, lt(order_var(b), order_var(a))))

    def test_concurrent_pair_unordered(self):
        bundle = bundle_for(SIMPLE_UAF)
        builder = OrderConstraintBuilder(bundle)
        load_main = find(bundle.module, "main", LoadInst)
        free_child = find(bundle.module, "worker", FreeInst)
        assert builder.program_order_pair(load_main, free_child) is TRUE

    def test_path_order_conjunction(self):
        bundle = bundle_for(SIMPLE_UAF)
        builder = OrderConstraintBuilder(bundle)
        body = bundle.module.functions["main"].body
        term = builder.program_order(body[:4])
        assert is_satisfiable(term)

    def test_duplicate_statements_deduped(self):
        bundle = bundle_for(SIMPLE_UAF)
        builder = OrderConstraintBuilder(bundle)
        inst = bundle.module.functions["main"].body[0]
        assert builder.program_order([inst, inst, inst]) is TRUE


class TestLoadStoreOrder:
    def test_interference_edge_gets_order(self):
        bundle = bundle_for(FIG2_BUGGY)
        builder = OrderConstraintBuilder(bundle)
        edge = bundle.vfg.interference_edges()[0]
        phi_ls = builder.load_store_order(edge)
        assert is_satisfiable(phi_ls)
        # the store-before-load atom must be part of it
        from repro.smt import and_, lt

        reverse = lt(order_var(edge.load), order_var(edge.store))
        assert not is_satisfiable(and_(phi_ls, reverse))

    def test_join_protected_overwrite_refuted(self):
        # In the bait_order shape the old value cannot survive the
        # child's overwrite once Φ_ls and Φ_po combine.
        src = """
        void main() {
            int** slot = malloc();
            int* a = malloc();
            *slot = a;
            fork(t, w, slot);
            join(t);
            int* v = *slot;
            print(*v);
        }
        void w(int** s) {
            int* fresh = malloc();
            *s = fresh;
        }
        """
        bundle = bundle_for(src)
        builder = OrderConstraintBuilder(bundle)
        store_main = find(bundle.module, "main", StoreInst)
        load_after_join = find(bundle.module, "main", LoadInst, 0)
        edges = [
            e
            for e in bundle.vfg.out_edges(StoreNode(store_main))
            if e.load is load_after_join
        ]
        assert edges
        phi = builder.load_store_order(edges[0])
        assert not is_satisfiable(phi)  # the child's store always intervenes


class TestPathSearch:
    def test_origin_visited_with_empty_path(self):
        bundle = bundle_for(SIMPLE_UAF)
        alloc = bundle.module.functions["worker"].body[0]
        visited = []
        PathSearcher(bundle).search(
            ObjNode(alloc.obj), lambda n, p: visited.append((n, len(p.edges)))
        )
        assert visited[0] == (ObjNode(alloc.obj), 0)
        assert len(visited) > 1

    def test_max_depth_respected(self):
        bundle = bundle_for(SIMPLE_UAF)
        alloc = bundle.module.functions["worker"].body[0]
        depths = []
        PathSearcher(bundle, SearchLimits(max_depth=1)).search(
            ObjNode(alloc.obj), lambda n, p: depths.append(len(p.edges))
        )
        assert max(depths) <= 1

    def test_no_node_revisits_on_path(self):
        bundle = bundle_for(THROUGH_CALL)
        alloc = bundle.module.functions["worker"].body[0]

        def check(node, path):
            nodes = path.nodes()
            assert len(nodes) == len(set(map(id, nodes))) or len(set(nodes)) == len(nodes)

        PathSearcher(bundle).search(ObjNode(alloc.obj), check)

    def test_context_matching_blocks_mismatched_returns(self):
        # f() and g() both call id(); value entering from f's callsite
        # must not exit through g's return edge.
        src = """
        int* id(int* v) { return v; }
        void main() {
            int* p = malloc();
            int* q = malloc();
            int* a = id(p);
            int* b = id(q);
            print(*a);
            print(*b);
        }
        """
        bundle = bundle_for(src)
        p_alloc = bundle.module.functions["main"].body[0]
        reached_vars = set()

        def collect(node, path):
            if isinstance(node, DefNode):
                reached_vars.add(node.var.source_name or node.var.name)

        PathSearcher(bundle).search(ObjNode(p_alloc.obj), collect)
        assert "a" in reached_vars
        assert "b" not in reached_vars  # would require mismatched call/ret

    def test_statements_extraction(self):
        bundle = bundle_for(SIMPLE_UAF)
        alloc = bundle.module.functions["worker"].body[0]
        paths = []
        PathSearcher(bundle).search(
            ObjNode(alloc.obj),
            lambda n, p: paths.append(ValueFlowPath(p.origin, list(p.edges))),
        )
        longest = max(paths, key=lambda p: len(p.edges))
        statements = longest.statements(bundle)
        assert statements
        assert all(s is not None for s in statements)


class TestRealizability:
    def test_empty_path_realizable(self):
        bundle = bundle_for(SIMPLE_UAF)
        checker = RealizabilityChecker(bundle)
        alloc = bundle.module.functions["worker"].body[0]
        query = PathQuery(
            path=ValueFlowPath(origin=ObjNode(alloc.obj)),
            source_inst=None,
            sink_inst=None,
        )
        assert checker.check(query).realizable

    def test_statistics_updated(self):
        bundle = bundle_for(SIMPLE_UAF)
        checker = RealizabilityChecker(bundle)
        alloc = bundle.module.functions["worker"].body[0]
        query = PathQuery(
            path=ValueFlowPath(origin=ObjNode(alloc.obj)),
            source_inst=None,
            sink_inst=None,
        )
        checker.check(query)
        assert checker.statistics["queries"] == 1
        assert checker.statistics["sat"] == 1

    def test_contradictory_extra_constraints(self):
        from repro.smt import lt, int_var

        bundle = bundle_for(SIMPLE_UAF)
        checker = RealizabilityChecker(bundle)
        alloc = bundle.module.functions["worker"].body[0]
        x = int_var("x")
        query = PathQuery(
            path=ValueFlowPath(origin=ObjNode(alloc.obj)),
            source_inst=None,
            sink_inst=None,
            extra_constraints=(lt(x, x),),
        )
        result = checker.check(query)
        assert not result.realizable
        assert result.verdict == "unsat"

    def test_parallel_check_many(self):
        from repro.smt import lt, int_var

        bundle = bundle_for(SIMPLE_UAF)
        checker = RealizabilityChecker(bundle)
        alloc = bundle.module.functions["worker"].body[0]
        queries = [
            PathQuery(
                path=ValueFlowPath(origin=ObjNode(alloc.obj)),
                source_inst=None,
                sink_inst=None,
            )
            for _ in range(6)
        ]
        results = checker.check_many(queries, parallel=True, max_workers=3)
        assert all(r.realizable for r in results)

    def test_witness_only_order_vars(self):
        bundle = bundle_for(FIG2_BUGGY)
        checker = RealizabilityChecker(bundle)
        edge = bundle.vfg.interference_edges()[0]
        path = ValueFlowPath(origin=edge.src, edges=[edge])
        query = PathQuery(path=path, source_inst=None, sink_inst=None)
        result = checker.check(query)
        assert result.realizable
        assert all(k.startswith("O") for k in result.witness_order)
