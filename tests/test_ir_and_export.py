"""Tests: IR verifier, VFG export, report serialization, solver push/pop."""

import json

import pytest

from repro import AnalysisConfig, Canary
from repro.checkers import report_to_dict, report_to_json, report_to_sarif
from repro.frontend import parse_program
from repro.ir import IRModule, verify_module
from repro.ir.instructions import CopyInst, LoadInst
from repro.ir.values import IntConstant, Variable, fresh_variable
from repro.lowering import lower_program
from repro.smt import SAT, UNSAT, Solver, bool_var, not_
from repro.smt.terms import TRUE
from repro.vfg import build_vfg, to_dot, to_json

from programs import FIG2_BUGGY, FIG2_BUG_FREE, SIMPLE_UAF, THROUGH_CALL


def lower(src):
    return lower_program(parse_program(src))


class TestVerifier:
    @pytest.mark.parametrize(
        "src", [FIG2_BUG_FREE, FIG2_BUGGY, SIMPLE_UAF, THROUGH_CALL]
    )
    def test_lowered_modules_verify(self, src):
        report = verify_module(lower(src))
        assert report.ok, report.describe()

    def test_generated_projects_verify(self):
        from repro.bench import ProjectSpec, generate_project

        source, _ = generate_project(
            ProjectSpec(name="v", target_lines=600, real_bugs=1, seed=3)
        )
        report = verify_module(lower(source))
        assert report.ok, report.describe()

    def test_detects_ssa_violation(self):
        module = lower("void main() { int x = 1; }")
        func = module.functions["main"]
        # Manually break SSA: redefine an existing variable.
        existing = func.body[0].dst
        bad = CopyInst(
            label=module.new_label(),
            guard=TRUE,
            location=func.body[0].location,
            dst=existing,
            src=IntConstant(2),
        )
        func.body.append(bad)
        module.register(bad, "main")
        report = verify_module(module)
        assert not report.ok
        assert any("SSA violation" in e for e in report.errors)

    def test_detects_unregistered_label(self):
        module = lower("void main() { int x = 1; }")
        func = module.functions["main"]
        rogue = CopyInst(
            label=99_999,
            guard=TRUE,
            location=func.body[0].location,
            dst=fresh_variable("rogue"),
            src=IntConstant(1),
        )
        func.body.append(rogue)  # not registered
        report = verify_module(module)
        assert any("not registered" in e for e in report.errors)

    def test_strict_mode_raises(self):
        from repro.ir import VerificationError

        module = lower("void main() { int x = 1; }")
        func = module.functions["main"]
        bad = CopyInst(
            label=module.new_label(),
            guard=TRUE,
            location=func.body[0].location,
            dst=func.body[0].dst,
            src=IntConstant(2),
        )
        func.body.append(bad)
        module.register(bad, "main")
        with pytest.raises(VerificationError):
            verify_module(module, strict=True)

    def test_integer_pointer_flagged(self):
        module = lower("void main() { int* p = malloc(); }")
        func = module.functions["main"]
        bad = LoadInst(
            label=module.new_label(),
            guard=TRUE,
            location=func.body[0].location,
            dst=fresh_variable("v"),
            pointer=IntConstant(3),
        )
        func.body.append(bad)
        module.register(bad, "main")
        report = verify_module(module)
        assert any("integer used as pointer" in e for e in report.errors)


class TestVfgExport:
    def test_dot_contains_nodes_and_edges(self):
        bundle = build_vfg(lower(FIG2_BUGGY))
        dot = to_dot(bundle.vfg)
        assert dot.startswith("digraph vfg {")
        assert dot.rstrip().endswith("}")
        assert "style=dashed" in dot  # the interference edge
        assert "store@" in dot

    def test_dot_guard_labels(self):
        bundle = build_vfg(lower(FIG2_BUGGY))
        dot = to_dot(bundle.vfg)
        assert "theta1" in dot

    def test_json_round_trips(self):
        bundle = build_vfg(lower(SIMPLE_UAF))
        data = json.loads(to_json(bundle.vfg))
        assert len(data["nodes"]) == bundle.vfg.num_nodes
        assert len(data["edges"]) == bundle.vfg.num_edges
        kinds = {e["kind"] for e in data["edges"]}
        assert "alloc" in kinds and "load" in kinds

    def test_json_flags_interference(self):
        bundle = build_vfg(lower(FIG2_BUGGY))
        data = json.loads(to_json(bundle.vfg))
        assert any(e["interthread"] for e in data["edges"])


class TestReportSerialization:
    @pytest.fixture(scope="class")
    def report(self):
        return Canary().analyze_source(SIMPLE_UAF, filename="simple.mcc")

    def test_dict_shape(self, report):
        data = report_to_dict(report)
        assert data["tool"] == "canary-repro"
        assert len(data["bugs"]) == report.num_reports
        bug = data["bugs"][0]
        assert bug["kind"] == "use-after-free"
        assert bug["source"]["file"] == "simple.mcc"
        assert bug["witness_interleaving"]

    def test_json_parses(self, report):
        data = json.loads(report_to_json(report))
        assert data["bugs"]

    def test_sarif_structure(self, report):
        sarif = report_to_sarif(report)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "canary-repro"
        assert len(run["results"]) == report.num_reports
        result = run["results"][0]
        assert result["ruleId"] == "use-after-free"
        flow = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(flow) >= 1

    def test_sarif_empty_report(self):
        clean = Canary().analyze_source(FIG2_BUG_FREE)
        sarif = report_to_sarif(clean)
        assert sarif["runs"][0]["results"] == []


class TestSuppressionExplanation:
    def test_guard_contradiction_classified(self):
        # Arithmetic (non-syntactic) contradiction so that only the solver
        # — not the term constructors — can refute it; guard pruning is
        # disabled so the candidate survives to the checking stage.
        src = FIG2_BUG_FREE.replace("if (theta1)", "if (theta1 > 1)").replace(
            "if (!theta1)", "if (theta1 < 1)"
        )
        config = AnalysisConfig(collect_suppressed=True, prune_guards=False)
        report = Canary(config).analyze_source(src)
        assert report.num_reports == 0
        reasons = {s.reason for s in report.suppressed}
        assert "guard-contradiction" in reasons

    def test_order_violation_classified(self):
        src = """
        void main() {
            int** x = malloc();
            int* a = malloc();
            *x = a;
            fork(t, w, x);
            join(t);
            int* v = *x;
            print(*v);
        }
        void w(int** s) {
            int* old = *s;
            int* fresh = malloc();
            *s = fresh;
            free(old);
        }
        """
        config = AnalysisConfig(collect_suppressed=True)
        report = Canary(config).analyze_source(src)
        reasons = {s.reason for s in report.suppressed}
        assert "order-violation" in reasons

    def test_suppressed_empty_by_default(self):
        report = Canary().analyze_source(FIG2_BUG_FREE)
        assert report.suppressed == []

    def test_describe(self):
        src = FIG2_BUG_FREE.replace("if (theta1)", "if (theta1 > 1)").replace(
            "if (!theta1)", "if (theta1 < 1)"
        )
        config = AnalysisConfig(collect_suppressed=True, prune_guards=False)
        report = Canary(config).analyze_source(src)
        assert report.suppressed
        text = report.suppressed[0].describe()
        assert "suppressed" in text


class TestSolverPushPop:
    def test_push_pop_restores(self):
        a = bool_var("a")
        s = Solver()
        s.add(a)
        s.push()
        s.add(not_(a))
        assert s.check() is UNSAT
        s.pop()
        assert s.check() is SAT

    def test_nested_scopes(self):
        a, b = bool_var("a"), bool_var("b")
        s = Solver()
        s.push()
        s.add(a)
        s.push()
        s.add(not_(a))
        assert s.check() is UNSAT
        s.pop()
        assert s.check() is SAT
        s.pop()
        assert s.assertions() == []

    def test_pop_without_push_raises(self):
        with pytest.raises(IndexError):
            Solver().pop()
