"""Deterministic fault injection: every promised degradation path.

The resource-governance layer claims that a crashing pass, a stalled
solver query, a dying pool worker, or an expired wall budget degrades a
single report (with the degradation recorded) instead of taking down the
run.  Each class here exercises one of those paths through the armed
fault points in :mod:`repro.testing.faults`; the seed-matrix class
mirrors the CI ``CANARY_FAULT_SEED`` sweep.
"""

import os
import time

import pytest

from repro import AnalysisConfig, Canary
from repro.analysis.fingerprint import report_to_portable
from repro.detection import RealizabilityChecker, VerdictCache
from repro.frontend import FrontendError
from repro.smt import and_, int_var, lt
from repro.testing import faults
from repro.testing.faults import (
    CRASHABLE_POINTS,
    ENV_VAR,
    FaultError,
    FaultPlan,
    fault_point,
    inject,
    plan_from_seed,
    seed_from_env,
)

from programs import SIMPLE_UAF
from test_corpus import CORPUS_FILES, _parse_directives
from test_parallel_engine import bundle_for, empty_query


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    faults.clear()


@pytest.fixture(scope="module")
def bundle():
    return bundle_for(SIMPLE_UAF)


def _formulas(n):
    """Distinct satisfiable difference-logic formulas (unique variables
    keep the verdict cache and in-stream dedup out of the way)."""
    out = []
    for i in range(n):
        x, y = int_var(f"flt_x{i}"), int_var(f"flt_y{i}")
        out.append(and_(lt(x, y), lt(y, x + 3)))
    return out


def _fresh_canary(**overrides):
    overrides.setdefault("use_cache", False)
    return Canary(AnalysisConfig(**overrides))


class TestFaultHarness:
    def test_plan_json_round_trip(self):
        plan = FaultPlan.make(
            crash=["pass:verify"],
            stall=["solver:solve"],
            die=["worker:solve"],
            stall_seconds=0.1,
            die_once_path="/tmp/tok",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_inject_arms_and_always_disarms(self):
        plan = FaultPlan.make(crash=["pass:verify"])
        assert ENV_VAR not in os.environ
        with inject(plan):
            assert os.environ[ENV_VAR] == plan.to_json()
        assert ENV_VAR not in os.environ

    def test_unarmed_point_is_a_noop(self):
        with inject(FaultPlan.make(crash=["pass:verify"])):
            fault_point("pass:pointer")  # different point: no effect
        fault_point("pass:verify")  # disarmed: no effect

    def test_crash_point_raises_and_counts(self):
        with inject(FaultPlan.make(crash=["pass:verify"])):
            with pytest.raises(FaultError):
                fault_point("pass:verify")
            with pytest.raises(FaultError):
                fault_point("pass:verify")
            assert faults.fired("pass:verify") == 2

    def test_stall_point_sleeps(self):
        with inject(FaultPlan.make(stall=["solver:solve"], stall_seconds=0.05)):
            t0 = time.perf_counter()
            fault_point("solver:solve")
            assert time.perf_counter() - t0 >= 0.05

    def test_die_point_is_noop_in_main_process(self):
        with inject(FaultPlan.make(die=["worker:solve"])):
            fault_point("worker:solve")  # must not kill the test process
        assert faults.fired("worker:solve") == 0 or True  # reached = survived

    def test_plan_from_seed_is_deterministic(self):
        assert plan_from_seed(0) == FaultPlan()
        assert plan_from_seed(-3) == FaultPlan()
        for seed in range(1, 14):
            plan = plan_from_seed(seed)
            assert plan == plan_from_seed(seed)
            assert plan.crash == {CRASHABLE_POINTS[(seed - 1) % len(CRASHABLE_POINTS)]}
            if seed % 3 == 0:
                assert plan.stall == {"solver:solve"}
            else:
                assert plan.stall == frozenset()

    def test_seed_from_env(self, monkeypatch):
        monkeypatch.delenv(faults.SEED_ENV_VAR, raising=False)
        assert seed_from_env() == 0
        monkeypatch.setenv(faults.SEED_ENV_VAR, "7")
        assert seed_from_env() == 7
        monkeypatch.setenv(faults.SEED_ENV_VAR, "banana")
        assert seed_from_env(default=2) == 2


class TestPassCrashDegradation:
    @pytest.mark.parametrize("point", CRASHABLE_POINTS)
    def test_crashing_pass_degrades_not_raises(self, point):
        with inject(FaultPlan.make(crash=[point])):
            report = _fresh_canary().analyze_source(SIMPLE_UAF)
        assert report.degradation_warnings, point
        failed = [r for r in report.pass_statistics if r["status"] == "failed"]
        assert failed and failed[0]["name"] == point.split("pass:", 1)[1], point
        if point == "pass:verify":
            # Verification is advisory: the analysis itself still runs.
            assert report.num_reports >= 1
        else:
            assert report.num_reports == 0

    @pytest.mark.parametrize("point", ["pass:parse", "pass:lower"])
    def test_frontend_crash_yields_empty_degraded_report(self, point):
        with inject(FaultPlan.make(crash=[point])):
            report = _fresh_canary().analyze_source(SIMPLE_UAF)
        assert report.num_reports == 0
        assert any("frontend" in w for w in report.degradation_warnings)

    def test_malformed_input_still_raises_frontend_error(self):
        # FrontendError is the caller's problem, never degradation.
        with pytest.raises(FrontendError):
            _fresh_canary().analyze_source("int main( {{{")

    def test_dataflow_crash_degrades(self):
        with inject(FaultPlan.make(crash=["pass:dataflow"])):
            report = _fresh_canary().analyze_source(SIMPLE_UAF)
        assert report.num_reports == 0
        assert any("dataflow" in w for w in report.degradation_warnings)

    def test_crashing_checker_is_isolated_from_others(self):
        with inject(FaultPlan.make(crash=["pass:detect:use-after-free"])):
            report = _fresh_canary(
                checkers=("use-after-free", "double-free")
            ).analyze_source(SIMPLE_UAF)
        assert "double-free" in report.checker_statistics
        assert "use-after-free" not in report.checker_statistics
        assert any("use-after-free" in w for w in report.degradation_warnings)

    def test_degraded_report_round_trips_portably(self):
        with inject(FaultPlan.make(crash=["pass:pointer"])):
            report = _fresh_canary().analyze_source(SIMPLE_UAF)
        portable = report_to_portable(report)
        assert portable["degradation_warnings"] == report.degradation_warnings
        assert portable["timed_out"] is False


class TestSolverDegradation:
    def test_stalled_queries_hit_deadline_and_degrade(self):
        plan = FaultPlan.make(stall=["solver:solve"], stall_seconds=0.05)
        with inject(plan):
            report = _fresh_canary(solver_timeout_seconds=0.01).analyze_source(
                SIMPLE_UAF
            )
        stats = report.solver_statistics
        assert stats["unknown_deadline"] >= 1
        assert report.num_reports == 0  # UNKNOWN is never reported as a bug
        assert any("deadline" in w for w in report.degradation_warnings)
        assert any("undecided" in w for w in report.degradation_warnings)

    def test_unknown_is_counted_undecided_never_suppressed(self):
        report = _fresh_canary(
            solver_timeout_seconds=1e-6, collect_suppressed=True
        ).analyze_source(SIMPLE_UAF)
        undecided = sum(
            s.get("undecided", 0) for s in report.checker_statistics.values()
        )
        assert undecided >= 1
        # An undecided candidate was never *refuted*, so it must not show
        # up among the suppressed (refutation-explained) candidates.
        assert report.suppressed == []

    def test_unknown_never_conflated_with_decided_verdicts(self):
        report = _fresh_canary(solver_timeout_seconds=1e-6).analyze_source(SIMPLE_UAF)
        s = report.solver_statistics
        assert s["unknown"] >= 1
        assert s["sat"] + s["unsat"] + s["unknown"] == s["queries"]
        assert s["unknown_deadline"] + s["unknown_conflicts"] <= s["unknown"]


class TestPoolFaultTolerance:
    def test_worker_death_is_recorded_and_retried(self, bundle, tmp_path):
        checker = RealizabilityChecker(bundle, backend="process", cache=VerdictCache())
        plan = FaultPlan.make(
            die=["worker:solve"], die_once_path=str(tmp_path / "died")
        )
        with inject(plan):
            stream = checker.open_stream(max_workers=2, backend="process")
            for formula in _formulas(4):
                stream.submit_formula(formula)
            results = stream.finish()
        assert len(results) == 4
        assert all(r.verdict == "sat" for r in results)
        s = checker.statistics
        assert s["pool_failures"] >= 1
        assert s["pool_retries"] + s["pool_local_solves"] >= 1
        assert checker.degradation_summary()

    def test_retry_exhaustion_falls_back_to_local_solving(self, bundle):
        checker = RealizabilityChecker(bundle, backend="process", cache=VerdictCache())
        with inject(FaultPlan.make(die=["worker:solve"])):  # every worker dies
            stream = checker.open_stream(max_workers=1, backend="process")
            stream.max_retries = 1
            stream.retry_backoff = 0.01
            [formula] = _formulas(1)
            stream.submit_formula(formula)
            results = stream.finish()
        assert len(results) == 1
        assert results[0].verdict == "sat"  # solved in-process after retries
        s = checker.statistics
        assert s["pool_local_solves"] == 1
        assert s["pool_failures"] >= 2  # the original death plus the retry's
        summary = " ".join(checker.degradation_summary())
        assert "re-solved locally" in summary

    def test_batch_backend_falls_back_to_threads(self, bundle):
        checker = RealizabilityChecker(bundle, backend="process", cache=VerdictCache())
        queries = [empty_query(bundle), empty_query(bundle)]
        with inject(FaultPlan.make(die=["worker:solve"])):
            results = checker.check_many(queries, parallel=True, max_workers=2)
        assert len(results) == 2
        assert all(r.verdict in ("sat", "unsat") for r in results)
        assert checker.statistics["pool_failures"] >= 1

    def test_end_to_end_analysis_survives_pool_death(self, tmp_path):
        plan = FaultPlan.make(
            die=["worker:solve"], die_once_path=str(tmp_path / "died")
        )
        with inject(plan):
            report = _fresh_canary(
                parallel_solving=True,
                solver_backend="process",
                solver_workers=2,
            ).analyze_source(SIMPLE_UAF)
        assert report.num_reports >= 1  # the work was recovered, not dropped


class TestWallBudgetDegradation:
    def test_zero_budget_returns_partial_report_immediately(self):
        t0 = time.perf_counter()
        report = _fresh_canary(timeout_seconds=0.0).analyze_source(SIMPLE_UAF)
        assert time.perf_counter() - t0 < 5.0
        assert report.timed_out
        assert report.num_reports == 0
        assert report.pass_statistics is not None  # well-formed partial report

    def test_degraded_runs_are_never_memoized(self):
        canary = Canary(AnalysisConfig())  # caching on
        with inject(FaultPlan.make(crash=["pass:verify"])):
            degraded = canary.analyze_source(SIMPLE_UAF)
        assert degraded.degradation_warnings
        clean = canary.analyze_source(SIMPLE_UAF)
        # A run-cache hit would have replayed the degradation verbatim.
        assert clean.degradation_warnings == []
        assert not clean.timed_out
        assert clean.num_reports >= 1

    def test_timed_out_flag_round_trips_portably(self):
        report = _fresh_canary(timeout_seconds=0.0).analyze_source(SIMPLE_UAF)
        assert report_to_portable(report)["timed_out"] is True


class TestSeedMatrix:
    """The CI fault matrix in miniature: every seeded scenario must end
    in a completed report, degraded where (and only where) injected."""

    @pytest.mark.parametrize("seed", range(0, 7))
    def test_seeded_scenario_completes(self, seed):
        plan = plan_from_seed(seed, stall_seconds=0.01)
        with inject(plan):
            report = _fresh_canary(solver_timeout_seconds=0.5).analyze_source(
                SIMPLE_UAF
            )
        if seed == 0:
            assert report.degradation_warnings == []
            assert report.num_reports >= 1
        else:
            assert report.degradation_warnings


class TestConflictBudgetCorpusRegression:
    """Satellite of the UNKNOWN-propagation audit: a starved conflict
    budget may only *remove* reports (SAT→UNKNOWN), never invent or flip
    them — pinned across the whole regression corpus."""

    @staticmethod
    def _pair_keys(report):
        return {
            (b.kind, tuple(sorted((b.source.label, b.sink.label))))
            for b in report.bugs
        }

    @pytest.mark.parametrize("path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
    def test_tiny_conflict_budget_only_removes_reports(self, path):
        text = path.read_text()
        _expects, checkers, overrides = _parse_directives(text)
        overrides.pop("solver_max_conflicts", None)
        full = Canary(AnalysisConfig(checkers=checkers, **overrides)).analyze_source(
            text, filename=path.name
        )
        tiny = Canary(
            AnalysisConfig(checkers=checkers, solver_max_conflicts=1, **overrides)
        ).analyze_source(text, filename=path.name)
        full_keys = self._pair_keys(full)
        tiny_keys = self._pair_keys(tiny)
        assert tiny_keys <= full_keys, path.name
        missing = full_keys - tiny_keys
        if missing:
            undecided = sum(
                s.get("undecided", 0) for s in tiny.checker_statistics.values()
            )
            assert undecided >= 1, path.name


class TestControlFlowNeverDegrades:
    """Hard budget expiry and interrupts must *propagate* out of the
    pipeline — the pass-isolation catches re-raise them instead of
    converting the unwind into degradation_warnings (the over-broad
    ``except Exception`` bug the daemon sweep fixed)."""

    CONTROL_POINTS = [
        "pass:verify",
        "pass:pointer",
        "pass:dataflow",
        "pass:interference",
        "pass:detect:use-after-free",
    ]

    @pytest.mark.parametrize("point", CONTROL_POINTS)
    def test_budget_exceeded_propagates(self, point):
        from repro.analysis.budget import BudgetExceededError

        with inject(FaultPlan.make(cancel=[point])):
            with pytest.raises(BudgetExceededError) as excinfo:
                _fresh_canary().analyze_source(SIMPLE_UAF)
        assert excinfo.value.where == point

    @pytest.mark.parametrize("point", ["pass:parse", "pass:lower"])
    def test_budget_exceeded_propagates_from_frontend(self, point):
        from repro.analysis.budget import BudgetExceededError

        with inject(FaultPlan.make(cancel=[point])):
            with pytest.raises(BudgetExceededError):
                _fresh_canary().analyze_source(SIMPLE_UAF)

    @pytest.mark.parametrize("point", ["pass:pointer", "pass:interference"])
    def test_keyboard_interrupt_propagates(self, point):
        with inject(FaultPlan.make(interrupt=[point])):
            with pytest.raises(KeyboardInterrupt):
                _fresh_canary().analyze_source(SIMPLE_UAF)

    def test_interrupt_and_cancel_round_trip_plan_json(self):
        plan = FaultPlan.make(
            interrupt=["pass:pointer"], cancel=["pass:mhp"]
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert plan.points() == {"pass:pointer", "pass:mhp"}

    def test_ordinary_crash_still_degrades(self):
        # The re-raise is surgical: FaultError (a pass crash) keeps the
        # graceful-degradation contract.
        with inject(FaultPlan.make(crash=["pass:pointer"])):
            report = _fresh_canary().analyze_source(SIMPLE_UAF)
        assert report.degradation_warnings

    def test_cancelled_budget_reads_expired(self):
        from repro.analysis.budget import Budget

        budget = Budget(wall_seconds=None)
        assert not budget.expired()
        budget.cancel("client went away")
        assert budget.expired()
        assert budget.remaining() == 0.0
        assert budget.note_expired("checkpoint")
        assert budget.expirations == ["checkpoint"]
