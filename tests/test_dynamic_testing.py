"""Tests for the random-schedule dynamic-testing baseline."""

import pytest

from repro import Canary
from repro.frontend import parse_program
from repro.interp import Environment, Interpreter, dynamic_test
from repro.lowering import lower_program

from programs import FIG2_BUGGY, FIG2_BUG_FREE, JOIN_PROTECTED, SIMPLE_UAF


def lower(src):
    return lower_program(parse_program(src))


class TestRandomScheduler:
    def test_deterministic_given_seed(self):
        module = lower(SIMPLE_UAF)
        a = Interpreter(module).run_random(seed=7)
        b = Interpreter(module).run_random(seed=7)
        assert [repr(v) for v in a.violations] == [repr(v) for v in b.violations]
        assert a.steps == b.steps

    def test_different_seeds_differ_eventually(self):
        module = lower(SIMPLE_UAF)
        outcomes = {
            bool(Interpreter(module).run_random(seed=s).violations)
            for s in range(40)
        }
        assert outcomes == {True, False}  # the race is schedule-dependent

    def test_completes(self):
        module = lower(JOIN_PROTECTED)
        result = Interpreter(module).run_random(seed=3)
        assert result.completed


class TestDynamicTestHarness:
    def test_finds_racy_bug_sometimes(self):
        module = lower(SIMPLE_UAF)
        result = dynamic_test(module, trials=120, seed=5)
        rate = result.hit_rate("use-after-free")
        assert 0.0 < rate < 1.0, "the race must be schedule-dependent"
        assert result.first_hit["use-after-free"] >= 0

    def test_join_protected_never_fires(self):
        module = lower(JOIN_PROTECTED)
        result = dynamic_test(module, trials=60, seed=5)
        assert result.hit_rate("use-after-free") == 0.0

    def test_fig2_bug_free_never_fires_with_exclusive_guards(self):
        # theta and !theta can't both hold in any single execution.
        module = lower(FIG2_BUG_FREE)
        result = dynamic_test(module, trials=60, seed=9)
        assert result.kinds_found() == set()

    def test_describe(self):
        module = lower(SIMPLE_UAF)
        result = dynamic_test(module, trials=30, seed=2)
        text = result.describe()
        assert "random schedules" in text

    def test_guards_lower_hit_rate(self):
        # The guarded variant (bug fires only when theta holds AND the
        # schedule is unlucky) surfaces no more often than the unguarded.
        plain = dynamic_test(lower(SIMPLE_UAF), trials=150, seed=11)
        guarded = dynamic_test(lower(FIG2_BUGGY), trials=150, seed=11)
        assert guarded.hit_rate("use-after-free") <= plain.hit_rate(
            "use-after-free"
        ) + 0.05

    def test_static_always_finds_what_dynamic_sometimes_does(self):
        # the complementary half of the motivation claim
        module = lower(SIMPLE_UAF)
        dyn = dynamic_test(module, trials=100, seed=1)
        static = Canary().analyze_source(SIMPLE_UAF)
        if dyn.hit_rate("use-after-free") > 0:
            assert static.num_reports >= 1
