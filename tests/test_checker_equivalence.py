"""The CI equivalence-and-replay gate, as a runnable test suite.

Two contracts over the *entire* corpus, with every file's directive
checkers unioned with the three concurrency families:

* **equivalence** — detection must be byte-identical at every
  ``detect_workers`` width (1, 2, 8): same bug keys, same witness
  paths.  Sharded workers rebuild checkers from fixed kwargs and replay
  (source-index, sequence) ordinals, so any nondeterminism (unsorted
  object sets, dict-order iteration) shows up here;
* **replay** — every realizable report must confirm dynamically via
  :func:`repro.interp.confirm_all`.  Files configured with a relaxed
  memory model are skipped: the concrete interpreter executes program
  order within each thread, so a TSO/PSO reordering witness is not
  sequentially executable by construction.

Run as a script (``python tests/test_checker_equivalence.py``) to print
the replay-coverage table that the CI job publishes to its summary.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Tuple

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro import AnalysisConfig, Canary
from repro.interp import confirm_all

from test_corpus import CORPUS_FILES, _parse_directives

#: the concurrency families ride along on every corpus file — they must
#: be silent on files whose EXPECT lines do not mention them only if the
#: file really is clean for that kind, which the corpus suite pins; here
#: they only need to be *deterministic* and *replayable*.
CONCURRENCY_FAMILIES = ("data-race", "atomicity-violation", "order-violation")

WORKER_WIDTHS = (1, 2, 8)


def _file_setup(path: Path) -> Tuple[str, Tuple[str, ...], Dict[str, object]]:
    text = path.read_text()
    _expects, checkers, config = _parse_directives(text)
    all_checkers = tuple(dict.fromkeys(tuple(checkers) + CONCURRENCY_FAMILIES))
    return text, all_checkers, config


def _analyze(text, filename, checkers, config, workers=1):
    overrides = dict(config, checkers=checkers, use_cache=False)
    if workers > 1:
        overrides.update(detect_workers=workers, solver_backend="process")
    report = Canary(AnalysisConfig(**overrides)).analyze_source(
        text, filename=filename
    )
    return report


def _signature(report):
    return sorted((b.key, tuple(b.path)) for b in report.bugs)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
def test_detection_equivalent_at_every_width(path: Path):
    text, checkers, config = _file_setup(path)
    reference = None
    for width in WORKER_WIDTHS:
        report = _analyze(text, path.name, checkers, config, workers=width)
        signature = _signature(report)
        if reference is None:
            reference = signature
        else:
            assert signature == reference, (
                f"{path.name}: detect_workers={width} diverged from serial"
            )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
def test_every_realizable_report_replays(path: Path):
    text, checkers, config = _file_setup(path)
    if config.get("memory_model", "sc") != "sc":
        pytest.skip("relaxed-memory witness is not sequentially executable")
    report = _analyze(text, path.name, checkers, config)
    results = confirm_all(report.bundle.module, report.bugs)
    unconfirmed = [r for r in results if not r.confirmed]
    assert not unconfirmed, "\n".join(r.describe() for r in unconfirmed)


def replay_coverage() -> Tuple[Dict[str, Tuple[int, int]], int]:
    """(kind -> (confirmed, total)) over the SC corpus, plus files skipped."""
    per_kind: Dict[str, Tuple[int, int]] = {}
    skipped = 0
    for path in CORPUS_FILES:
        text, checkers, config = _file_setup(path)
        if config.get("memory_model", "sc") != "sc":
            skipped += 1
            continue
        report = _analyze(text, path.name, checkers, config)
        for result in confirm_all(report.bundle.module, report.bugs):
            confirmed, total = per_kind.get(result.bug.kind, (0, 0))
            per_kind[result.bug.kind] = (
                confirmed + int(result.confirmed),
                total + 1,
            )
    return per_kind, skipped


def main() -> int:
    per_kind, skipped = replay_coverage()
    print("| kind | confirmed | total |")
    print("|------|-----------|-------|")
    failures = 0
    for kind in sorted(per_kind):
        confirmed, total = per_kind[kind]
        print(f"| {kind} | {confirmed} | {total} |")
        failures += total - confirmed
    grand = [sum(v[i] for v in per_kind.values()) for i in (0, 1)]
    print(f"| **all** | **{grand[0]}** | **{grand[1]}** |")
    print()
    print(
        f"{len(CORPUS_FILES) - skipped} corpus files replayed,"
        f" {skipped} skipped (relaxed memory model)."
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
