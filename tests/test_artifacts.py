"""Tests for the benchmark artifact writers (CSV, ASCII charts)."""

import csv
import io

import pytest

from repro.bench import (
    PROFILES,
    SUBJECTS,
    ascii_time_chart,
    fig7_csv,
    fig8_csv,
    run_subject,
    table1_csv,
    write_artifacts,
)


@pytest.fixture(scope="module")
def runs():
    return [run_subject(s, PROFILES["quick"]) for s in SUBJECTS[:3]]


class TestCsv:
    def test_fig7_csv_parses(self, runs):
        rows = list(csv.reader(io.StringIO(fig7_csv(runs))))
        assert rows[0][0] == "index"
        assert len(rows) == len(runs) + 1
        # every data row has 9 columns
        assert all(len(r) == 9 for r in rows[1:])

    def test_table1_csv_contains_counts(self, runs):
        rows = list(csv.reader(io.StringIO(table1_csv(runs))))
        header = rows[0]
        canary_idx = header.index("canary_reports")
        for row, run in zip(rows[1:], runs):
            assert int(row[canary_idx]) == run.tools["canary"].reports

    def test_fig8_csv_has_fits(self, runs):
        text = fig8_csv(runs)
        assert "fit_time" in text
        assert "fit_memory" in text

    def test_na_cells(self, runs):
        # Force an NA by faking a timeout on a copy of a run.
        import copy

        fake = copy.deepcopy(runs[0])
        fake.tools["saber"].timed_out = True
        text = fig7_csv([fake])
        assert "NA" in text


class TestAsciiChart:
    def test_chart_structure(self, runs):
        chart = ascii_time_chart(runs)
        assert "S=Saber" in chart
        for run in runs:
            assert run.subject.name in chart
        # three bars per subject
        assert chart.count("C") >= len(runs)

    def test_empty_runs(self):
        assert "no data" in ascii_time_chart([])


class TestWriteArtifacts:
    def test_files_written(self, runs, tmp_path):
        paths = write_artifacts(runs, tmp_path)
        assert len(paths) == 5  # 3 CSVs + ASCII chart + meta.json provenance
        for p in paths:
            content = open(p).read()
            assert content.strip()
