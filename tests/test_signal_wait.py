"""Condition-variable signal→wait ordering: lowering, the
:class:`~repro.threads.condvars.CondVarAnalysis`, the Φ_po edges in
:meth:`OrderConstraintBuilder.signal_wait_order`, and the interpreter's
latch semantics.

The edge is a fence: it orders across *all* memory models, unlike the
store/load relaxations.
"""

import pytest

from repro import AnalysisConfig, Canary
from repro.frontend import parse_program
from repro.interp import Interpreter
from repro.ir import SignalInst, WaitInst
from repro.lowering import lower_program
from repro.pointer.steensgaard import steensgaard
from repro.threads.callgraph import build_thread_call_graph
from repro.threads.condvars import CondVarAnalysis
from repro.threads.mhp import MhpAnalysis

# The handoff: main must not free until the reader signals it is done.
HANDOFF_SAFE = """
void main() {
    int* p = malloc();
    *p = 5;
    fork(t, reader, p);
    wait(done);
    free(p);
}
void reader(int* p) {
    print(*p);
    signal(done);
}
"""

HANDOFF_MISSING_WAIT = """
void main() {
    int* p = malloc();
    *p = 5;
    fork(t, reader, p);
    free(p);
}
void reader(int* p) {
    print(*p);
    signal(done);
}
"""

RACE_ORDERED = """
void main() {
    int* c = malloc();
    *c = 1;
    fork(t, worker, c);
    wait(cv);
    int r = *c;
    print(r);
}
void worker(int* c) {
    *c = 7;
    signal(cv);
}
"""


def lower(src):
    return lower_program(parse_program(src))


def mhp_of(module):
    return MhpAnalysis(build_thread_call_graph(module, steensgaard(module)))


def run(src, checkers=("use-after-free",), **overrides):
    overrides.setdefault("use_cache", False)
    return Canary(AnalysisConfig(checkers=checkers, **overrides)).analyze_source(src)


class TestLowering:
    def test_intrinsics_lower_to_instructions(self):
        module = lower(HANDOFF_SAFE)
        waits = [
            i for i in module.all_instructions() if isinstance(i, WaitInst)
        ]
        signals = [
            i for i in module.all_instructions() if isinstance(i, SignalInst)
        ]
        assert [w.cond for w in waits] == ["done"]
        assert [s.cond for s in signals] == ["done"]

    def test_brief_rendering(self):
        module = lower(HANDOFF_SAFE)
        briefs = {
            i.brief()
            for i in module.all_instructions()
            if isinstance(i, (SignalInst, WaitInst))
        }
        assert briefs == {"signal done", "wait done"}


class TestCondVarAnalysis:
    def test_indexes_by_condition(self):
        module = lower(HANDOFF_SAFE)
        cv = CondVarAnalysis(module, mhp_of(module))
        assert cv.conditions == ("done",)
        assert cv.has_sync()
        assert len(cv.signals_of("done")) == 1
        assert len(cv.waits_of("done")) == 1

    def test_no_sync_without_condvars(self):
        module = lower("void main() { int* p = malloc(); free(p); }")
        cv = CondVarAnalysis(module, mhp_of(module))
        assert not cv.has_sync()
        assert cv.conditions == ()

    def test_ordered_before_through_handoff(self):
        module = lower(HANDOFF_SAFE)
        cv = CondVarAnalysis(module, mhp_of(module))
        from repro.ir import FreeInst, LoadInst

        use = [i for i in module.all_instructions() if isinstance(i, LoadInst)][0]
        free = [i for i in module.all_instructions() if isinstance(i, FreeInst)][0]
        assert cv.ordered_before(use, free)
        assert not cv.ordered_before(free, use)
        assert not cv.sync_free(use, free)


class TestCheckingWithSignalWait:
    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_handoff_uaf_silent_across_memory_models(self, model):
        # Signal→wait is a fence: the edge holds under every model.
        report = run(HANDOFF_SAFE, memory_model=model)
        assert report.num_reports == 0, model

    def test_missing_wait_fires(self):
        report = run(HANDOFF_MISSING_WAIT)
        assert report.num_reports >= 1

    @pytest.mark.parametrize("model", ["sc", "tso", "pso"])
    def test_race_ordered_by_signal_wait(self, model):
        report = run(RACE_ORDERED, checkers=("data-race",), memory_model=model)
        assert report.num_reports == 0, model

    def test_race_fires_without_the_wait(self):
        src = RACE_ORDERED.replace("wait(cv);\n", "")
        report = run(src, checkers=("data-race",))
        assert report.num_reports >= 1

    def test_signal_before_wait_in_same_thread_deadlock_suppresses(self):
        # The only signal is ordered after the wait: nothing past the
        # wait can execute, so the would-be UAF is unreachable.
        src = """
        void main() {
            int* p = malloc();
            fork(t, reader, p);
            wait(done);
            signal(done);
            free(p);
        }
        void reader(int* p) {
            print(*p);
        }
        """
        report = run(src)
        assert report.num_reports == 0


class TestInterpreterLatch:
    def test_handoff_runs_to_completion(self):
        module = lower(HANDOFF_SAFE)
        result = Interpreter(module).run()
        assert result.completed
        assert result.output == ["int(5)"]
        assert result.violations == []

    def test_unsignalled_wait_blocks_without_hanging(self):
        module = lower("void main() { wait(never); print(1); }")
        result = Interpreter(module).run(max_steps=1000)
        assert not result.completed
        assert result.output == []

    def test_signal_is_a_latch_not_a_pulse(self):
        # Signal first, wait later: the wait must pass (latch semantics —
        # the static edge only requires O_signal < O_wait).
        module = lower(
            """
            void main() {
                signal(go);
                wait(go);
                print(7);
            }
            """
        )
        result = Interpreter(module).run()
        assert result.completed
        assert result.output == ["int(7)"]
