"""Shared MiniCC test programs."""

# The paper's Fig. 2: bug-free because the two branch conditions
# contradict each other (theta1 vs !theta1).
FIG2_BUG_FREE = """
extern int theta1;

void main() {
    int** x = malloc();
    int* a = malloc();
    *x = a;
    fork(t, thread1, x);
    if (theta1) {
        int* c = *x;
        print(*c);
    }
}

void thread1(int** y) {
    int* b = malloc();
    if (!theta1) {
        *y = b;
        free(b);
    }
}
"""

# Same program with compatible guards: a real inter-thread UAF.
FIG2_BUGGY = FIG2_BUG_FREE.replace("if (!theta1)", "if (theta1)")

# Unconditional inter-thread UAF (no guards at all).
SIMPLE_UAF = """
void main() {
    int** x = malloc();
    int* a = malloc();
    *x = a;
    fork(t, worker, x);
    int* c = *x;
    print(*c);
}

void worker(int** y) {
    int* b = malloc();
    *y = b;
    free(b);
}
"""

# Free and use ordered by join: never a UAF.
JOIN_PROTECTED = """
void main() {
    int** x = malloc();
    int* a = malloc();
    *x = a;
    fork(t, worker, x);
    int* c = *x;
    join(t);
    print(*c);
}

void worker(int** y) {
    int* b = malloc();
    *y = b;
}
"""

# The use happens before the fork: the child's free cannot precede it.
USE_BEFORE_FORK = """
void main() {
    int** x = malloc();
    int* a = malloc();
    *x = a;
    int* c = *x;
    print(*c);
    fork(t, worker, x);
}

void worker(int** y) {
    int* b = *y;
    free(b);
    *y = b;
}
"""

# Inter-thread NULL dereference through shared memory.
NULL_SHARED = """
void main() {
    int** x = malloc();
    int* a = malloc();
    *x = a;
    fork(t, nuller, x);
    int* c = *x;
    *c = 5;
}

void nuller(int** y) {
    *y = null;
}
"""

# Double free across threads.
DOUBLE_FREE = """
void main() {
    int** x = malloc();
    int* a = malloc();
    *x = a;
    fork(t, freer, x);
    int* c = *x;
    free(c);
}

void freer(int** y) {
    int* b = *y;
    free(b);
}
"""

# Information leak through shared memory across threads.
TAINT_LEAK = """
void main() {
    int** x = malloc();
    int* secret = taint_source();
    fork(t, publisher, x);
    *x = secret;
}

void publisher(int** y) {
    int* v = *y;
    taint_sink(v);
}
"""

# Function pointer fork target.
FUNC_PTR_FORK = """
void main() {
    int** x = malloc();
    int* a = malloc();
    *x = a;
    fork(t, worker, x);
    int* c = *x;
    print(*c);
}

void worker(int** y) {
    int* b = malloc();
    *y = b;
    free(b);
}
"""

# Value flows through a helper call (summary application).
THROUGH_CALL = """
void main() {
    int** x = malloc();
    int* a = malloc();
    put(x, a);
    fork(t, worker, x);
    int* c = get(x);
    print(*c);
}

void put(int** slot, int* value) {
    *slot = value;
}

int* get(int** slot) {
    int* out = *slot;
    return out;
}

void worker(int** y) {
    int* b = malloc();
    *y = b;
    free(b);
}
"""

# Loop containing a fork: unrolling bounds the thread count.
FORK_IN_LOOP = """
void main() {
    int** x = malloc();
    int* a = malloc();
    *x = a;
    int i = 0;
    while (i < 10) {
        fork(t, worker, x);
        i = i + 1;
    }
    int* c = *x;
    print(*c);
}

void worker(int** y) {
    int* b = malloc();
    *y = b;
    free(b);
}
"""
