"""Tests for the benchmark substrate: generator, subjects, fits, metering."""

import pytest

from repro import Canary
from repro.bench import (
    PROFILES,
    SUBJECTS,
    ProjectSpec,
    generate_project,
    linear_fit,
    measure,
    prepare_subject,
    project_spec,
    run_subject,
)
from repro.bench.tables import render_fig7_time, render_fig8, render_table1
from repro.frontend import parse_program
from repro.lowering import lower_program


class TestGenerator:
    def test_deterministic(self):
        spec = ProjectSpec(name="x", target_lines=600, seed=11)
        a, _ = generate_project(spec)
        b, _ = generate_project(spec)
        assert a == b

    def test_target_size_respected(self):
        spec = ProjectSpec(name="x", target_lines=2000, seed=3)
        source, _ = generate_project(spec)
        lines = source.count("\n")
        assert 1400 <= lines <= 2800  # within ~30% of target

    def test_parses_and_lowers(self):
        spec = ProjectSpec(name="x", target_lines=800, real_bugs=2, seed=5)
        source, _ = generate_project(spec)
        module = lower_program(parse_program(source))
        assert module.size() > 100

    def test_ground_truth_classification(self):
        spec = ProjectSpec(
            name="x", target_lines=400, real_bugs=1, canary_fps=1, seed=5
        )
        _source, truth = generate_project(spec)
        assert truth.classify_free_site("real_uaf_worker_0") == "tp"
        assert truth.classify_free_site("cfp_uaf_worker_0") == "fp"
        assert truth.classify_free_site("anything_else") == "fp"

    def test_canary_matches_injection_counts(self):
        spec = ProjectSpec(
            name="x",
            target_lines=500,
            real_bugs=2,
            canary_fps=1,
            guard_baits=3,
            order_baits=3,
            seed=9,
        )
        source, truth = generate_project(spec)
        report = Canary().analyze_source(source)
        tps = sum(
            1
            for b in report.bugs
            if truth.classify_free_site(report.bundle.module.function_of(b.source))
            == "tp"
        )
        assert tps == 2
        assert report.num_reports == 3  # 2 real + 1 canary-fp, baits pruned

    def test_zero_bug_project_clean(self):
        spec = ProjectSpec(
            name="x", target_lines=400, real_bugs=0, canary_fps=0, seed=2
        )
        source, _ = generate_project(spec)
        report = Canary().analyze_source(source)
        assert report.num_reports == 0


class TestSubjects:
    def test_twenty_subjects(self):
        assert len(SUBJECTS) == 20
        assert SUBJECTS[0].name == "lrzip"
        assert SUBJECTS[-1].name == "firefox"

    def test_table1_totals_encoded(self):
        assert sum(s.canary_reports for s in SUBJECTS) == 15
        assert sum(s.canary_fps for s in SUBJECTS) == 4

    def test_sizes_monotone_with_kloc(self):
        profile = PROFILES["quick"]
        sizes = [project_spec(s, profile).target_lines for s in SUBJECTS]
        klocs = [s.kloc for s in SUBJECTS]
        for (k1, l1), (k2, l2) in zip(zip(klocs, sizes), zip(klocs[1:], sizes[1:])):
            if k1 <= k2:
                assert l1 <= l2

    def test_prepare_subject_cached(self):
        profile = PROFILES["quick"]
        a = prepare_subject(SUBJECTS[0], profile)
        b = prepare_subject(SUBJECTS[0], profile)
        assert a[0] is b[0]


class TestCurveFit:
    def test_perfect_line(self):
        fit = linear_fit([1, 2, 3, 4], [2, 4, 6, 8])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line(self):
        fit = linear_fit([1, 2, 3, 4, 5], [2.1, 3.9, 6.2, 7.8, 10.1])
        assert fit.r_squared > 0.99
        assert 1.8 < fit.slope < 2.2

    def test_r_squared_degrades_with_noise(self):
        good = linear_fit([1, 2, 3, 4], [1, 2, 3, 4])
        bad = linear_fit([1, 2, 3, 4], [1, 4, 2, 3])
        assert good.r_squared > bad.r_squared

    def test_errors(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])
        with pytest.raises(ValueError):
            linear_fit([1, 1], [1, 2])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_equation_string(self):
        fit = linear_fit([0, 1], [1, 3])
        text = fit.equation("KLoC", "time")
        assert "KLoC" in text and "R²" in text


class TestMetering:
    def test_measure_returns_result(self):
        m = measure(lambda: 41 + 1)
        assert m.result == 42
        assert m.seconds >= 0
        assert not m.timed_out

    def test_memory_tracked(self):
        m = measure(lambda: [0] * 200_000)
        assert m.peak_mb > 0.5

    def test_budget_flag(self):
        import time

        m = measure(lambda: time.sleep(0.02), budget_seconds=0.001)
        assert m.timed_out


class TestRunnerAndTables:
    @pytest.fixture(scope="class")
    def run(self):
        return run_subject(SUBJECTS[0], PROFILES["quick"])

    def test_all_tools_present(self, run):
        assert set(run.tools) == {"canary", "saber", "fsam"}

    def test_canary_matches_table1_row(self, run):
        canary = run.tools["canary"]
        assert canary.reports == SUBJECTS[0].canary_reports
        assert canary.false_positives == SUBJECTS[0].canary_fps

    def test_renderers(self, run):
        for renderer in (render_fig7_time, render_table1, render_fig8):
            text = renderer([run])
            assert "lrzip" in text
