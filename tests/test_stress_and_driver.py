"""Solver stress tests and analysis-driver behavior tests."""

import time

import pytest

from repro import AnalysisConfig, Canary
from repro.smt import (
    SAT,
    UNSAT,
    Solver,
    and_,
    bool_var,
    int_var,
    lt,
    not_,
    or_,
)

from programs import FIG2_BUGGY, SIMPLE_UAF


class TestSolverStress:
    def test_deeply_nested_formula(self):
        t = bool_var("x0")
        for i in range(1, 400):
            t = not_(or_(bool_var(f"x{i}"), not_(t)))
        s = Solver()
        s.add(t)
        assert s.check() in (SAT, UNSAT)  # must terminate, not crash

    def test_long_order_chain_sat(self):
        parts = [lt(int_var(f"O{i}"), int_var(f"O{i+1}")) for i in range(800)]
        s = Solver()
        s.add(and_(*parts))
        assert s.check() is SAT
        m = s.model()
        assert m.int_value(int_var("O0")) < m.int_value(int_var("O800"))

    def test_long_order_cycle_unsat(self):
        parts = [lt(int_var(f"O{i}"), int_var(f"O{i+1}")) for i in range(300)]
        parts.append(lt(int_var("O300"), int_var("O0")))
        s = Solver()
        s.add(and_(*parts))
        assert s.check() is UNSAT

    def test_many_independent_guards(self):
        parts = []
        for i in range(300):
            g = bool_var(f"g{i}")
            parts.append(or_(g, not_(g)))
        parts.append(bool_var("g0"))
        s = Solver()
        s.add(and_(*parts))
        assert s.check() is SAT

    def test_wide_disjunction_of_orders(self):
        x = [int_var(f"v{i}") for i in range(50)]
        f = or_(*[lt(x[i], x[(i + 1) % 50]) for i in range(50)])
        s = Solver()
        s.add(f)
        assert s.check() is SAT


class TestDriverBehavior:
    def test_timings_present(self):
        report = Canary().analyze_source(SIMPLE_UAF)
        assert set(report.timings) >= {"lowering", "vfg", "checking"}
        assert all(v >= 0 for v in report.timings.values())

    def test_memory_tracking(self):
        report = Canary().analyze_source(SIMPLE_UAF, track_memory=True)
        assert report.peak_memory_bytes > 0
        untracked = Canary().analyze_source(SIMPLE_UAF)
        assert untracked.peak_memory_bytes == 0

    def test_solver_statistics_propagated(self):
        report = Canary().analyze_source(FIG2_BUGGY)
        assert report.solver_statistics["queries"] >= 1
        assert report.solver_statistics["sat"] >= 1

    def test_describe_mentions_counts(self):
        report = Canary().analyze_source(SIMPLE_UAF)
        text = report.describe()
        assert "1 report(s)" in text
        assert "interference edge" in text

    def test_bundle_exposed(self):
        report = Canary().analyze_source(SIMPLE_UAF)
        assert report.bundle is not None
        assert report.bundle.vfg.num_edges > 0

    def test_reusable_canary_instance(self):
        canary = Canary()
        a = canary.analyze_source(SIMPLE_UAF)
        b = canary.analyze_source(FIG2_BUGGY)
        assert a.num_reports == 1 and b.num_reports == 1

    def test_unknown_checker_raises(self):
        with pytest.raises(KeyError):
            Canary(AnalysisConfig(checkers=("nonsense",))).analyze_source(SIMPLE_UAF)

    def test_config_immutable(self):
        config = AnalysisConfig()
        with pytest.raises(Exception):
            config.unroll_depth = 5  # frozen dataclass
