"""Seeded differential fuzzing of the CDCL core against brute force.

Random small CNF instances are solved by :class:`repro.smt.sat.SatSolver`
and cross-checked against exhaustive enumeration: verdicts must agree,
SAT models must satisfy every clause, assumptions must be honored, and
failed-assumption cores must themselves be inconsistent with the clause
set.  Scope push/pop and warm re-solving are fuzzed the same way.

Seeds are fixed so failures reproduce; the trial counts keep the whole
module comfortably inside the tier-1 time budget.
"""

import itertools
import random

from repro.smt.sat import SAT, UNSAT, SatSolver


def brute_force_sat(num_vars, clauses, assumptions=()):
    """Exhaustive satisfiability of a clause list under fixed literals."""
    for bits in itertools.product([False, True], repeat=num_vars):
        if any(bits[abs(lit) - 1] != (lit > 0) for lit in assumptions):
            continue
        if all(any(bits[abs(lit) - 1] == (lit > 0) for lit in c) for c in clauses):
            return True
    return False


def random_clauses(rng, num_vars, num_clauses, max_len=3):
    return [
        [
            rng.choice([1, -1]) * rng.randint(1, num_vars)
            for _ in range(rng.randint(1, max_len))
        ]
        for _ in range(num_clauses)
    ]


def assert_model_satisfies(model, clauses, context):
    for clause in clauses:
        assert any(
            model.get(abs(lit), False) == (lit > 0) for lit in clause
        ), f"{context}: model violates clause {clause}"


class TestDifferentialFuzz:
    def test_verdicts_and_models_match_brute_force(self):
        rng = random.Random(0xC0FFEE)
        checked = 0
        for trial in range(250):
            n = rng.randint(3, 9)
            clauses = random_clauses(rng, n, rng.randint(2, 28))
            solver = SatSolver()
            added_ok = all(solver.add_clause(list(c)) for c in clauses)
            expect = brute_force_sat(n, clauses)
            if not added_ok:
                # add_clause's early UNSAT must never be a false positive
                assert not expect, f"trial {trial}: eager UNSAT on a SAT set"
                continue
            result = solver.solve()
            assert (result is SAT) == expect, f"trial {trial}: {result}"
            if result is SAT:
                assert_model_satisfies(solver.model, clauses, f"trial {trial}")
            checked += 1
        assert checked > 50  # the generator must not degenerate

    def test_assumptions_honored_and_cores_sound(self):
        rng = random.Random(0xBAD5EED)
        for trial in range(150):
            n = rng.randint(3, 8)
            clauses = random_clauses(rng, n, rng.randint(2, 20))
            solver = SatSolver()
            if not all(solver.add_clause(list(c)) for c in clauses):
                continue
            # Warm instance: several assumption queries against one solver.
            for query in range(4):
                k = rng.randint(1, min(3, n))
                assume = [
                    v if rng.random() < 0.5 else -v
                    for v in rng.sample(range(1, n + 1), k)
                ]
                expect = brute_force_sat(n, clauses, assume)
                result = solver.solve(assumptions=assume)
                assert solver.ok, f"trial {trial}.{query}: assumptions poisoned solver"
                assert (result is SAT) == expect, f"trial {trial}.{query}"
                if result is SAT:
                    for lit in assume:
                        assert solver.model.get(abs(lit), False) == (lit > 0), (
                            f"trial {trial}.{query}: assumption {lit} not honored"
                        )
                    assert_model_satisfies(
                        solver.model, clauses, f"trial {trial}.{query}"
                    )
                else:
                    core = solver.failed_assumptions
                    assert core, f"trial {trial}.{query}: UNSAT without a core"
                    assert set(core) <= set(assume)
                    # the core alone must already be inconsistent
                    assert not brute_force_sat(n, clauses, core), (
                        f"trial {trial}.{query}: core {core} is not a refutation"
                    )

    def test_scope_push_pop_matches_brute_force(self):
        rng = random.Random(2024)
        for trial in range(120):
            n = rng.randint(3, 8)
            base = random_clauses(rng, n, rng.randint(2, 14))
            extra = random_clauses(rng, n, rng.randint(1, 8))
            solver = SatSolver()
            if not all(solver.add_clause(list(c)) for c in base):
                assert not brute_force_sat(n, base)
                continue
            expect_base = brute_force_sat(n, base)
            solver.push()
            scoped_ok = all(solver.add_clause(list(c)) for c in extra)
            expect_both = brute_force_sat(n, base + extra)
            if scoped_ok:
                result = solver.solve()
                assert (result is SAT) == expect_both, f"trial {trial}: scoped"
            else:
                assert not expect_both, f"trial {trial}: scoped eager UNSAT"
            solver.pop()
            result = solver.solve()
            assert (result is SAT) == expect_base, f"trial {trial}: after pop"
            if result is SAT:
                assert_model_satisfies(solver.model, base, f"trial {trial}: post-pop")

    def test_restricted_model_extraction(self):
        rng = random.Random(7)
        for trial in range(40):
            n = rng.randint(4, 8)
            clauses = random_clauses(rng, n, rng.randint(2, 12))
            solver = SatSolver()
            if not all(solver.add_clause(list(c)) for c in clauses):
                continue
            solver.ensure_var(n)  # vars absent from every clause still count
            wanted = rng.sample(range(1, n + 1), rng.randint(1, n))
            if solver.solve(model_vars=wanted) is SAT:
                assert set(solver.model) == set(wanted)
                full = SatSolver()
                for c in clauses:
                    full.add_clause(list(c))
                assert full.solve() is SAT
