"""Tests for Steensgaard points-to, thread call graph, happens-before/MHP."""

from repro.frontend import parse_program
from repro.ir import ForkInst, FreeInst, JoinInst, LoadInst, SinkInst, StoreInst
from repro.lowering import lower_program
from repro.pointer import steensgaard
from repro.threads import MhpAnalysis, build_thread_call_graph

from programs import FIG2_BUG_FREE, FORK_IN_LOOP, JOIN_PROTECTED, SIMPLE_UAF


def lower(src):
    return lower_program(parse_program(src))


def setup(src):
    module = lower(src)
    tcg = build_thread_call_graph(module)
    return module, tcg, MhpAnalysis(tcg)


def find(module, func, cls, nth=0):
    found = [i for i in module.functions[func].body if isinstance(i, cls)]
    return found[nth]


class TestSteensgaard:
    def test_direct_fork_target(self):
        module = lower(SIMPLE_UAF)
        pts = steensgaard(module)
        fork = find(module, "main", ForkInst)
        assert pts.callees(fork.callee) == {"worker"}

    def test_function_pointer_through_variable(self):
        module = lower(
            """
            void work() {}
            void main() {
                int* fp = work;
                fork(t, fp);
            }
            """
        )
        pts = steensgaard(module)
        fork = find(module, "main", ForkInst)
        assert "work" in pts.callees(fork.callee)

    def test_function_pointer_through_memory(self):
        module = lower(
            """
            void work() {}
            void main() {
                int** slot = malloc();
                *slot = work;
                int* fp = *slot;
                fork(t, fp);
            }
            """
        )
        pts = steensgaard(module)
        fork = find(module, "main", ForkInst)
        assert "work" in pts.callees(fork.callee)

    def test_may_alias_same_object(self):
        module = lower("void main() { int* p = malloc(); int* q = p; *q = 1; }")
        pts = steensgaard(module)
        main = module.functions["main"]
        p = main.body[0].dst
        store = find(module, "main", StoreInst)
        assert pts.may_alias(p, store.pointer)

    def test_no_alias_distinct_objects(self):
        module = lower("void main() { int* p = malloc(); int* q = malloc(); }")
        pts = steensgaard(module)
        main = module.functions["main"]
        p, q = main.body[0].dst, main.body[2].dst
        assert not pts.may_alias(p, q)


class TestThreadCallGraph:
    def test_main_plus_fork(self):
        _module, tcg, _ = setup(SIMPLE_UAF)
        assert len(tcg.threads) == 2
        assert "main" in tcg.threads
        child = next(t for t in tcg.threads.values() if t.tid != "main")
        assert child.entry == "worker"
        assert child.parent == "main"

    def test_fork_in_loop_two_threads(self):
        _module, tcg, _ = setup(FORK_IN_LOOP)
        assert len(tcg.threads) == 3  # main + 2 unrolled forks

    def test_threads_of_function(self):
        module, tcg, _ = setup(FIG2_BUG_FREE)
        assert tcg.threads_of_function["main"] == {"main"}
        (worker_tid,) = tcg.threads_of_function["thread1"]
        assert worker_tid.startswith("t@")

    def test_function_shared_by_threads(self):
        module, tcg, _ = setup(
            """
            void helper() {}
            void main() { helper(); fork(t, worker); }
            void worker() { helper(); }
            """
        )
        assert len(tcg.threads_of_function["helper"]) == 2

    def test_reverse_topological_order(self):
        module, tcg, _ = setup(
            """
            void c() {}
            void b() { c(); }
            void a() { b(); }
            void main() { a(); }
            """
        )
        order = tcg.reverse_topological_functions()
        assert order.index("c") < order.index("b") < order.index("a")
        assert order.index("a") < order.index("main")

    def test_nested_forks(self):
        _module, tcg, _ = setup(
            """
            void inner() {}
            void outer() { fork(t2, inner); }
            void main() { fork(t1, outer); }
            """
        )
        assert len(tcg.threads) == 3
        inner_thread = next(t for t in tcg.threads.values() if t.entry == "inner")
        assert tcg.threads[inner_thread.parent].entry == "outer"

    def test_ancestors(self):
        _module, tcg, _ = setup(
            """
            void inner() {}
            void outer() { fork(t2, inner); }
            void main() { fork(t1, outer); }
            """
        )
        inner_tid = next(t.tid for t in tcg.threads.values() if t.entry == "inner")
        chain = tcg.ancestors(inner_tid)
        assert chain[-1] == "main"
        assert len(chain) == 2


class TestHappensBefore:
    def test_same_function_label_order(self):
        module, _tcg, mhp = setup(SIMPLE_UAF)
        main = module.functions["main"].body
        assert mhp.happens_before(main[0], main[1])
        assert not mhp.happens_before(main[1], main[0])

    def test_before_fork_hb_child(self):
        module, _tcg, mhp = setup(SIMPLE_UAF)
        store_main = find(module, "main", StoreInst)  # before the fork
        free_child = find(module, "worker", FreeInst)
        assert mhp.happens_before(store_main, free_child)
        assert not mhp.happens_before(free_child, store_main)

    def test_after_fork_not_hb_child(self):
        module, _tcg, mhp = setup(SIMPLE_UAF)
        load_main = find(module, "main", LoadInst)  # after the fork
        free_child = find(module, "worker", FreeInst)
        assert not mhp.happens_before(load_main, free_child)
        assert not mhp.happens_before(free_child, load_main)

    def test_join_orders_child_before_parent_continuation(self):
        module, _tcg, mhp = setup(JOIN_PROTECTED)
        child_store = find(module, "worker", StoreInst)
        print_sink = find(module, "main", SinkInst)  # after join(t)
        assert mhp.happens_before(child_store, print_sink)

    def test_join_does_not_order_statements_before_it(self):
        module, _tcg, mhp = setup(JOIN_PROTECTED)
        child_store = find(module, "worker", StoreInst)
        load_main = find(module, "main", LoadInst, nth=0)  # c = *x, before join
        assert not mhp.happens_before(child_store, load_main)


class TestMhp:
    def test_parallel_after_fork(self):
        module, _tcg, mhp = setup(SIMPLE_UAF)
        load_main = find(module, "main", LoadInst)
        free_child = find(module, "worker", FreeInst)
        assert mhp.may_happen_in_parallel(load_main, free_child)

    def test_not_parallel_before_fork(self):
        module, _tcg, mhp = setup(SIMPLE_UAF)
        store_main = find(module, "main", StoreInst)
        free_child = find(module, "worker", FreeInst)
        assert not mhp.may_happen_in_parallel(store_main, free_child)

    def test_not_parallel_after_join(self):
        module, _tcg, mhp = setup(JOIN_PROTECTED)
        child_store = find(module, "worker", StoreInst)
        print_sink = find(module, "main", SinkInst)
        assert not mhp.may_happen_in_parallel(child_store, print_sink)

    def test_same_thread_never_parallel(self):
        module, _tcg, mhp = setup(SIMPLE_UAF)
        main = module.functions["main"].body
        assert not mhp.may_happen_in_parallel(main[0], main[1])

    def test_sibling_threads_parallel(self):
        module, _tcg, mhp = setup(
            """
            void a() { int* p = malloc(); free(p); }
            void b() { int* q = malloc(); free(q); }
            void main() { fork(t1, a); fork(t2, b); }
            """
        )
        free_a = find(module, "a", FreeInst)
        free_b = find(module, "b", FreeInst)
        assert mhp.may_happen_in_parallel(free_a, free_b)
