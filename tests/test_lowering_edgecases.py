"""Edge-case tests for the lowering: nested derefs, deep nesting,
else-if chains, address-taken parameters, returns under guards."""

import pytest

from repro import AnalysisConfig, Canary
from repro.frontend import parse_program
from repro.ir import (
    CopyInst,
    LoadInst,
    PhiInst,
    StoreInst,
    verify_module,
)
from repro.lowering import lower_program
from repro.smt.terms import And


def lower(src, depth=2):
    module = lower_program(parse_program(src), unroll_depth=depth)
    assert verify_module(module).ok
    return module


def insts(module, func, cls):
    return [i for i in module.functions[func].body if isinstance(i, cls)]


class TestNestedDereferences:
    def test_double_deref_two_loads(self):
        # **p must become two loads through an auxiliary temp (§3.1:
        # "nested pointer dereferences are eliminated by introducing
        # auxiliary variables").
        module = lower("void main(int*** p) { int* v = **p; }")
        loads = insts(module, "main", LoadInst)
        assert len(loads) == 2
        assert loads[1].pointer is loads[0].dst

    def test_triple_deref(self):
        module = lower("void main(int**** p) { int* v = ***p; }")
        assert len(insts(module, "main", LoadInst)) == 3

    def test_store_through_loaded_pointer(self):
        # *(*p) = v  — written as: int** q = *p; *q = v;
        module = lower(
            "void main(int*** p, int* v) { int** q = *p; *q = v; }"
        )
        assert len(insts(module, "main", LoadInst)) == 1
        assert len(insts(module, "main", StoreInst)) == 1


class TestControlFlowShapes:
    def test_else_if_chain_guards_partition(self):
        module = lower(
            """
            extern int x;
            void main() {
                int r = 0;
                if (x < 0) { r = 1; }
                else if (x < 10) { r = 2; }
                else { r = 3; }
                print(r);
            }
            """
        )
        copies = [
            i
            for i in insts(module, "main", CopyInst)
            if i.dst.source_name == "r" and i.guard.pretty() != "true"
        ]
        assert len(copies) == 3
        # All three branch guards are pairwise contradictory.
        from repro.smt import is_satisfiable, and_

        for i in range(3):
            for j in range(i + 1, 3):
                assert not is_satisfiable(and_(copies[i].guard, copies[j].guard))

    def test_deeply_nested_ifs(self):
        src = "extern int a; extern int b; extern int c; extern int d;\n"
        src += "void main() { int r = 0;"
        for name in "abcd":
            src += f" if ({name}) {{"
        src += " r = 1; "
        src += "}" * 4
        src += " print(r); }"
        module = lower(src)
        copy = [
            i
            for i in insts(module, "main", CopyInst)
            if i.dst.source_name == "r" and isinstance(i.guard, And)
        ]
        assert copy and len(copy[0].guard.args) == 4

    def test_phi_chains_through_nesting(self):
        module = lower(
            """
            extern int a; extern int b;
            void main() {
                int x = 0;
                if (a) {
                    if (b) { x = 1; }
                    x = x + 1;
                }
                print(x);
            }
            """
        )
        phis = insts(module, "main", PhiInst)
        assert len(phis) == 2  # inner join and outer join

    def test_loop_body_uses_updated_values(self):
        module = lower(
            """
            void main() {
                int sum = 0;
                int i = 0;
                while (i < 2) {
                    sum = sum + i;
                    i = i + 1;
                }
                print(sum);
            }
            """,
            depth=2,
        )
        # two unrolled iterations: 2 sums + 2 increments + phis
        copies = [i for i in insts(module, "main", CopyInst) if i.dst.source_name == "sum"]
        assert len(copies) >= 3  # init + two updates


class TestParamsAndReturns:
    def test_address_taken_param_spilled(self):
        module = lower(
            "void main(int x) { int* p = &x; *p = 3; print(x); }"
        )
        # param spilled to a stack slot at entry, read back via a load
        assert len(insts(module, "main", StoreInst)) >= 2
        assert len(insts(module, "main", LoadInst)) == 1

    def test_multiple_guarded_returns(self):
        module = lower(
            """
            extern int c;
            int* pick(int* a, int* b) {
                if (c) { return a; }
                return b;
            }
            void main() {
                int* x = malloc();
                int* y = malloc();
                int* r = pick(x, y);
                print(*r);
            }
            """
        )
        returns = module.functions["pick"].returns
        assert len(returns) == 2
        from repro.smt import is_satisfiable, and_

        # return conditions: guard(a) = c; guard(b) = true (fallthrough),
        # still jointly analyzable
        assert is_satisfiable(returns[0][1])

    def test_void_call_no_dst(self):
        module = lower(
            """
            void touch(int* p) { *p = 1; }
            void main() { int* q = malloc(); touch(q); }
            """
        )
        from repro.ir import CallInst

        call = insts(module, "main", CallInst)[0]
        assert call.dst is None


class TestEndToEndEdgeCases:
    def test_uaf_through_double_indirection(self):
        src = """
        void worker(int*** outer) {
            int** inner = *outer;
            int* buf = malloc();
            *inner = buf;
            free(buf);
        }
        void main() {
            int*** outer = malloc();
            int** inner = malloc();
            int* init = malloc();
            *inner = init;
            *outer = inner;
            fork(t, worker, outer);
            int** got = *outer;
            int* v = *got;
            print(*v);
        }
        """
        report = Canary().analyze_source(src)
        assert report.num_reports >= 1

    def test_guarded_uaf_mixed_conditions(self):
        # One condition matches, the other contradicts: still infeasible
        # because the conjunction includes both.
        src = """
        extern int a; extern int b;
        void worker(int** s) {
            int* buf = malloc();
            if (a && !b) {
                *s = buf;
                free(buf);
            }
        }
        void main() {
            int** s = malloc();
            int* init = malloc();
            *s = init;
            fork(t, worker, s);
            if (a && b) {
                int* v = *s;
                print(*v);
            }
        }
        """
        report = Canary().analyze_source(src)
        assert report.num_reports == 0
