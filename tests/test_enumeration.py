"""Tests for the sink-directed enumeration engine: the incremental
difference-bound store, the GuardPrefix quick-unsat filter, the
sink-reachability index, and — end to end — the guarantee that all three
prunes are exact with respect to the reported bug keys.
"""

import pathlib

import pytest

from repro.analysis import AnalysisConfig, Canary
from repro.detection import (
    PathSearcher,
    ReachabilityIndexCache,
    SearchLimits,
    SinkReachabilityIndex,
)
from repro.detection.reachability import INFINITE_AVAIL
from repro.smt import GuardPrefix, TRUE, FALSE, and_, bool_var, int_var, lt, not_, quick_unsat
from repro.smt.theory import DifferenceBound, IncrementalBoundStore
from repro.vfg.graph import ValueFlowGraph
from repro.__main__ import main as repro_main

from test_corpus import CORPUS_FILES, _parse_directives
from programs import SIMPLE_UAF

CORPUS = pathlib.Path(__file__).parent / "corpus"


# ----- IncrementalBoundStore -------------------------------------------------


class TestIncrementalBoundStore:
    def test_consistent_bounds_stay_sat(self):
        store = IncrementalBoundStore()
        store.push()
        assert not store.assert_bound(DifferenceBound("a", "b", 5))  # a - b <= 5
        assert not store.assert_bound(DifferenceBound("b", "c", 3))
        assert not store.unsat

    def test_negative_cycle_detected(self):
        store = IncrementalBoundStore()
        store.push()
        assert not store.assert_bound(DifferenceBound("a", "b", -1))  # a < b
        assert store.assert_bound(DifferenceBound("b", "a", -1))  # b < a: cycle
        assert store.unsat

    def test_pop_restores_satisfiability(self):
        store = IncrementalBoundStore()
        store.push()
        store.assert_bound(DifferenceBound("a", "b", -1))
        store.push()
        assert store.assert_bound(DifferenceBound("b", "a", -1))
        assert store.unsat
        store.pop()
        assert not store.unsat
        # The surviving frame still constrains: re-adding re-conflicts.
        store.push()
        assert store.assert_bound(DifferenceBound("b", "a", -1))
        store.pop()
        store.pop()

    def test_zero_length_cycle_is_sat(self):
        store = IncrementalBoundStore()
        store.push()
        assert not store.assert_bound(DifferenceBound("a", "b", 0))  # a <= b
        assert not store.assert_bound(DifferenceBound("b", "a", 0))  # b <= a: a == b
        assert not store.unsat


# ----- GuardPrefix -----------------------------------------------------------


def _guard_sequences():
    p, q = bool_var("p"), bool_var("q")
    x, y, z = int_var("x"), int_var("y"), int_var("z")
    return [
        # boolean complement across pushes
        [p, q, not_(p)],
        # arithmetic cycle across pushes: x < y, y < z, z < x
        [lt(x, y), lt(y, z), lt(z, x)],
        # satisfiable chain
        [p, lt(x, y), lt(y, z)],
        # conjunction guards (one push folds several literals)
        [and_(p, lt(x, y)), and_(q, lt(y, x))],
        # duplicate literals must not break pop bookkeeping
        [p, p, not_(q), lt(x, y), lt(x, y)],
        [TRUE, p, TRUE],
        [FALSE],
    ]


class TestGuardPrefix:
    @pytest.mark.parametrize("guards", _guard_sequences())
    def test_matches_quick_unsat_on_full_conjunction(self, guards):
        """After pushing a whole sequence, the prefix verdict agrees with
        the batch semi-decision procedure on the same conjunction."""
        prefix = GuardPrefix()
        for g in guards:
            prefix.push(g)
        assert prefix.unsat == quick_unsat(and_(*guards))

    @pytest.mark.parametrize("guards", _guard_sequences())
    def test_push_pop_roundtrip(self, guards):
        """Popping everything restores the empty state exactly."""
        prefix = GuardPrefix()
        for g in guards:
            prefix.push(g)
        for _ in guards:
            prefix.pop()
        assert len(prefix) == 0
        assert not prefix.unsat
        assert prefix.fingerprint() == ()

    def test_unsat_clears_on_pop_of_offending_frame(self):
        p = bool_var("p")
        prefix = GuardPrefix()
        prefix.push(p)
        assert prefix.push(not_(p))
        assert prefix.unsat
        prefix.pop()
        assert not prefix.unsat
        prefix.pop()

    def test_prefix_detects_mid_sequence_not_just_at_end(self):
        x, y = int_var("x"), int_var("y")
        prefix = GuardPrefix()
        assert not prefix.push(lt(x, y))
        assert prefix.push(lt(y, x))  # caught at the push, not at a batch check

    def test_fingerprint_reflects_literal_set(self):
        p, q = bool_var("p"), bool_var("q")
        prefix = GuardPrefix()
        prefix.push(p)
        fp1 = prefix.fingerprint()
        prefix.push(q)
        assert prefix.fingerprint() != fp1
        prefix.push(q)  # duplicate: no change
        assert prefix.fingerprint() == (p, q)
        prefix.pop()
        prefix.pop()
        assert prefix.fingerprint() == fp1


# ----- SinkReachabilityIndex -------------------------------------------------


def _graph(edges):
    vfg = ValueFlowGraph()
    for src, dst, kind, *rest in edges:
        callsite = rest[0] if rest else None
        vfg.add_edge(src, dst, TRUE, kind, callsite=callsite)
    return vfg


class TestSinkReachabilityIndex:
    def test_direct_chain(self):
        vfg = _graph([("a", "b", "direct"), ("b", "s", "direct")])
        index = SinkReachabilityIndex(vfg, {"s"})
        assert index.min_need("a") == 0
        assert index.can_enter("a")
        assert not index.can_enter("unrelated")

    def test_dead_branch_excluded(self):
        vfg = _graph([("a", "b", "direct"), ("a", "dead", "direct")])
        index = SinkReachabilityIndex(vfg, {"b"})
        assert index.can_enter("a")
        assert not index.can_enter("dead")

    def test_ret_edge_requires_budget(self):
        # a -ret-> s: the path pops one base level, so entering `a` with
        # no pops available (inside a forked thread) is inadmissible.
        vfg = _graph([("a", "s", "ret", 7)])
        index = SinkReachabilityIndex(vfg, {"s"})
        assert index.min_need("a") == 1
        assert index.can_enter("a", avail=INFINITE_AVAIL)
        assert index.can_enter("a", avail=1)
        assert not index.can_enter("a", avail=0)

    def test_call_edge_absorbs_ret(self):
        # a -call-> b -ret-> s: balanced parentheses, zero net need.
        vfg = _graph([("a", "b", "call", 3), ("b", "s", "ret", 3)])
        index = SinkReachabilityIndex(vfg, {"s"})
        assert index.min_need("a") == 0
        assert index.min_need("b") == 1

    def test_fork_edge_rejects_pending_pops(self):
        # a -forkarg-> b -ret-> s: the suffix below the fork needs a pop,
        # but a fork marker can never be popped — `a` is unreachable.
        vfg = _graph([("a", "b", "forkarg", 1), ("b", "s", "ret", 2)])
        index = SinkReachabilityIndex(vfg, {"s"})
        assert index.min_need("b") == 1
        assert index.min_need("a") is None
        assert not index.can_enter("a")

    def test_fork_edge_admits_balanced_suffix(self):
        vfg = _graph([("a", "b", "forkarg", 1), ("b", "s", "direct")])
        index = SinkReachabilityIndex(vfg, {"s"})
        assert index.min_need("a") == 0

    def test_num_sinks_counts_seeds_not_zero_needs(self):
        # The call edge gives `a` need 0 without making it a sink.
        vfg = _graph([("a", "s", "call", 1)])
        index = SinkReachabilityIndex(vfg, {"s"})
        assert index.num_sinks == 1
        assert index.min_need("a") == 0


class TestReachabilityIndexCache:
    def test_same_sink_set_shares_index(self):
        vfg = _graph([("a", "s", "direct")])
        cache = ReachabilityIndexCache()
        i1 = cache.get(vfg, {"s"})
        i2 = cache.get(vfg, {"s"})
        assert i1 is i2
        assert cache.builds == 1 and cache.shared_hits == 1

    def test_distinct_sink_sets_build_separately(self):
        vfg = _graph([("a", "s", "direct"), ("a", "t", "direct")])
        cache = ReachabilityIndexCache()
        assert cache.get(vfg, {"s"}) is not cache.get(vfg, {"t"})
        assert cache.builds == 2 and len(cache) == 2

    def test_mutation_invalidates_cached_index(self):
        vfg = _graph([("a", "s", "direct")])
        cache = ReachabilityIndexCache()
        stale = cache.get(vfg, {"s"})
        assert not stale.can_enter("b")
        vfg.add_edge("b", "a", TRUE, "direct")
        fresh = cache.get(vfg, {"s"})
        assert fresh is not stale
        assert fresh.can_enter("b")


# ----- end-to-end exactness --------------------------------------------------


def _keys(report):
    return sorted(b.key for b in report.bugs)


def _visits(report):
    return sum(st.get("visits", 0) for st in report.search_statistics.values())


_UNPRUNED = dict(
    sink_reachability=False, incremental_guard_pruning=False, dead_state_memo=False
)


class TestPrunedEquivalence:
    @pytest.mark.parametrize("path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
    def test_corpus_same_keys_and_fewer_visits(self, path):
        """The three prunes never change the reported bug keys, and never
        visit more nodes than the reference DFS."""
        text = path.read_text()
        _expects, checkers, overrides = _parse_directives(text)
        base = dict(checkers=checkers, **overrides)
        reference = Canary(AnalysisConfig(**_UNPRUNED, **base)).analyze_source(
            text, filename=path.name
        )
        pruned = Canary(AnalysisConfig(**base)).analyze_source(
            text, filename=path.name
        )
        assert _keys(reference) == _keys(pruned), path.name
        assert _visits(pruned) <= _visits(reference), path.name

    @pytest.mark.parametrize(
        "path", CORPUS_FILES[::3], ids=[p.stem for p in CORPUS_FILES[::3]]
    )
    def test_corpus_streaming_matches_batch_and_serial(self, path):
        text = path.read_text()
        _expects, checkers, overrides = _parse_directives(text)
        overrides.pop("parallel_solving", None)
        base = dict(checkers=checkers, **overrides)
        serial = Canary(
            AnalysisConfig(parallel_solving=False, **base)
        ).analyze_source(text, filename=path.name)
        streaming = Canary(
            AnalysisConfig(
                parallel_solving=True, streaming_solving=True, solver_workers=4, **base
            )
        ).analyze_source(text, filename=path.name)
        batch = Canary(
            AnalysisConfig(
                parallel_solving=True, streaming_solving=False, solver_workers=4, **base
            )
        ).analyze_source(text, filename=path.name)
        assert _keys(serial) == _keys(streaming) == _keys(batch), path.name

    def test_pruning_actually_fires_somewhere(self):
        """At least one corpus program exercises each prune counter."""
        totals = {"pruned_unreachable": 0, "pruned_guard": 0}
        for path in CORPUS_FILES:
            text = path.read_text()
            _expects, checkers, overrides = _parse_directives(text)
            report = Canary(
                AnalysisConfig(checkers=checkers, **overrides)
            ).analyze_source(text, filename=path.name)
            for st in report.search_statistics.values():
                for key in totals:
                    totals[key] += st.get(key, 0)
        assert totals["pruned_unreachable"] > 0
        assert totals["pruned_guard"] > 0


# ----- truncation warnings and config plumbing -------------------------------


class TestTruncationWarnings:
    def test_depth_limit_surfaces_warning(self):
        report = Canary(AnalysisConfig(max_path_depth=1)).analyze_source(SIMPLE_UAF)
        assert any("max_depth" in w for w in report.truncation_warnings)
        assert "warning:" in report.describe_statistics()

    def test_visit_budget_surfaces_warning(self):
        report = Canary(AnalysisConfig(max_search_visits=1)).analyze_source(SIMPLE_UAF)
        assert any("max_visits" in w for w in report.truncation_warnings)

    def test_untruncated_run_has_no_warnings(self):
        report = Canary(AnalysisConfig()).analyze_source(SIMPLE_UAF)
        assert report.truncation_warnings == []

    def test_enumeration_line_in_statistics(self):
        report = Canary(AnalysisConfig()).analyze_source(SIMPLE_UAF)
        assert "enumeration:" in report.describe_statistics()
        assert _visits(report) > 0


class TestCliFlags:
    def test_max_depth_flag_truncates(self, capsys):
        rc = repro_main(
            [str(CORPUS / "uaf_basic.mcc"), "--max-depth", "1", "--stats"]
        )
        out = capsys.readouterr().out
        assert rc == 0  # too shallow to reach the sink: no findings
        assert "max_depth" in out

    def test_max_visits_flag_accepted(self, capsys):
        rc = repro_main([str(CORPUS / "uaf_basic.mcc"), "--max-visits", "100000"])
        assert rc == 1
        assert "1 finding(s)" in capsys.readouterr().out

    def test_max_paths_flag_accepted(self, capsys):
        rc = repro_main([str(CORPUS / "uaf_basic.mcc"), "--max-paths", "64"])
        assert rc == 1

    def test_no_pruning_flag_same_findings(self, capsys):
        rc = repro_main([str(CORPUS / "uaf_basic.mcc"), "--no-pruning"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "use-after-free" in out
