"""Unit tests for Alg. 2 internals: escape closure, Pted guards, widening."""

import pytest

from repro.frontend import parse_program
from repro.ir import AllocInst, LoadInst, StoreInst
from repro.lowering import lower_program
from repro.smt.terms import TRUE
from repro.vfg import DefNode, ObjNode, build_vfg

from programs import FIG2_BUGGY, FIG2_BUG_FREE, SIMPLE_UAF


def bundle_for(src, **kw):
    return build_vfg(lower_program(parse_program(src)), **kw)


def allocs(module, func):
    return [i for i in module.functions[func].body if isinstance(i, AllocInst)]


class TestEscapeSeeding:
    def test_fork_argument_objects_escape(self):
        bundle = bundle_for(SIMPLE_UAF)
        slot_obj = allocs(bundle.module, "main")[0].obj
        assert slot_obj in bundle.interference.escaped

    def test_globals_escape(self):
        bundle = bundle_for(
            "int* g; void main() { g = malloc(); } "
        )
        assert any(o.kind == "global" for o in bundle.interference.escaped)

    def test_local_only_objects_do_not_escape(self):
        bundle = bundle_for(
            """
            void main() {
                int** private = malloc();
                int* v = malloc();
                *private = v;
                int* got = *private;
                print(*got);
                fork(t, w);
            }
            void w() { int* x = malloc(); print(*x); }
            """
        )
        main_allocs = allocs(bundle.module, "main")
        for inst in main_allocs:
            assert inst.obj not in bundle.interference.escaped

    def test_transitive_escape_through_store(self):
        # o_fresh escapes because a pointer to it is stored into the
        # escaped slot (Alg. 2 lines 14-18).
        bundle = bundle_for(SIMPLE_UAF)
        fresh_obj = allocs(bundle.module, "worker")[0].obj
        assert fresh_obj in bundle.interference.escaped


class TestPtedSets:
    def test_pted_contains_both_thread_pointers(self):
        bundle = bundle_for(FIG2_BUGGY)
        slot_obj = allocs(bundle.module, "main")[0].obj
        pted = bundle.interference.pted[slot_obj]
        def_vars = {n.var.source_name for n in pted if isinstance(n, DefNode)}
        assert "x" in def_vars and "y" in def_vars

    def test_pted_guard_query(self):
        bundle = bundle_for(FIG2_BUGGY)
        slot_obj = allocs(bundle.module, "main")[0].obj
        store = next(
            i
            for i in bundle.module.functions["thread1"].body
            if isinstance(i, StoreInst)
        )
        guard = bundle.interference.pted_guard(slot_obj, DefNode(store.pointer))
        assert guard is not None

    def test_points_to_objects_query(self):
        bundle = bundle_for(SIMPLE_UAF)
        free_inst = next(
            i
            for i in bundle.module.functions["worker"].body
            if i.brief().startswith("free")
        )
        objs = bundle.interference.points_to_objects(free_inst.pointer)
        assert len(objs) == 1
        assert next(iter(objs)).kind == "heap"

    def test_object_stores_index(self):
        bundle = bundle_for(FIG2_BUGGY)
        slot_obj = allocs(bundle.module, "main")[0].obj
        stores = bundle.interference.object_stores[slot_obj]
        assert len(stores) == 2  # main's *x = a and thread1's *y = b


class TestFixpointBehavior:
    def test_round_count_bounded(self):
        bundle = bundle_for(FIG2_BUGGY, max_interference_rounds=3)
        assert bundle.interference.rounds <= 3

    def test_idempotent_edges(self):
        # Running the pipeline twice over the same module adds nothing new.
        module = lower_program(parse_program(FIG2_BUGGY))
        a = build_vfg(module)
        edges_before = a.vfg.num_edges
        a.interference.run()  # second run over the same graph
        assert a.vfg.num_edges == edges_before

    def test_no_mhp_more_or_equal_edges(self):
        precise = bundle_for(SIMPLE_UAF)
        loose = bundle_for(SIMPLE_UAF, use_mhp=False)
        assert (
            loose.interference.interference_edge_count
            >= precise.interference.interference_edge_count
        )
