"""Unit tests for the MiniCC lexer and parser."""

import pytest

from repro.frontend import LexError, ParseError, parse_program, tokenize
from repro.frontend import ast_nodes as A
from repro.frontend.lexer import TokenKind


class TestLexer:
    def test_simple_tokens(self):
        toks = tokenize("int x = 42;")
        kinds = [t.kind for t in toks]
        assert kinds == ["keyword", "ident", "punct", "number", "punct", "eof"]

    def test_two_char_puncts(self):
        toks = tokenize("a <= b && c == d || e != f")
        texts = [t.text for t in toks if t.kind == TokenKind.PUNCT]
        assert texts == ["<=", "&&", "==", "||", "!="]

    def test_line_comment(self):
        toks = tokenize("a // comment\nb")
        idents = [t.text for t in toks if t.kind == TokenKind.IDENT]
        assert idents == ["a", "b"]

    def test_block_comment(self):
        toks = tokenize("a /* multi\nline */ b")
        idents = [t.text for t in toks if t.kind == TokenKind.IDENT]
        assert idents == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")

    def test_locations(self):
        toks = tokenize("a\n  b", filename="f.mcc")
        assert toks[0].location.line == 1
        assert toks[1].location.line == 2
        assert toks[1].location.column == 3
        assert toks[1].location.filename == "f.mcc"

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int $x;")

    def test_keywords_vs_idents(self):
        toks = tokenize("int intx")
        assert toks[0].kind == TokenKind.KEYWORD
        assert toks[1].kind == TokenKind.IDENT


class TestParser:
    def test_empty_function(self):
        prog = parse_program("void main() {}")
        assert len(prog.functions) == 1
        assert prog.functions[0].name == "main"
        assert prog.functions[0].body.body == []

    def test_params(self):
        prog = parse_program("int f(int a, int* b, int** c) { return a; }")
        f = prog.functions[0]
        assert [p.name for p in f.params] == ["a", "b", "c"]
        assert [p.type.pointer_depth for p in f.params] == [0, 1, 2]

    def test_extern_decl(self):
        prog = parse_program("extern int flag;\nvoid main() {}")
        assert [e.name for e in prog.externs] == ["flag"]

    def test_global_decl(self):
        prog = parse_program("int* g;\nvoid main() {}")
        assert [g.name for g in prog.globals] == ["g"]

    def test_vardecl_with_init(self):
        prog = parse_program("void main() { int x = 1 + 2; }")
        stmt = prog.functions[0].body.body[0]
        assert isinstance(stmt, A.VarDeclStmt)
        assert isinstance(stmt.init, A.BinaryExpr)

    def test_store_statement(self):
        prog = parse_program("void main() { int* p; *p = 3; }")
        stmt = prog.functions[0].body.body[1]
        assert isinstance(stmt, A.StoreStmt)

    def test_if_else_chain(self):
        prog = parse_program(
            "void main() { if (a) { } else if (b) { } else { } }"
        )
        stmt = prog.functions[0].body.body[0]
        assert isinstance(stmt, A.IfStmt)
        nested = stmt.else_body.body[0]
        assert isinstance(nested, A.IfStmt)
        assert nested.else_body is not None

    def test_while(self):
        prog = parse_program("void main() { while (x < 3) { x = x + 1; } }")
        stmt = prog.functions[0].body.body[0]
        assert isinstance(stmt, A.WhileStmt)

    def test_fork_join(self):
        prog = parse_program("void main() { fork(t1, w, x, y); join(t1); }")
        fork, join = prog.functions[0].body.body
        assert isinstance(fork, A.ForkStmt)
        assert fork.thread == "t1" and fork.callee == "w"
        assert len(fork.args) == 2
        assert isinstance(join, A.JoinStmt)
        assert join.thread == "t1"

    def test_precedence(self):
        prog = parse_program("void main() { int x = a || b && c == d + e * f; }")
        init = prog.functions[0].body.body[0].init
        assert init.op == "||"
        assert init.rhs.op == "&&"
        assert init.rhs.rhs.op == "=="

    def test_unary_operators(self):
        prog = parse_program("void main() { int x = !a; int y = -b; int* p = &c; int z = *q; }")
        body = prog.functions[0].body.body
        assert isinstance(body[0].init, A.UnaryExpr)
        assert isinstance(body[1].init, A.UnaryExpr)
        assert isinstance(body[2].init, A.AddrOfExpr)
        assert isinstance(body[3].init, A.DerefExpr)

    def test_call_expression(self):
        prog = parse_program("void main() { int x = f(1, g(2)); }")
        call = prog.functions[0].body.body[0].init
        assert isinstance(call, A.CallExpr)
        assert isinstance(call.args[1], A.CallExpr)

    def test_null_literal(self):
        prog = parse_program("void main() { int* p = null; }")
        assert isinstance(prog.functions[0].body.body[0].init, A.NullExpr)

    def test_parse_error_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("void main() { int x = 1 }")

    def test_parse_error_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("void main() { if (x) {")

    def test_parse_error_bad_toplevel(self):
        with pytest.raises(ParseError):
            parse_program("banana main() {}")

    def test_parenthesized_expr(self):
        prog = parse_program("void main() { int x = (a + b) * c; }")
        init = prog.functions[0].body.body[0].init
        assert init.op == "*"
        assert init.lhs.op == "+"

    def test_program_function_lookup(self):
        prog = parse_program("void a() {} void b() {}")
        assert prog.function("b").name == "b"
        with pytest.raises(KeyError):
            prog.function("c")
