"""Unit tests for the run-level resource :class:`Budget` and its wiring
through :class:`AnalysisConfig` and the CLI."""

import pytest

from repro import AnalysisConfig, Canary
from repro.analysis import Budget
from repro.__main__ import main as cli_main

from programs import SIMPLE_UAF


class FakeClock:
    """A manually advanced monotonic clock for deterministic expiry."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBudgetWallClock:
    def test_default_budget_is_unlimited(self):
        budget = Budget()
        assert budget.unlimited
        assert not budget.expired()
        assert budget.remaining() is None
        assert budget.query_timeout() is None
        assert budget.describe() == "unlimited"

    def test_elapsed_tracks_the_clock(self):
        clock = FakeClock()
        budget = Budget(clock=clock)
        clock.advance(2.5)
        assert budget.elapsed() == pytest.approx(2.5)

    def test_wall_deadline_expires(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock)
        assert not budget.expired()
        assert budget.remaining() == pytest.approx(10.0)
        clock.advance(9.0)
        assert not budget.expired()
        clock.advance(1.0)
        assert budget.expired()

    def test_remaining_never_goes_negative(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock)
        clock.advance(5.0)
        assert budget.remaining() == 0.0

    def test_note_expired_records_observation_points(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock)
        assert not budget.note_expired("frontend")
        assert budget.expirations == []
        clock.advance(2.0)
        assert budget.note_expired("threads")
        assert budget.note_expired("detect:use-after-free")
        assert budget.expirations == ["threads", "detect:use-after-free"]

    def test_zero_wall_budget_expires_immediately(self):
        budget = Budget(wall_seconds=0.0)
        assert budget.expired()


class TestBudgetDerivedLimits:
    def test_soft_pass_budget_is_informational(self):
        budget = Budget(pass_seconds=0.5)
        assert not budget.over_pass_budget(0.4)
        assert budget.over_pass_budget(0.6)
        # A pass budget alone never expires the run.
        assert not budget.expired()

    def test_no_pass_budget_never_over(self):
        assert not Budget().over_pass_budget(1e9)

    def test_query_timeout_solver_limit_only(self):
        budget = Budget(solver_seconds=2.0)
        assert budget.query_timeout() == pytest.approx(2.0)

    def test_query_timeout_clipped_to_remaining_wall(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, solver_seconds=5.0, clock=clock)
        assert budget.query_timeout() == pytest.approx(5.0)
        clock.advance(8.0)  # 2s of wall left < 5s solver limit
        assert budget.query_timeout() == pytest.approx(2.0)

    def test_query_timeout_wall_only(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=4.0, clock=clock)
        assert budget.query_timeout() == pytest.approx(4.0)

    def test_query_timeout_floor_after_expiry(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, solver_seconds=5.0, clock=clock)
        clock.advance(2.0)
        # Expired runs still grant in-flight queries a tiny budget so they
        # return UNKNOWN quickly instead of thrashing on a zero deadline.
        assert budget.query_timeout() == pytest.approx(0.05)
        assert budget.query_timeout(floor=0.5) == pytest.approx(0.5)

    def test_describe_lists_the_configured_limits(self):
        text = Budget(wall_seconds=60.0, pass_seconds=5.0, solver_seconds=1.0).describe()
        assert "wall 60s" in text
        assert "pass 5s (soft)" in text
        assert "solver query 1s" in text


class TestConfigWiring:
    def test_from_config_maps_all_three_knobs(self):
        config = AnalysisConfig(
            timeout_seconds=30.0,
            pass_timeout_seconds=4.0,
            solver_timeout_seconds=0.5,
        )
        budget = Budget.from_config(config)
        assert budget.wall_seconds == 30.0
        assert budget.pass_seconds == 4.0
        assert budget.solver_seconds == 0.5

    def test_default_config_gives_unlimited_budget(self):
        assert Budget.from_config(AnalysisConfig()).unlimited

    def test_budget_knobs_are_semantic_for_caching(self):
        # A budget changes which verdicts are reachable (UNKNOWN vs.
        # decided), so flipping a knob must change the cache key.
        base = AnalysisConfig()
        assert base.cache_key() != AnalysisConfig(timeout_seconds=1.0).cache_key()
        assert base.cache_key() != AnalysisConfig(solver_timeout_seconds=1.0).cache_key()
        assert base.cache_key() != AnalysisConfig(pass_timeout_seconds=1.0).cache_key()


class TestCliFlags:
    def _write(self, tmp_path, source):
        path = tmp_path / "input.mcc"
        path.write_text(source)
        return str(path)

    def test_timeout_flag_yields_partial_report_not_hang(self, tmp_path, capsys):
        path = self._write(tmp_path, SIMPLE_UAF)
        code = cli_main(["--timeout", "0", path])
        out = capsys.readouterr().out
        assert "timed out — partial results" in out
        assert code == 0  # no findings in the partial report

    def test_generous_budgets_do_not_change_findings(self, tmp_path, capsys):
        path = self._write(tmp_path, SIMPLE_UAF)
        code = cli_main(
            ["--timeout", "600", "--pass-timeout", "600", "--solver-timeout", "600", path]
        )
        out = capsys.readouterr().out
        assert code == 1  # findings present
        assert "timed out" not in out

    def test_solver_timeout_flag_reports_degradation(self, tmp_path, capsys):
        path = self._write(tmp_path, SIMPLE_UAF)
        cli_main(["--solver-timeout", "0.000001", path])
        err = capsys.readouterr().err
        assert "undecided" in err or "deadline" in err

    def test_timed_out_report_flagged_in_statistics(self):
        report = Canary(AnalysisConfig(timeout_seconds=0.0)).analyze_source(SIMPLE_UAF)
        assert report.timed_out
        assert "partial results" in report.describe_statistics()


class TestTimedOutFlags:
    """The explicit ``timed_out`` flags consumed by fsam and the bench
    runner (previously inferred from the wall clock alone)."""

    def _module(self):
        from repro.frontend import parse_program
        from repro.lowering import lower_program

        return lower_program(parse_program(SIMPLE_UAF))

    def test_flow_sensitive_result_carries_timed_out(self):
        import time

        from repro.pointer.flowsensitive import flow_sensitive_pointsto

        module = self._module()
        full = flow_sensitive_pointsto(module)
        assert not full.timed_out
        cut = flow_sensitive_pointsto(module, deadline=time.perf_counter() - 1.0)
        assert cut.timed_out

    def test_fsam_zero_budget_marks_timed_out(self):
        from repro.baselines import FsamBaseline

        result = FsamBaseline(time_budget=0.0).detect_uaf(self._module())
        assert result.timed_out
        assert result.reports == []

    def test_bench_runner_records_canary_timeout_as_na(self):
        from repro.bench.runner import run_subject
        from repro.bench.subjects import PROFILES, SUBJECTS

        run = run_subject(
            SUBJECTS[0],
            PROFILES["quick"],
            tools=("canary",),
            track_memory=False,
            canary_timeout_seconds=0.0,
        )
        tool = run.tools["canary"]
        assert tool.timed_out
        assert tool.seconds is None and tool.reports is None
