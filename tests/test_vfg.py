"""Tests for VFG construction: Alg. 1 data dependence, Alg. 2 interference."""

from repro.frontend import parse_program
from repro.ir import FreeInst, LoadInst, StoreInst
from repro.lowering import lower_program
from repro.smt.terms import TRUE
from repro.vfg import DefNode, ObjNode, StoreNode, build_vfg

from programs import (
    FIG2_BUGGY,
    FIG2_BUG_FREE,
    JOIN_PROTECTED,
    SIMPLE_UAF,
    THROUGH_CALL,
)


def bundle_for(src, **kwargs):
    return build_vfg(lower_program(parse_program(src)), **kwargs)


def find(module, func, cls, nth=0):
    return [i for i in module.functions[func].body if isinstance(i, cls)][nth]


class TestDataDependence:
    def test_alloc_edge(self):
        bundle = bundle_for("void main() { int* p = malloc(); }")
        alloc = bundle.module.functions["main"].body[0]
        edges = bundle.vfg.out_edges(ObjNode(alloc.obj))
        assert any(e.dst == DefNode(alloc.dst) and e.kind == "alloc" for e in edges)

    def test_copy_edge(self):
        bundle = bundle_for("void main() { int* p = malloc(); int* q = p; }")
        body = bundle.module.functions["main"].body
        p, q = body[0].dst, body[2].dst  # alloc, copy(p), copy(q)... q is body[2]
        # find the direct edge p-def to q-def through the copies
        reachable = _forward_vars(bundle, p)
        assert q in reachable

    def test_intra_store_load_edge(self):
        bundle = bundle_for(
            "void main() { int** x = malloc(); int* a = malloc(); *x = a; int* c = *x; }"
        )
        store = find(bundle.module, "main", StoreInst)
        load = find(bundle.module, "main", LoadInst)
        edges = bundle.vfg.out_edges(StoreNode(store))
        assert any(
            e.dst == DefNode(load.dst) and e.kind == "load" and not e.interthread
            for e in edges
        )

    def test_strong_update_kills_old_value(self):
        bundle = bundle_for(
            """
            void main() {
                int** x = malloc();
                int* a = malloc();
                int* b = malloc();
                *x = a;
                *x = b;
                int* c = *x;
                print(*c);
            }
            """
        )
        store_a = find(bundle.module, "main", StoreInst, 0)
        store_b = find(bundle.module, "main", StoreInst, 1)
        load = find(bundle.module, "main", LoadInst, 0)
        edges_a = [
            e for e in bundle.vfg.out_edges(StoreNode(store_a)) if e.load is load
        ]
        edges_b = [
            e for e in bundle.vfg.out_edges(StoreNode(store_b)) if e.load is load
        ]
        assert not edges_a  # killed by the unconditional second store
        assert edges_b

    def test_conditional_store_keeps_both(self):
        bundle = bundle_for(
            """
            extern int c;
            void main() {
                int** x = malloc();
                int* a = malloc();
                int* b = malloc();
                *x = a;
                if (c) { *x = b; }
                int* v = *x;
            }
            """
        )
        store_a = find(bundle.module, "main", StoreInst, 0)
        store_b = find(bundle.module, "main", StoreInst, 1)
        load = find(bundle.module, "main", LoadInst, 0)
        edges_a = [e for e in bundle.vfg.out_edges(StoreNode(store_a)) if e.load is load]
        edges_b = [e for e in bundle.vfg.out_edges(StoreNode(store_b)) if e.load is load]
        assert edges_a and edges_b
        # The surviving old-value edge carries the negated branch condition.
        assert edges_a[0].guard is not TRUE

    def test_summary_store_via_callee(self):
        bundle = bundle_for(THROUGH_CALL)
        put_store = find(bundle.module, "put", StoreInst)
        get_load = find(bundle.module, "get", LoadInst)
        # The flow goes store@put -> (call edge at the get() call site) ->
        # get's initial-value variable -> the load's destination.
        reached = _forward_nodes(bundle, StoreNode(put_store))
        assert DefNode(get_load.dst) in reached, (
            "store in put() must reach load in get() through main's memory"
        )


class TestInterference:
    def test_fig2_has_escaped_objects(self):
        bundle = bundle_for(FIG2_BUG_FREE)
        names = {o.name for o in bundle.interference.escaped}
        assert len(names) >= 3  # o(x), o(a), o(b) all escape

    def test_fig2_contradictory_edge_pruned(self):
        bundle = bundle_for(FIG2_BUG_FREE)
        assert bundle.interference.interference_edge_count == 0

    def test_fig2_buggy_edge_present(self):
        bundle = bundle_for(FIG2_BUGGY)
        assert bundle.interference.interference_edge_count >= 1
        edge = bundle.vfg.interference_edges()[0]
        assert isinstance(edge.store, StoreInst)
        assert isinstance(edge.load, LoadInst)

    def test_simple_uaf_interference(self):
        bundle = bundle_for(SIMPLE_UAF)
        assert bundle.interference.interference_edge_count >= 1

    def test_no_interference_without_fork(self):
        bundle = bundle_for(
            """
            void main() {
                int** x = malloc();
                int* a = malloc();
                *x = a;
                int* c = *x;
                print(*c);
            }
            """
        )
        assert bundle.interference.interference_edge_count == 0
        assert not bundle.interference.escaped or all(
            o.kind != "global" for o in bundle.interference.escaped
        )

    def test_global_escapes(self):
        bundle = bundle_for(
            """
            int* g;
            void main() { g = malloc(); fork(t, w); }
            void w() { int* v = g; print(*v); }
            """
        )
        assert any(o.kind == "global" for o in bundle.interference.escaped)
        # The store precedes the fork, so the cross-thread flow is an
        # *ordered* dependence (dd), not interference — but the edge from
        # the global store to the child's load must exist.
        store_g = find(bundle.module, "main", StoreInst)
        load_g = find(bundle.module, "w", LoadInst)
        edges = [e for e in bundle.vfg.out_edges(StoreNode(store_g)) if e.load is load_g]
        assert edges and not edges[0].interthread

    def test_mhp_prunes_ordered_pairs(self):
        bundle = bundle_for(JOIN_PROTECTED)
        # The child's store may still interfere with the pre-join load,
        # but no edge may target the post-join load from... actually the
        # post-join load reads the child's store as an ordered (dd) edge.
        for edge in bundle.vfg.interference_edges():
            assert bundle.mhp.may_happen_in_parallel(edge.store, edge.load)

    def test_fixpoint_terminates(self):
        bundle = bundle_for(FIG2_BUGGY)
        assert bundle.interference.rounds <= 20

    def test_transitive_escape(self):
        # b points to o_b; b is stored into escaped o_x; o_b must escape.
        bundle = bundle_for(SIMPLE_UAF)
        module = bundle.module
        alloc_b = module.functions["worker"].body[1]  # formal store.. find alloc
        from repro.ir import AllocInst

        allocs = [i for i in module.functions["worker"].body if isinstance(i, AllocInst)]
        assert allocs[0].obj in bundle.interference.escaped

    def test_summary_counts(self):
        bundle = bundle_for(SIMPLE_UAF)
        s = bundle.summary()
        assert s["vfg_nodes"] > 0
        assert s["vfg_edges"] > 0
        assert s["threads"] == 2


def _forward_nodes(bundle, origin):
    """All nodes forward-reachable from ``origin``."""
    seen = set()
    stack = [origin]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for e in bundle.vfg.out_edges(node):
            stack.append(e.dst)
    return seen


def _forward_vars(bundle, var):
    """All variables forward-reachable from def(var)."""
    return {n.var for n in _forward_nodes(bundle, DefNode(var)) if isinstance(n, DefNode)}
