"""Tests for the concrete interpreter and witness-replay confirmation."""

import pathlib

import pytest

from repro import AnalysisConfig, Canary
from repro.frontend import parse_program
from repro.interp import Environment, Interpreter, confirm_all, confirm_bug
from repro.lowering import lower_program

from programs import FIG2_BUGGY, SIMPLE_UAF, TAINT_LEAK


def lower(src):
    return lower_program(parse_program(src))


def run(src, externs=None, bools=None, schedule=None):
    interp = Interpreter(
        lower(src), Environment(externs=externs or {}, bools=bools or {})
    )
    return interp.run(schedule=schedule)


class TestSequentialExecution:
    def test_arithmetic_and_print(self):
        result = run(
            """
            void main() {
                int x = 2 + 3;
                int y = x * 4;
                print(y);
            }
            """
        )
        assert result.completed
        assert result.violations == []
        assert "int(20)" in result.output[0]

    def test_memory_round_trip(self):
        result = run(
            """
            void main() {
                int** box = malloc();
                int* v = malloc();
                *v = 7;
                *box = v;
                int* got = *box;
                print(*got);
            }
            """
        )
        assert result.violations == []
        assert "int(7)" in result.output[0]

    def test_sequential_uaf_detected(self):
        result = run(
            """
            void main() {
                int* p = malloc();
                free(p);
                print(*p);
            }
            """
        )
        assert len(result.violations_of("use-after-free")) == 1

    def test_double_free_detected(self):
        result = run("void main() { int* p = malloc(); free(p); free(p); }")
        assert len(result.violations_of("double-free")) == 1

    def test_null_deref_detected(self):
        result = run("void main() { int* p = null; *p = 1; }")
        assert len(result.violations_of("null-deref")) == 1

    def test_taint_flow_detected(self):
        result = run(
            "void main() { int* s = taint_source(); taint_sink(s); }"
        )
        assert len(result.violations_of("info-leak")) == 1

    def test_branch_follows_extern(self):
        src = """
        extern int flag;
        void main() {
            if (flag) { print(1); } else { print(2); }
        }
        """
        assert "int(1)" in run(src, externs={"flag": 1}).output[0]
        assert "int(2)" in run(src, externs={"flag": 0}).output[0]

    def test_calls_and_returns(self):
        result = run(
            """
            int add(int a, int b) { return a + b; }
            void main() { int r = add(40, 2); print(r); }
            """
        )
        assert "int(42)" in result.output[0]

    def test_recursion_bounded(self):
        result = run(
            """
            int loop(int n) { int r = loop(n); return r; }
            void main() { int x = loop(1); print(x); }
            """
        )
        assert result.completed  # depth cap prevents divergence

    def test_loop_executes_unrolled(self):
        result = run(
            """
            void main() {
                int i = 0;
                while (i < 2) {
                    print(i);
                    i = i + 1;
                }
            }
            """
        )
        # unrolled twice; conditions on concrete ints are honored
        assert len(result.output) == 2


class TestThreads:
    def test_fork_runs_child(self):
        result = run(
            """
            void child() { print(99); }
            void main() { fork(t, child); }
            """
        )
        assert result.completed
        assert any("99" in line for line in result.output)

    def test_join_waits(self):
        result = run(
            """
            int* g;
            void child() { g = malloc(); }
            void main() {
                fork(t, child);
                join(t);
                int* v = g;
                print(*v);
            }
            """
        )
        assert result.completed
        assert result.violations == []

    def test_schedule_controls_interleaving(self):
        module = lower(SIMPLE_UAF)
        # Unscheduled: program order is benign (main reads before child
        # stores), so no violation.
        benign = Interpreter(module).run()
        assert benign.violations_of("use-after-free") == []


class TestWitnessConfirmation:
    def test_simple_uaf_confirmed(self):
        report = Canary().analyze_source(SIMPLE_UAF)
        results = confirm_all(report.bundle.module, report.bugs)
        assert results and all(r.confirmed for r in results)

    def test_fig2_buggy_confirmed(self):
        report = Canary().analyze_source(FIG2_BUGGY)
        results = confirm_all(report.bundle.module, report.bugs)
        assert results and all(r.confirmed for r in results)

    def test_taint_leak_confirmed(self):
        report = Canary(
            AnalysisConfig(checkers=("info-leak",))
        ).analyze_source(TAINT_LEAK)
        results = confirm_all(report.bundle.module, report.bugs)
        assert results and all(r.confirmed for r in results)

    def test_confirmation_describe(self):
        report = Canary().analyze_source(SIMPLE_UAF)
        result = confirm_bug(report.bundle.module, report.bugs[0])
        assert "CONFIRMED" in result.describe()


_CORPUS = pathlib.Path(__file__).parent / "corpus"
_CONFIRMABLE = [
    "uaf_basic.mcc",
    "uaf_guarded_feasible.mcc",
    "uaf_ordered_real.mcc",
    "uaf_through_helpers.mcc",
    "uaf_global_channel.mcc",
    "uaf_two_workers.mcc",
    "doublefree_cross_thread.mcc",
    "nullderef_shared.mcc",
    "leak_shared_memory.mcc",
]


@pytest.mark.parametrize("name", _CONFIRMABLE)
def test_corpus_reports_replay(name):
    """Every static report on these corpus entries must replay to a real
    runtime violation of the same kind."""
    text = (_CORPUS / name).read_text()
    checkers = ("use-after-free", "double-free", "null-deref", "info-leak")
    report = Canary(AnalysisConfig(checkers=checkers)).analyze_source(text)
    assert report.num_reports >= 1
    results = confirm_all(report.bundle.module, report.bugs)
    confirmed = [r for r in results if r.confirmed]
    assert len(confirmed) >= 1, "\n".join(r.describe() for r in results)
