"""Unit tests for SMT internals: CNF encoding, difference logic, cubes."""

import pytest

from repro.smt import SAT, UNSAT, Solver, and_, bool_var, implies, int_var, lt, not_, or_
from repro.smt.cnf import CnfEncoder
from repro.smt.portfolio import cube_solve, pick_split_atoms
from repro.smt.sat import SatSolver, SAT as SAT_RES, UNSAT as UNSAT_RES, UNKNOWN
from repro.smt.theory import (
    DifferenceBound,
    DifferenceLogicSolver,
    ZERO_NAME,
    negate_bound,
    normalize_atom,
)
from repro.smt.terms import FALSE, TRUE, eq, le


class TestCnfEncoder:
    def test_atom_gets_variable(self):
        enc = CnfEncoder()
        a = bool_var("a")
        v = enc.var_for_atom(a)
        assert enc.atom_of_var[v] is a
        assert enc.var_for_atom(a) == v  # stable

    def test_unit_assertion(self):
        enc = CnfEncoder()
        enc.add_assertion(bool_var("a"))
        assert [c for c in enc.clauses if len(c) == 1]

    def test_conjunction_splits(self):
        enc = CnfEncoder()
        enc.add_assertion(and_(bool_var("a"), bool_var("b")))
        units = [c[0] for c in enc.clauses if len(c) == 1]
        assert len(units) == 2

    def test_disjunction_single_clause(self):
        enc = CnfEncoder()
        enc.add_assertion(or_(bool_var("a"), bool_var("b")))
        # one unit for the gate + defining clauses
        assert enc.num_vars >= 3

    def test_false_assertion_empty_clause(self):
        enc = CnfEncoder()
        enc.add_assertion(FALSE)
        assert [] in enc.clauses

    def test_theory_atoms_identified(self):
        enc = CnfEncoder()
        enc.add_assertion(and_(bool_var("a"), lt(int_var("x"), int_var("y"))))
        theory = enc.theory_atoms()
        assert len(theory) == 1

    def test_gate_sharing(self):
        enc = CnfEncoder()
        d = or_(bool_var("a"), bool_var("b"))
        enc.add_assertion(or_(d, bool_var("c")))
        before = enc.num_vars
        enc.add_assertion(or_(d, bool_var("e")))
        # the shared gate for d is reused
        assert enc.num_vars == before + 2  # only e and the new or-gate


class TestSatSolverDirect:
    def test_empty_instance_sat(self):
        assert SatSolver().solve() is SAT_RES

    def test_unit_conflict(self):
        s = SatSolver()
        assert s.add_clause([1])
        assert not s.add_clause([-1])
        assert s.solve() is UNSAT_RES

    def test_three_sat_instance(self):
        s = SatSolver()
        for clause in ([1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2]):
            s.add_clause(clause)
        assert s.solve() is SAT_RES
        assert s.model[2] is True
        assert s.model[1] is False and s.model[3] is False

    def test_unsat_core_instance(self):
        s = SatSolver()
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            s.add_clause(clause)
        assert s.solve() is UNSAT_RES

    def test_incremental_clause_addition(self):
        s = SatSolver()
        s.add_clause([1, 2])
        assert s.solve() is SAT_RES
        s.add_clause([-1])
        s.add_clause([-2])
        assert s.solve() is UNSAT_RES

    def test_tautology_ignored(self):
        s = SatSolver()
        assert s.add_clause([1, -1])
        assert s.solve() is SAT_RES

    def test_conflict_budget(self):
        # A hard-ish pigeonhole: 4 pigeons, 3 holes.
        s = SatSolver()
        def var(p, h):
            return p * 3 + h + 1
        for p in range(4):
            s.add_clause([var(p, h) for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    s.add_clause([-var(p1, h), -var(p2, h)])
        assert s.solve(max_conflicts=1) in (UNKNOWN, UNSAT_RES)
        assert s.solve() is UNSAT_RES


class TestDifferenceLogicUnit:
    def test_normalize_le(self):
        x, y = int_var("x"), int_var("y")
        [b] = normalize_atom(le(x, y))
        assert b == DifferenceBound("x", "y", 0)

    def test_normalize_lt_constant(self):
        x = int_var("x")
        [b] = normalize_atom(lt(x, 5))
        assert b == DifferenceBound("x", ZERO_NAME, 4)

    def test_normalize_eq_two_bounds(self):
        x, y = int_var("x"), int_var("y")
        bounds = normalize_atom(eq(x, y))
        assert len(bounds) == 2

    def test_normalize_difference(self):
        x, y = int_var("x"), int_var("y")
        [b] = normalize_atom(le(x - y, 3))
        assert b == DifferenceBound("x", "y", 3)

    def test_normalize_rejects_nonunit(self):
        x = int_var("x")
        with pytest.raises(ValueError):
            normalize_atom(le(x + x, 3))

    def test_normalize_boolean_atom_is_none(self):
        assert normalize_atom(bool_var("a")) is None

    def test_negate_bound(self):
        b = DifferenceBound("x", "y", 3)
        nb = negate_bound(b)
        assert nb == DifferenceBound("y", "x", -4)
        assert negate_bound(nb) == b

    def test_push_pop(self):
        solver = DifferenceLogicSolver()
        solver.assert_bound(DifferenceBound("x", "y", -1), "a")
        mark = solver.push()
        solver.assert_bound(DifferenceBound("y", "x", -1), "b")
        assert solver.check() is not None
        solver.pop(mark)
        assert solver.check() is None

    def test_core_tags(self):
        solver = DifferenceLogicSolver()
        solver.assert_bound(DifferenceBound("x", "y", -1), "e1")
        solver.assert_bound(DifferenceBound("y", "z", -1), "e2")
        solver.assert_bound(DifferenceBound("z", "x", -1), "e3")
        solver.assert_bound(DifferenceBound("x", "w", 5), "unrelated")
        core = solver.check()
        assert core is not None
        assert set(core) == {"e1", "e2", "e3"}

    def test_model_respects_bounds(self):
        solver = DifferenceLogicSolver()
        solver.assert_bound(DifferenceBound("x", "y", -2), "a")  # x <= y - 2
        assert solver.check() is None
        model = solver.model()
        assert model["x"] - model["y"] <= -2


class TestCubeAndConquer:
    def test_pick_split_atoms_frequency(self):
        a, b = bool_var("a"), bool_var("b")
        f = and_(or_(a, b), or_(a, not_(b)), or_(a, bool_var("c")))
        atoms = pick_split_atoms(f, k=1)
        assert atoms == [a]

    def test_cube_solve_sat(self):
        a = bool_var("a")
        assert cube_solve(a) == SAT

    def test_cube_solve_unsat(self):
        a = bool_var("a")
        x, y = int_var("x"), int_var("y")
        f = and_(or_(a, not_(a)), lt(x, y), lt(y, x))
        assert cube_solve(f) == UNSAT

    def test_cube_solve_no_atoms(self):
        assert cube_solve(TRUE) == SAT

    def test_cube_agrees_with_monolithic(self):
        g1, g2, g3 = (bool_var(f"g{i}") for i in range(3))
        x, y = int_var("x"), int_var("y")
        f = and_(
            or_(g1, g2, g3),
            implies(g1, lt(x, y)),
            implies(g2, lt(y, x)),
            implies(g3, and_(lt(x, y), lt(y, x))),
        )
        solver = Solver()
        solver.add(f)
        assert cube_solve(f) == solver.check()
