"""Tests for the benchmark comparison (regression-detection) tool."""

import pathlib

import pytest

from repro.bench.compare import compare_fig7, compare_table1, main

TABLE1_OLD = """index,subject,lines,saber_reports,saber_fp_rate,fsam_reports,fsam_fp_rate,canary_reports,canary_fps,canary_tps
1,lrzip,240,67,97.01,12,83.33,2,0,2
2,lwan,246,61,98.36,11,90.91,1,0,1
"""

FIG7_OLD = """index,subject,lines,saber_seconds,saber_mb,fsam_seconds,fsam_mb,canary_seconds,canary_mb
1,lrzip,240,0.10,1.0,0.30,1.2,0.12,1.1
2,lwan,246,0.11,1.0,0.32,1.2,0.13,1.1
"""


@pytest.fixture()
def dirs(tmp_path):
    old = tmp_path / "old"
    new = tmp_path / "new"
    for d in (old, new):
        d.mkdir()
        (d / "table1.csv").write_text(TABLE1_OLD)
        (d / "fig7.csv").write_text(FIG7_OLD)
    return old, new


class TestVerdictRegressions:
    def test_identical_runs_clean(self, dirs):
        old, new = dirs
        assert compare_table1(old / "table1.csv", new / "table1.csv") == []

    def test_changed_report_count_flagged(self, dirs):
        old, new = dirs
        (new / "table1.csv").write_text(
            TABLE1_OLD.replace("2,0,2", "3,1,2")
        )
        regs = compare_table1(old / "table1.csv", new / "table1.csv")
        assert len(regs) == 2  # reports and fps both changed
        assert all(r.kind == "verdict" for r in regs)

    def test_missing_subject_flagged(self, dirs):
        old, new = dirs
        lines = TABLE1_OLD.strip().splitlines()
        (new / "table1.csv").write_text("\n".join(lines[:-1]) + "\n")
        regs = compare_table1(old / "table1.csv", new / "table1.csv")
        assert any("missing" in r.detail for r in regs)


class TestTimeRegressions:
    def test_small_change_ok(self, dirs):
        old, new = dirs
        (new / "fig7.csv").write_text(FIG7_OLD.replace("0.12,1.1", "0.14,1.1"))
        assert compare_fig7(old / "fig7.csv", new / "fig7.csv") == []

    def test_big_slowdown_flagged(self, dirs):
        old, new = dirs
        (new / "fig7.csv").write_text(FIG7_OLD.replace("0.12,1.1", "0.90,1.1"))
        regs = compare_fig7(old / "fig7.csv", new / "fig7.csv")
        assert len(regs) == 1
        assert "canary" in regs[0].detail

    def test_new_timeout_flagged(self, dirs):
        old, new = dirs
        (new / "fig7.csv").write_text(FIG7_OLD.replace("0.10,1.0", "NA,NA"))
        regs = compare_fig7(old / "fig7.csv", new / "fig7.csv")
        assert any("budget" in r.detail for r in regs)


class TestCli:
    def test_clean_exit(self, dirs, capsys):
        old, new = dirs
        assert main([str(old), str(new)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exit(self, dirs, capsys):
        old, new = dirs
        (new / "table1.csv").write_text(TABLE1_OLD.replace("1,0,1", "4,3,1"))
        assert main([str(old), str(new)]) == 1

    def test_usage(self, capsys):
        assert main([]) == 2
