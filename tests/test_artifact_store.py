"""ArtifactStore bugfix sweep: disk-store error accounting, strict disk
serialization, LRU caches, and thread-safe shared access.

These are the invariants the daemon's resident store relies on — each
regression test here pins one of the cache-layer bugs the one-shot CLI
used to hide (silent ``put_disk`` failures, lossy ``default=str``
serialization, the blunt whole-cache reachability reset).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

import pytest

from repro.analysis import AnalysisConfig, ArtifactStore, Canary
from repro.detection.reachability import ReachabilityIndexCache

from test_corpus import CORPUS_FILES, _parse_directives

CORPUS = pathlib.Path(__file__).parent / "corpus"


def _keys(report):
    return sorted(b.key for b in report.bugs)


# ----- satellite: silent disk-store failures ---------------------------------


class TestDiskStoreErrors:
    def test_oserror_on_replace_is_counted_not_raised(self, tmp_path, monkeypatch):
        store = ArtifactStore(cache_dir=str(tmp_path))

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        store.put_disk("run", "d1", {"ok": True})  # must not raise
        assert store.disk_store_errors == 1
        assert store.statistics()["disk_store_errors"] == 1
        assert "store-error disk:run" in store.events
        assert store.get_disk("run", "d1") is None  # nothing was published

    def test_oserror_on_mkstemp_is_counted_not_raised(self, tmp_path, monkeypatch):
        store = ArtifactStore(cache_dir=str(tmp_path))
        import tempfile

        def broken_mkstemp(**kwargs):
            raise OSError("too many open files")

        monkeypatch.setattr(tempfile, "mkstemp", broken_mkstemp)
        store.put_disk("run", "d2", {"ok": True})
        assert store.disk_store_errors == 1
        assert "store-error disk:run" in store.events

    def test_healthy_store_counts_nothing(self, tmp_path):
        store = ArtifactStore(cache_dir=str(tmp_path))
        store.put_disk("run", "d3", {"ok": True})
        assert store.disk_store_errors == 0
        assert "disk_store_errors" not in store.statistics()
        assert store.get_disk("run", "d3") == {"ok": True}


# ----- satellite: lossy disk serialization -----------------------------------


class TestStrictDiskSerialization:
    def test_unportable_value_is_skipped_and_counted(self, tmp_path):
        store = ArtifactStore(cache_dir=str(tmp_path))
        # pre-LRU code stringified this via ``default=str`` and persisted
        # a value that would rehydrate as a *different* object
        store.put_disk("run", "bad", {"payload": object()})
        assert store.disk_unportable == 1
        assert store.statistics()["disk_unportable"] == 1
        assert "unportable disk:run" in store.events
        assert list(tmp_path.iterdir()) == []  # nothing hit the disk
        assert store.get_disk("run", "bad") is None

    def test_portable_value_round_trips_exactly(self, tmp_path):
        store = ArtifactStore(cache_dir=str(tmp_path))
        value = {"a": [1, 2.5, "x", None, True], "nested": {"k": "v"}}
        store.put_disk("run", "good", value)
        assert store.get_disk("run", "good") == value
        assert store.disk_unportable == 0

    def test_no_lossy_stringification_on_disk(self, tmp_path):
        # A set would have been persisted as its ``str()`` rendering
        # before the fix; now the entry is refused outright.
        store = ArtifactStore(cache_dir=str(tmp_path))
        store.put_disk("vfs", "s1", {"edges": {1, 2, 3}})
        assert store.disk_unportable == 1
        for path in tmp_path.iterdir():
            text = path.read_text()
            assert "{1, 2, 3}" not in text

    def test_corrupt_entry_still_counted_separately(self, tmp_path):
        store = ArtifactStore(cache_dir=str(tmp_path))
        (tmp_path / "run-z.json").write_text("{truncated")
        assert store.get_disk("run", "z") is None
        assert store.disk_corrupt == 1
        assert store.disk_unportable == 0


# ----- satellite: blunt cache reset → LRU ------------------------------------


def _small_vfg_and_sinks():
    """A tiny real VFG with a one-node sink set, via a corpus analysis."""
    report = Canary(AnalysisConfig()).analyze_source(
        (CORPUS / "uaf_basic.mcc").read_text(), filename="uaf_basic.mcc"
    )
    vfg = report.bundle.vfg
    nodes = list(vfg.nodes())
    return vfg, nodes


class TestReachabilityCacheLRU:
    def test_capacity_evicts_least_recently_used(self):
        vfg, nodes = _small_vfg_and_sinks()
        cache = ReachabilityIndexCache(capacity=4)
        for i in range(6):
            cache.get(vfg, [nodes[i]])
        assert len(cache) == 4
        assert cache.evictions == 2
        # the two oldest sink sets were evicted; re-requesting rebuilds
        builds = cache.builds
        cache.get(vfg, [nodes[0]])
        assert cache.builds == builds + 1

    def test_hot_entry_survives_cold_churn(self):
        vfg, nodes = _small_vfg_and_sinks()
        cache = ReachabilityIndexCache(capacity=4)
        hot = cache.get(vfg, [nodes[0]])
        for i in range(1, 12):
            cache.get(vfg, [nodes[i % len(nodes)]])
            assert cache.get(vfg, [nodes[0]]) is hot  # touched → stays warm
        assert cache.shared_hits >= 11

    def test_version_mismatch_still_invalidates(self):
        vfg, nodes = _small_vfg_and_sinks()
        cache = ReachabilityIndexCache(capacity=4)
        first = cache.get(vfg, [nodes[0]])
        if hasattr(vfg, "version"):
            vfg.version += 1
            second = cache.get(vfg, [nodes[0]])
            assert second is not first

    def test_statistics_shape(self):
        cache = ReachabilityIndexCache(capacity=2)
        stats = cache.statistics()
        assert set(stats) == {"entries", "builds", "shared_hits", "evictions"}

    def test_begin_run_preserves_hit_rate_across_many_runs(self):
        """The daemon regression: >32 begin_run boundaries used to wipe
        the whole cache; now warm runs keep hitting."""
        store = ArtifactStore()
        canary = Canary(AnalysisConfig(), store=store)
        source = (CORPUS / "uaf_basic.mcc").read_text()
        canary.analyze_source(source, filename="uaf_basic.mcc")
        builds_after_cold = store.index_cache.builds
        for i in range(40):
            store.begin_run()
        # the cold run's indexes are still resident — nothing was reset
        assert len(store.index_cache) > 0
        assert store.index_cache.builds == builds_after_cold


# ----- memory-layer LRU and event-log bounds ---------------------------------


class TestMemoryLayerBounds:
    def test_lru_eviction_past_cap(self):
        store = ArtifactStore(max_memory_entries=3)
        for i in range(5):
            store.put("ns", i, f"v{i}")
        assert store.statistics()["artifacts_stored"] == 3
        assert store.statistics()["artifact_evictions"] == 2
        assert store.get("ns", 0) is None  # oldest gone
        assert store.get("ns", 4) == "v4"

    def test_get_refreshes_recency(self):
        store = ArtifactStore(max_memory_entries=2)
        store.put("ns", "a", 1)
        store.put("ns", "b", 2)
        assert store.get("ns", "a") == 1  # touch a → b is now LRU
        store.put("ns", "c", 3)
        assert store.get("ns", "b") is None
        assert store.get("ns", "a") == 1

    def test_unbounded_by_default(self):
        store = ArtifactStore()
        for i in range(100):
            store.put("ns", i, i)
        assert store.statistics()["artifacts_stored"] == 100
        assert "artifact_evictions" not in store.statistics()

    def test_event_log_bounded(self):
        store = ArtifactStore(max_events=10)
        for i in range(50):
            store.note(f"e{i}")
        assert len(store.events) <= 10
        assert store.events[-1] == "e49"


# ----- satellite: concurrent access through one shared store -----------------


class TestConcurrentSharedStore:
    """Two threads analyzing through one ArtifactStore / verdict cache:
    no torn state, and bug keys equal the serial reference — the
    invariant the daemon's worker pool relies on."""

    FILES = [
        "uaf_basic.mcc",
        "mixed_all_checkers.mcc",
        "doublefree_cross_thread.mcc",
        "uaf_two_workers.mcc",
    ]

    def _reference(self, name):
        text = (CORPUS / name).read_text()
        _expects, checkers, overrides = _parse_directives(text)
        report = Canary(
            AnalysisConfig(checkers=checkers, **overrides)
        ).analyze_source(text, filename=name)
        return _keys(report)

    def test_distinct_files_in_parallel_match_serial(self):
        expected = {name: self._reference(name) for name in self.FILES}
        store = ArtifactStore()
        results: dict = {}
        errors: list = []

        def work(name):
            try:
                text = (CORPUS / name).read_text()
                _expects, checkers, overrides = _parse_directives(text)
                canary = Canary(
                    AnalysisConfig(checkers=checkers, **overrides), store=store
                )
                for _ in range(2):  # second lap rides the warm path
                    report = canary.analyze_source(text, filename=name)
                results[name] = _keys(report)
            except Exception as exc:  # surfaced below
                errors.append((name, exc))

        threads = [threading.Thread(target=work, args=(n,)) for n in self.FILES]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert results == expected

    def test_same_file_in_parallel_matches_serial(self):
        name = "mixed_all_checkers.mcc"
        expected = self._reference(name)
        text = (CORPUS / name).read_text()
        _expects, checkers, overrides = _parse_directives(text)
        store = ArtifactStore()
        results: list = []
        errors: list = []

        def work():
            try:
                canary = Canary(
                    AnalysisConfig(checkers=checkers, **overrides), store=store
                )
                results.append(_keys(canary.analyze_source(text, filename=name)))
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert all(r == expected for r in results), results

    def test_counters_are_consistent_under_contention(self):
        store = ArtifactStore(max_memory_entries=64)

        def hammer(tid):
            for i in range(300):
                store.put("ns", (tid, i), i)
                store.get("ns", (tid, i))
                store.get("ns", ("missing", i))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        stats = store.statistics()
        # every get was counted exactly once, under the lock
        assert stats["artifact_hits"] + stats["artifact_misses"] == 4 * 300 * 2
        assert stats["artifacts_stored"] <= 64
