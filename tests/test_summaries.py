"""The per-function summary layer (:mod:`repro.vfg.summaries`).

Covers the exactness contract (identical adjacency, identical bug keys
with summaries on/off and across worker counts/backends), the artifact
round-trip (compute → persist → demand-load), single-edit invalidation
(exactly one summary recomputed), and the degradation ladder (pool
death → thread fallback → serial; a crashing summaries pass falls back
to the unsharded fixpoint without losing findings).
"""

import pytest

from repro import AnalysisConfig, Canary
from repro.testing import faults
from repro.testing.faults import FaultPlan, inject
from repro.vfg.summaries import FunctionVFSummary, compute_summaries

from fuzz_gen import scaled_program
from test_corpus import CORPUS_FILES, _parse_directives

SUBJECT = """
void helper(int** s, int* p) { *s = p; }
void worker(int** s) { int* b = malloc(); helper(s, b); free(b); }
void main() {
    int** slot = malloc();
    int* init = malloc();
    *slot = init;
    fork(t, worker, slot);
    int* v = *slot;
    print(*v);
}
"""

SUBJECT_EDITED = SUBJECT.replace("print(*v);", "print(*v);\n    int z = 1 + 2;")

SCALED = scaled_program(n_groups=6, helpers_per_group=3)


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    faults.clear()


def _keys(report):
    return sorted(b.key for b in report.bugs)


def _run(text, **overrides):
    overrides.setdefault("use_cache", False)
    return Canary(AnalysisConfig(**overrides)).analyze_source(text)


class TestExactness:
    def test_view_matches_vfg_adjacency_everywhere(self):
        report = _run(SUBJECT)
        index = report.bundle.summary_index
        assert index is not None
        view = index.view
        # Force every node through the demand loader, then compare each
        # materialized list to the real VFG's — same edges, same order.
        vfg = report.bundle.vfg
        for node in list(vfg.nodes()):
            assert view.out_edges(node) == vfg.out_edges(node)
        view.assert_consistent()
        stats = view.statistics()
        assert stats["shards_loaded"] == stats["shards_total"] == 3

    def test_vfg_summary_identical_on_off(self):
        on = _run(SUBJECT)
        off = _run(SUBJECT, summaries=False)
        assert _keys(on) == _keys(off)
        assert on.vfg_summary == off.vfg_summary
        assert off.bundle.summary_index is None
        assert off.bundle.graph_view() is off.bundle.vfg

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    def test_corpus_keys_equal_on_off(self, path):
        text = path.read_text()
        expects, checkers, config = _parse_directives(text)
        base = dict(config, checkers=checkers, use_cache=False)
        on = Canary(AnalysisConfig(**base)).analyze_source(text)
        off = Canary(AnalysisConfig(**base, summaries=False)).analyze_source(text)
        assert _keys(on) == _keys(off)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_worker_count_equivalence(self, workers, backend):
        ref = _run(SCALED, summaries=False)
        rep = _run(SCALED, summary_workers=workers, solver_backend=backend)
        assert _keys(rep) == _keys(ref)
        assert len(_keys(rep)) == 2  # the generator's deterministic bugs
        assert rep.vfg_summary == ref.vfg_summary
        snap = rep.metrics.snapshot()
        assert snap["summary.computed"] == snap["summary.functions"]
        assert snap["summary.workers"] == workers


class TestArtifactRoundTrip:
    def test_persist_and_demand_load_identical_edges(self):
        canary = Canary(AnalysisConfig())
        first = canary.analyze_source(SUBJECT, filename="s.mcc")
        second = canary.analyze_source(SUBJECT_EDITED, filename="s.mcc")
        snap = second.metrics.snapshot()
        # Replayed functions demand-load their persisted summaries; only
        # the edited function (main, last in the bottom-up order) is
        # fingerprinted again.
        assert snap["summary.cache_hits"] == 2
        assert snap["summary.computed"] == 1
        rerun = [
            row["name"].split(":", 1)[1]
            for row in second.pass_statistics
            if row["name"].startswith("dataflow:") and row["status"] == "run"
        ]
        assert rerun == ["main"]
        # Reused summaries are the same artifacts, not recomputed equals.
        assert (
            second.bundle.summary_index.summaries["worker"]
            is first.bundle.summary_index.summaries["worker"]
        )
        cold = _run(SUBJECT_EDITED)
        assert _keys(second) == _keys(cold) == _keys(first)
        assert second.vfg_summary == cold.vfg_summary

    def test_summary_artifact_content(self):
        report = _run(SUBJECT)
        index = report.bundle.summary_index
        summary = index.summaries["worker"]
        assert isinstance(summary, FunctionVFSummary)
        assert summary.fingerprint and len(summary.fingerprint) == 64
        start, end = summary.edge_span
        assert end > start
        # Site positions point back into the global site lists and stay
        # inside the function's own extent.
        dataflow = report.bundle.dataflow
        for positions in summary.ptr_stores.values():
            for pos in positions:
                assert summary.extent[2] <= pos < summary.extent[3]
                assert dataflow.all_stores[pos].pointer in summary.ptr_stores

    def test_fingerprint_tracks_function_content(self):
        # Within one driver the edited function gets a new fingerprint
        # while untouched functions keep their (reused) artifacts.
        canary = Canary(AnalysisConfig())
        first = canary.analyze_source(SUBJECT, filename="s.mcc")
        second = canary.analyze_source(SUBJECT_EDITED, filename="s.mcc")
        fps1 = {n: s.fingerprint for n, s in first.bundle.summary_index.summaries.items()}
        fps2 = {n: s.fingerprint for n, s in second.bundle.summary_index.summaries.items()}
        assert fps1["helper"] == fps2["helper"]
        assert fps1["worker"] == fps2["worker"]
        assert fps1["main"] != fps2["main"]

    def test_compute_summaries_direct(self):
        report = _run(SUBJECT)
        dataflow = report.bundle.dataflow
        index = compute_summaries(dataflow, workers=1)
        assert set(index.summaries) == {"helper", "worker", "main"}
        total_span = sum(s.num_edges for s in index.summaries.values())
        # Every dataflow edge is owned by exactly one function span; the
        # difference to num_edges is the interference overlay.
        assert total_span <= dataflow.vfg.num_edges


class TestDiskNamespace:
    """The portable on-disk summary namespace: entries keyed by
    content-derived identity, shared across independent processes."""

    def _vfs_files(self, directory):
        import glob
        import os

        return sorted(glob.glob(os.path.join(str(directory), "vfs-*.json")))

    def test_roundtrip_across_instances(self, tmp_path):
        d = str(tmp_path)
        cold = Canary(AnalysisConfig(cache_dir=d, summary_cache_dir=d)).analyze_source(
            SUBJECT
        )
        snap = cold.metrics.snapshot()
        assert snap["summary.disk_stores"] == 3
        assert len(self._vfs_files(tmp_path)) == 3
        # A *fresh* instance (fresh in-memory store — stands in for a new
        # process) analyzing an edited source: the run digest misses, but
        # every unchanged function rehydrates from disk.
        warm = Canary(AnalysisConfig(cache_dir=d, summary_cache_dir=d)).analyze_source(
            SUBJECT_EDITED
        )
        snap2 = warm.metrics.snapshot()
        assert snap2["summary.disk_hits"] == 2
        assert snap2["summary.computed"] == 1
        ref = _run(SUBJECT_EDITED)
        assert _keys(warm) == _keys(ref)
        assert warm.vfg_summary == ref.vfg_summary

    def test_corrupt_entries_recompute_and_heal(self, tmp_path):
        d = str(tmp_path)
        Canary(AnalysisConfig(cache_dir=d, summary_cache_dir=d)).analyze_source(SUBJECT)
        for path in self._vfs_files(tmp_path):
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("{truncated by a killed writer")
        rep = Canary(AnalysisConfig(cache_dir=d, summary_cache_dir=d)).analyze_source(
            SUBJECT_EDITED
        )
        snap = rep.metrics.snapshot()
        # The two unchanged functions were requested, found corrupt, and
        # recomputed — never a run failure, never a wrong answer.
        assert rep.cache_statistics["disk_corrupt"] == 2
        assert snap.get("summary.disk_hits", 0) == 0
        assert snap["summary.computed"] == 3
        assert _keys(rep) == _keys(_run(SUBJECT_EDITED))
        # Recomputation heals every requested entry in place.
        import json

        healed = 0
        for path in self._vfs_files(tmp_path):
            try:
                json.load(open(path, encoding="utf-8"))
                healed += 1
            except ValueError:
                pass
        assert healed >= 3

    def test_summary_cache_dir_routes_vfs_entries(self, tmp_path):
        runs = tmp_path / "runs"
        sums = tmp_path / "sums"
        runs.mkdir()
        sums.mkdir()
        Canary(
            AnalysisConfig(cache_dir=str(runs), summary_cache_dir=str(sums))
        ).analyze_source(SUBJECT)
        assert len(self._vfs_files(sums)) == 3
        assert not self._vfs_files(runs)

    def test_disk_layer_inactive_without_cache(self, tmp_path):
        rep = _run(SUBJECT)  # use_cache=False
        snap = rep.metrics.snapshot()
        assert "summary.disk_stores" not in snap
        assert "summary.disk_hits" not in snap
        assert not self._vfs_files(tmp_path)


class TestDegradation:
    def test_pool_death_falls_back_to_threads(self):
        ref = _run(SCALED, summaries=False)
        with inject(FaultPlan.make(die=["worker:summary"])):
            rep = _run(SCALED, summary_workers=4, solver_backend="process")
        assert _keys(rep) == _keys(ref)
        snap = rep.metrics.snapshot()
        assert snap.get("summary.pool_failures", 0) >= 1
        assert snap["summary.computed"] == snap["summary.functions"]

    def test_pool_death_die_once(self, tmp_path):
        ref = _run(SCALED, summaries=False)
        plan = FaultPlan.make(
            die=["worker:summary"], die_once_path=str(tmp_path / "died")
        )
        with inject(plan):
            rep = _run(SCALED, summary_workers=4, solver_backend="process")
        assert _keys(rep) == _keys(ref)

    def test_fault_seeded_runs_stay_exact(self, monkeypatch):
        # The CI matrix path: a seeded plan must never change bug keys
        # when it only kills summary workers.
        monkeypatch.setenv(faults.SEED_ENV_VAR, "1")
        with inject(FaultPlan.make(die=["worker:summary"])):
            rep = _run(SUBJECT, summary_workers=2, solver_backend="process")
        assert len(_keys(rep)) == 1

    def test_crashing_summaries_pass_keeps_findings(self):
        with inject(FaultPlan.make(crash=["pass:summaries"])):
            rep = _run(SUBJECT)
        # The summary layer is an accelerator: losing it degrades to the
        # unsharded fixpoint, not to an empty report.
        assert len(_keys(rep)) == 1
        assert rep.bundle.summary_index is None
        failed = [r for r in rep.pass_statistics if r["status"] == "failed"]
        assert [r["name"] for r in failed] == ["summaries"]
        assert any("summary layer" in w for w in rep.degradation_warnings)
        assert _keys(rep) == _keys(_run(SUBJECT))

    def test_thread_backend_never_dies(self):
        with inject(FaultPlan.make(die=["worker:summary"])):
            rep = _run(SUBJECT, summary_workers=2, solver_backend="thread")
        assert len(_keys(rep)) == 1


class TestMetricsAndObservability:
    def test_interference_convergence_metrics(self):
        rep = _run(SCALED)
        snap = rep.metrics.snapshot()
        assert snap["interference.rounds"] == rep.vfg_summary["fixpoint_rounds"]
        assert (
            snap["interference.interference_edges"]
            == rep.vfg_summary["interference_edges"]
        )
        assert snap["interference.edges_added"] >= snap["interference.interference_edges"]
        assert snap["interference.escaped_objects"] == rep.vfg_summary["escaped_objects"]
        assert "interference.widenings" in snap

    def test_metrics_present_without_summaries(self):
        rep = _run(SUBJECT, summaries=False)
        snap = rep.metrics.snapshot()
        assert "interference.rounds" in snap
        assert "summary.functions" not in snap

    def test_demand_loading_skips_untouched_shards(self):
        # Dead helper functions publish nothing and are unreachable from
        # any escaped object or enumerated path: their shards must never
        # materialize.
        text = SUBJECT + "\nvoid dead1() { int a = 1 + 2; }\nvoid dead2() { int b = 2 + 3; }\n"
        rep = _run(text)
        stats = rep.bundle.summary_index.view.statistics()
        assert stats["shards_total"] == 5
        assert stats["shards_loaded"] < stats["shards_total"]

    def test_summaries_pass_row_present(self):
        rep = _run(SUBJECT)
        rows = {r["name"]: r for r in rep.pass_statistics}
        assert rows["summaries"]["status"] == "run"
        assert "3 summaries" in rows["summaries"]["detail"]
