"""Differential tests over random programs.

Cross-checks on programs nobody hand-crafted:

1. **Pipeline robustness** — every random program parses, lowers,
   verifies, and analyzes without crashing;
2. **Dynamic soundness** — any violation the concrete interpreter
   observes under a handful of schedules must be found statically
   (Canary with intra-thread reporting enabled);
3. **Relative soundness vs. the exhaustive baseline** — Canary's
   (free site, use site) report pairs are a subset of the unguarded
   Saber baseline's (Canary only *removes* infeasible candidates).
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Canary
from repro.baselines import SaberBaseline
from repro.frontend import parse_program
from repro.interp import Environment, Interpreter
from repro.ir import verify_module
from repro.lowering import lower_program

from fuzz_gen import random_program

SEEDS = list(range(24))


@pytest.fixture(scope="module")
def analyses():
    cache = {}

    def get(seed: int):
        if seed not in cache:
            source = random_program(seed)
            module = lower_program(parse_program(source, f"fuzz{seed}.mcc"))
            report = Canary(
                AnalysisConfig(
                    checkers=("use-after-free", "double-free", "null-deref"),
                    inter_thread_only=False,
                )
            ).analyze_module(module)
            cache[seed] = (source, module, report)
        return cache[seed]

    return get


@pytest.mark.parametrize("seed", SEEDS)
def test_pipeline_robust(analyses, seed):
    _source, module, report = analyses(seed)
    assert verify_module(module).ok
    assert report.num_reports >= 0  # completed without crashing


@pytest.mark.parametrize("seed", SEEDS)
def test_dynamic_soundness(analyses, seed):
    """Whatever the interpreter observes, the static analysis reports."""
    _source, module, report = analyses(seed)
    static_kinds = {b.kind for b in report.bugs}
    env_variants = [
        Environment(),
        Environment(externs={"cfg0": 1, "cfg1": 0}, default_bool=True),
        Environment(externs={"cfg0": 3, "cfg1": 2}),
    ]
    schedule_variants = [
        {"eager_children": True},
        {"prefer_children": True},
        {},
    ]
    for env in env_variants:
        for strategy in schedule_variants:
            interp = Interpreter(module, env)
            result = interp.run(max_steps=20_000, **strategy)
            for violation in result.violations:
                if violation.kind == "info-leak":
                    continue  # checker not enabled in this run
                assert violation.kind in static_kinds, (
                    f"seed {seed}: dynamic {violation!r} missed statically\n"
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_subset_of_exhaustive_baseline(analyses, seed):
    """Canary's UAF pairs ⊆ Saber's (precision only removes reports)."""
    _source, module, report = analyses(seed)
    saber = SaberBaseline().detect_uaf(module)
    saber_pairs = {(r.source.label, r.sink.label) for r in saber.reports}
    for bug in report.bugs:
        if bug.kind != "use-after-free":
            continue
        assert (bug.source.label, bug.sink.label) in saber_pairs, (
            f"seed {seed}: Canary reported a pair the exhaustive baseline "
            f"missed: ℓ{bug.source.label} -> ℓ{bug.sink.label}"
        )
