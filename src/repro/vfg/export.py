"""VFG export: Graphviz DOT and JSON.

The Fig. 2(b) rendering of the paper — object nodes, value occurrences,
solid data-dependence edges, dashed interference edges, guards as edge
labels — generated from a real :class:`ValueFlowGraph`.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .graph import DefNode, NullNode, ObjNode, StoreNode, ValueFlowGraph

__all__ = ["to_dot", "to_json"]


def _node_id(node, ids: Dict) -> str:
    nid = ids.get(node)
    if nid is None:
        nid = f"n{len(ids)}"
        ids[node] = nid
    return nid


def _node_attrs(node) -> str:
    if isinstance(node, ObjNode):
        return f'label="{node.obj!r}", shape=box, style=filled, fillcolor="#f2e8cf"'
    if isinstance(node, StoreNode):
        return f'label="store@ℓ{node.inst.label}", shape=oval'
    if isinstance(node, NullNode):
        return f'label="null@ℓ{node.inst.label}", shape=diamond'
    if isinstance(node, DefNode):
        return f'label="{node.var!r}", shape=ellipse'
    return 'label="?"'


def to_dot(vfg: ValueFlowGraph, max_guard_len: int = 40) -> str:
    """Render the graph in Graphviz DOT (interference edges dashed)."""
    ids: Dict = {}
    lines = [
        "digraph vfg {",
        "  rankdir=LR;",
        '  node [fontname="monospace"];',
    ]
    for node in vfg.nodes():
        lines.append(f"  {_node_id(node, ids)} [{_node_attrs(node)}];")
    for edge in vfg.edges():
        attrs = []
        guard = edge.guard.pretty()
        if guard != "true":
            if len(guard) > max_guard_len:
                guard = guard[: max_guard_len - 1] + "…"
            attrs.append(f'label="{guard}"')
        if edge.interthread:
            attrs.append("style=dashed, color=red")
        elif edge.kind in ("call", "ret", "forkarg"):
            attrs.append("color=blue")
        elif edge.kind == "alloc":
            attrs.append("color=gray")
        src = _node_id(edge.src, ids)
        dst = _node_id(edge.dst, ids)
        lines.append(f"  {src} -> {dst} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines)


def to_json(vfg: ValueFlowGraph) -> str:
    """Structured JSON dump (nodes, edges, guards, kinds)."""
    ids: Dict = {}
    nodes = []
    for node in vfg.nodes():
        entry = {"id": _node_id(node, ids), "repr": repr(node)}
        if isinstance(node, ObjNode):
            entry["type"] = "object"
            entry["object_kind"] = node.obj.kind
        elif isinstance(node, StoreNode):
            entry["type"] = "store"
            entry["label"] = node.inst.label
        elif isinstance(node, NullNode):
            entry["type"] = "null"
            entry["label"] = node.inst.label
        else:
            entry["type"] = "def"
        nodes.append(entry)
    edges = []
    for edge in vfg.edges():
        edges.append(
            {
                "src": _node_id(edge.src, ids),
                "dst": _node_id(edge.dst, ids),
                "kind": edge.kind,
                "guard": edge.guard.pretty(),
                "interthread": edge.interthread,
                "callsite": edge.callsite,
            }
        )
    return json.dumps({"nodes": nodes, "edges": edges}, indent=2)
