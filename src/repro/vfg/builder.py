"""End-to-end VFG construction: the first two phases of Fig. 1.

``build_vfg`` wires together Steensgaard's analysis, the thread call
graph, MHP, Alg. 1 (data dependence) and Alg. 2 (interference
dependence) and returns a :class:`VFGBundle` with everything the
bug-checking stage needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import StoreInst
from ..ir.module import IRModule
from ..ir.values import MemObject
from ..pointer.steensgaard import SteensgaardResult, steensgaard
from ..smt.terms import BoolTerm
from ..threads.callgraph import ThreadCallGraph, build_thread_call_graph
from ..threads.mhp import MhpAnalysis
from .dataflow import DataDependenceAnalysis
from .graph import ValueFlowGraph
from .interference import InterferenceAnalysis

__all__ = ["VFGBundle", "build_vfg"]


@dataclass
class VFGBundle:
    """The interference-aware guarded VFG plus the analyses behind it."""

    module: IRModule
    vfg: ValueFlowGraph
    tcg: ThreadCallGraph
    mhp: MhpAnalysis
    dataflow: DataDependenceAnalysis
    interference: InterferenceAnalysis
    pointsto: SteensgaardResult
    build_seconds: float = 0.0
    #: per-function summary layer (:class:`repro.vfg.summaries.SummaryIndex`)
    #: when the run computed one; detection walks its demand-loading view
    summary_index: Optional[object] = None

    _def_index: Optional[Dict] = None

    @property
    def object_stores(self) -> Dict[MemObject, List[Tuple[StoreInst, BoolTerm]]]:
        return self.interference.object_stores

    def graph_view(self):
        """The forward-adjacency view detection should walk: the
        summary view when present (identical lists, demand-loaded per
        function span), else the VFG itself."""
        if self.summary_index is not None:
            return self.summary_index.view
        return self.vfg

    @property
    def def_index(self) -> Dict:
        """Variable -> defining instruction (lazily built)."""
        if self._def_index is None:
            index = {}
            for inst in self.module.all_instructions():
                var = inst.defined_var()
                if var is not None:
                    index[var] = inst
            self._def_index = index
        return self._def_index

    def summary(self) -> Dict[str, int]:
        return {
            "instructions": self.module.size(),
            "threads": len(self.tcg.threads),
            "vfg_nodes": self.vfg.num_nodes,
            "vfg_edges": self.vfg.num_edges,
            "interference_edges": self.interference.interference_edge_count,
            "escaped_objects": len(self.interference.escaped),
            "fixpoint_rounds": self.interference.rounds,
        }


def build_vfg(
    module: IRModule,
    max_content_entries: int = 16,
    max_interference_rounds: int = 20,
    prune_guards: bool = True,
    use_mhp: bool = True,
) -> VFGBundle:
    """Build the interference-aware VFG for a lowered module."""
    start = time.perf_counter()
    pointsto = steensgaard(module)
    tcg = build_thread_call_graph(module, pointsto)
    mhp = MhpAnalysis(tcg)
    dataflow = DataDependenceAnalysis(
        module, tcg, max_content_entries=max_content_entries, prune_guards=prune_guards
    )
    dataflow.run()
    interference = InterferenceAnalysis(
        dataflow,
        mhp,
        max_rounds=max_interference_rounds,
        use_mhp=use_mhp,
        prune_guards=prune_guards,
    )
    interference.run()
    return VFGBundle(
        module=module,
        vfg=dataflow.vfg,
        tcg=tcg,
        mhp=mhp,
        dataflow=dataflow,
        interference=interference,
        pointsto=pointsto,
        build_seconds=time.perf_counter() - start,
    )
