"""The guarded value-flow graph (VFG).

Nodes (paper §3.1, Fig. 2b):

* :class:`DefNode` — ``v@ℓ``: the (unique, SSA) definition of a top-level
  variable;
* :class:`StoreNode` — the stored-value occurrence at a store statement
  (``b@ℓ13`` in Fig. 2);
* :class:`ObjNode` — a memory object ``o`` (used for escape/pointed-to-by
  reachability, like the ``o1`` node of Fig. 2b);
* :class:`NullNode` — an occurrence of the ``null`` constant (source node
  for the NULL-deref checker).

Every edge carries a guard (the condition under which the value flows,
paper Fig. 6 / Eq. 1) and a kind:

* ``direct``  — SSA copy/phi flows,
* ``alloc``   — object to the pointer receiving its address,
* ``store``   — stored value into its store statement,
* ``load``    — store statement to a load's destination (an *indirect*
  flow; ``interthread=True`` marks interference dependence),
* ``call``/``ret``/``forkarg`` — parameter, return and fork-argument
  binding (labelled with the call site for context-sensitive matching).

Edges whose guard is syntactically FALSE are never added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..ir.instructions import Instruction, LoadInst, StoreInst
from ..ir.values import MemObject, Variable
from ..smt.terms import FALSE, BoolTerm

__all__ = [
    "VFGNode",
    "DefNode",
    "StoreNode",
    "ObjNode",
    "NullNode",
    "VFGEdge",
    "ValueFlowGraph",
]


@dataclass(frozen=True)
class DefNode:
    """``v@ℓ`` — the SSA definition of ``var`` (``inst`` may be None for
    parameters and synthetic initial values)."""

    var: Variable

    def __repr__(self) -> str:
        return f"def({self.var!r})"


@dataclass(frozen=True)
class StoreNode:
    """The stored value entering memory at a store instruction."""

    inst: StoreInst

    def __repr__(self) -> str:
        return f"store@ℓ{self.inst.label}"


@dataclass(frozen=True)
class ObjNode:
    """A memory object; origin for pointed-to-by reachability."""

    obj: MemObject

    def __repr__(self) -> str:
        return f"obj({self.obj!r})"


@dataclass(frozen=True)
class NullNode:
    """A ``null`` constant occurrence at an instruction."""

    inst: Instruction

    def __repr__(self) -> str:
        return f"null@ℓ{self.inst.label}"


VFGNode = object  # union of the four node classes


@dataclass(frozen=True)
class VFGEdge:
    src: VFGNode
    dst: VFGNode
    guard: BoolTerm
    kind: str  # 'direct' | 'alloc' | 'store' | 'load' | 'call' | 'ret' | 'forkarg'
    callsite: Optional[int] = None  # label, for call/ret/forkarg
    obj: Optional[MemObject] = None  # for 'load' edges: the memory object
    store: Optional[StoreInst] = None  # for 'load' edges
    load: Optional[LoadInst] = None  # for 'load' edges
    interthread: bool = False  # True = interference dependence

    def __repr__(self) -> str:
        arrow = "⇢" if self.interthread else "→"
        return f"{self.src!r} {arrow} {self.dst!r} [{self.kind}]"


class ValueFlowGraph:
    """Mutable guarded VFG with forward/backward adjacency."""

    def __init__(self) -> None:
        self._out: Dict[VFGNode, List[VFGEdge]] = {}
        self._in: Dict[VFGNode, List[VFGEdge]] = {}
        self._edge_keys: set = set()
        #: every edge in insertion order — an edge's index here is its
        #: global *ordinal*.  Per-node ``_out``/``_in`` lists are ordinal-
        #: sorted by construction, which is what lets the summary layer
        #: rebuild any adjacency list exactly from per-function spans.
        self._edges: List[VFGEdge] = []
        self.num_edges = 0
        #: bumped on every mutation — derived structures (e.g. the
        #: sink-reachability indexes) record it to detect staleness
        self.version = 0

    # ----- construction ---------------------------------------------------

    def add_edge(
        self,
        src: VFGNode,
        dst: VFGNode,
        guard: BoolTerm,
        kind: str,
        callsite: Optional[int] = None,
        obj: Optional[MemObject] = None,
        store: Optional[StoreInst] = None,
        load: Optional[LoadInst] = None,
        interthread: bool = False,
    ) -> Optional[VFGEdge]:
        """Add an edge unless its guard is FALSE or it is a duplicate.

        Returns the edge, or None when suppressed.
        """
        if guard is FALSE or src == dst:
            return None
        key = (src, dst, kind, callsite, obj, id(store), id(load), interthread)
        if key in self._edge_keys:
            return None
        self._edge_keys.add(key)
        edge = VFGEdge(
            src=src,
            dst=dst,
            guard=guard,
            kind=kind,
            callsite=callsite,
            obj=obj,
            store=store,
            load=load,
            interthread=interthread,
        )
        self._out.setdefault(src, []).append(edge)
        self._in.setdefault(dst, []).append(edge)
        self._out.setdefault(dst, [])
        self._in.setdefault(src, [])
        self._edges.append(edge)
        self.num_edges += 1
        self.version += 1
        return edge

    # ----- queries -----------------------------------------------------------

    def out_edges(self, node: VFGNode) -> List[VFGEdge]:
        return self._out.get(node, [])

    def in_edges(self, node: VFGNode) -> List[VFGEdge]:
        return self._in.get(node, [])

    def nodes(self) -> Iterator[VFGNode]:
        return iter(self._out.keys())

    def edge_slice(self, start: int, end: int) -> List[VFGEdge]:
        """The edges with ordinals ``start <= i < end`` (insertion order);
        the summary layer's view of one function's owned edge span."""
        return self._edges[start:end]

    def edges(self) -> Iterator[VFGEdge]:
        for edges in self._out.values():
            yield from edges

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    def interference_edges(self) -> List[VFGEdge]:
        return [e for e in self.edges() if e.interthread]

    def pretty(self, max_edges: int = 200) -> str:
        lines = [f"VFG: {self.num_nodes} nodes, {self.num_edges} edges"]
        for i, edge in enumerate(self.edges()):
            if i >= max_edges:
                lines.append(f"... ({self.num_edges - max_edges} more)")
                break
            guard = edge.guard.pretty()
            note = f"  [{guard}]" if guard != "true" else ""
            lines.append(f"  {edge!r}{note}")
        return "\n".join(lines)
