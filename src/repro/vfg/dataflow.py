"""Alg. 1 — thread-modular data-dependence analysis.

Bottom-up over the thread call graph (callees before callers), each
function gets one flow-sensitive pass over its guarded straight-line
body, computing:

* guarded points-to facts for top-level variables (the global ``PGtop``
  of the paper — SSA makes one global map sound);
* guarded memory *content* per address-taken object (the paper's
  ``IN``/``OUT`` sets), with strong updates by guard weakening: a store
  under condition φ rewrites content ``(v, g)`` to ``(v, g ∧ ¬φ)``, which
  is the path-sensitive generalization of the singleton strong update in
  Alg. 1 lines 15-18;
* intra-thread value-flow edges (paper Fig. 6), including indirect
  store→load flows through resolved objects;
* a procedural transfer function (summary) exposing points-to side
  effects through *formal pointee* objects — the paper's "auxiliary
  variables for the objects passed into the function by references"
  (Alg. 1 line 3).

Fork sites transfer only the direct argument edge; the interference
analysis (Alg. 2, :mod:`repro.vfg.interference`) resolves everything
that flows through them (Alg. 1 lines 23-24).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..ir.instructions import (
    AddrOfInst,
    AllocInst,
    BinOpInst,
    CallInst,
    CmpInst,
    CopyInst,
    ForkInst,
    FreeInst,
    Instruction,
    LoadInst,
    PhiInst,
    SinkInst,
    StoreInst,
)
from ..ir.module import IRFunction, IRModule
from ..ir.values import (
    NULL,
    FunctionRef,
    IntConstant,
    MemObject,
    NullConstant,
    SymbolicConstant,
    Value,
    Variable,
    VariableNamer,
)
from ..smt.terms import FALSE, TRUE, BoolTerm, and_, not_, or_
from ..smt.simplify import quick_unsat
from ..threads.callgraph import ThreadCallGraph
from .graph import DefNode, NullNode, ObjNode, StoreNode, ValueFlowGraph

__all__ = [
    "DataDependenceAnalysis",
    "DataflowJournal",
    "FunctionJournal",
    "FunctionSummary",
    "PtsSet",
    "ContentEntry",
]

#: guard-indexed points-to set: object -> condition of pointing to it
PtsSet = Dict[MemObject, BoolTerm]


@dataclass
class ContentEntry:
    """One candidate value held by a memory object: the value, the
    condition under which it is the current content, and the store that
    wrote it (None for synthetic initial content)."""

    value: Value
    guard: BoolTerm
    store: Optional[StoreInst]


@dataclass
class FunctionSummary:
    """The procedural transfer function of Alg. 1 lines 21-22."""

    func: IRFunction
    #: formal index -> synthetic pointee object for that parameter
    formal_pointees: Dict[int, MemObject] = field(default_factory=dict)
    #: object -> synthetic variable standing for its content at entry
    initial_values: Dict[MemObject, Variable] = field(default_factory=dict)
    #: memory state at function exit (side effects, incl. unchanged parts)
    exit_content: Dict[MemObject, List[ContentEntry]] = field(default_factory=dict)

    def initial_value_vars(self) -> Dict[Variable, MemObject]:
        return {v: o for o, v in self.initial_values.items()}


@dataclass
class FunctionJournal:
    """The recorded effects of one function's Alg. 1 pass.

    Alg. 1 mutates global state (the VFG, ``pts``, the load/store and
    escape lists) as it walks a function body.  Recording every mutation
    as a replayable op turns the per-function pass into a memoizable
    artifact: when the function object, its per-site callee resolutions
    and its callees' summaries are all unchanged since the recording run,
    replaying the ops into a fresh analysis reproduces the pass exactly
    (same nodes, same guards, same identities) at a fraction of the cost.
    """

    name: str
    func: IRFunction
    summary: Optional[FunctionSummary] = None
    #: call/fork label -> resolved callee set at recording time
    site_resolutions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: callee/fork-target function objects consumed during the pass
    dep_funcs: Dict[str, Optional[IRFunction]] = field(default_factory=dict)
    #: callee summary objects consumed during the pass
    dep_summaries: Dict[str, Optional[FunctionSummary]] = field(default_factory=dict)
    ops: List[Tuple] = field(default_factory=list)


@dataclass
class DataflowJournal:
    """Per-module journal set: the reverse-topological order of the
    recording run plus one :class:`FunctionJournal` per function."""

    order: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionJournal] = field(default_factory=dict)


class DataDependenceAnalysis:
    """Runs Alg. 1 over a module, populating a :class:`ValueFlowGraph`."""

    def __init__(
        self,
        module: IRModule,
        tcg: ThreadCallGraph,
        max_content_entries: int = 16,
        prune_guards: bool = True,
        tracer=None,
    ) -> None:
        from ..obs.tracer import NULL_TRACER

        self.module = module
        self.tcg = tcg
        #: optional repro.obs Tracer: each live function analysis becomes
        #: a ``dataflow:<fn>`` span (cached replays are not spanned)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.vfg = ValueFlowGraph()
        self.max_content_entries = max_content_entries
        self.prune_guards = prune_guards
        #: global guarded points-to map for top-level (SSA) variables
        self.pts: Dict[Variable, PtsSet] = {}
        self.summaries: Dict[str, FunctionSummary] = {}
        #: every store, with the objects it may write and alias guards
        self.store_targets: Dict[MemObject, List[Tuple[StoreInst, BoolTerm]]] = {}
        #: all loads / stores for the interference stage
        self.all_loads: List[LoadInst] = []
        self.all_stores: List[StoreInst] = []
        #: objects passed at fork sites (seed of the escape analysis)
        self.fork_escaped: List[MemObject] = []
        self.statistics = {"strong_updates": 0, "weak_updates": 0, "edges_pruned": 0}
        #: journal currently being recorded (None while replaying / plain runs)
        self._journal: Optional[FunctionJournal] = None
        #: (function name, 'run'|'cached', seconds) per Alg. 1 pass
        self.function_trace: List[Tuple[str, str, float]] = []
        #: per-function ownership extents, in pass order: name ->
        #: (edge_start, edge_end, store_start, store_end, load_start,
        #: load_end, fork_escape_start, fork_escape_end).  Alg. 1 mutates
        #: the VFG, the site lists and the fork-escape seeds only inside
        #: per-function passes, so each function owns one contiguous span
        #: of edge ordinals and site positions — the basis of the
        #: per-function value-flow summaries (:mod:`repro.vfg.summaries`).
        self.function_extents: Dict[str, Tuple[int, ...]] = {}

    def __getstate__(self):
        """Detection-sharding workers receive the finished analysis by
        pickle; the tracer (holds a lock) and any in-progress journal are
        parent-side concerns and do not cross the process boundary."""
        state = dict(self.__dict__)
        state["tracer"] = None
        state["_journal"] = None
        return state

    def __setstate__(self, state) -> None:
        from ..obs.tracer import NULL_TRACER

        self.__dict__.update(state)
        self.tracer = NULL_TRACER

    # ----- public ---------------------------------------------------------

    def run(self, journal: Optional[DataflowJournal] = None) -> ValueFlowGraph:
        """Analyze the module, optionally replaying from / recording into
        ``journal``.

        Replay is valid only for an unbroken *prefix* of the recording
        run's reverse-topological order: the first function that fails
        validation (changed object, changed call resolution, changed
        callee summary) may write global state — points-to facts of
        shared callees in particular — that later passes read, so every
        function after it is re-analyzed live and re-recorded.
        """
        order = self.tcg.reverse_topological_functions()
        prefix_clean = journal is not None
        new_order: List[str] = []
        new_functions: Dict[str, FunctionJournal] = {}
        pos = 0
        for name in order:
            func = self.module.functions.get(name)
            if func is None:
                continue
            rec: Optional[FunctionJournal] = None
            if (
                prefix_clean
                and pos < len(journal.order)
                and journal.order[pos] == name
            ):
                rec = journal.functions.get(name)
                if rec is not None and not self._replay_valid(rec, func):
                    rec = None
            t0 = time.perf_counter()
            marks = (
                self.vfg.num_edges,
                len(self.all_stores),
                len(self.all_loads),
                len(self.fork_escaped),
            )
            if rec is not None:
                self._replay(rec)
                new_functions[name] = rec
                self.function_trace.append(
                    (name, "cached", time.perf_counter() - t0)
                )
            else:
                prefix_clean = False
                if journal is not None:
                    self._journal = FunctionJournal(name=name, func=func)
                with self.tracer.span(f"dataflow:{name}"):
                    self._analyze_function(func)
                if self._journal is not None:
                    self._journal.summary = self.summaries[name]
                    new_functions[name] = self._journal
                    self._journal = None
                self.function_trace.append(
                    (name, "run", time.perf_counter() - t0)
                )
            self.function_extents[name] = (
                marks[0],
                self.vfg.num_edges,
                marks[1],
                len(self.all_stores),
                marks[2],
                len(self.all_loads),
                marks[3],
                len(self.fork_escaped),
            )
            new_order.append(name)
            pos += 1
        if journal is not None:
            journal.order = new_order
            journal.functions = new_functions
        return self.vfg

    # ----- journal record / replay ----------------------------------------

    def _replay_valid(self, rec: FunctionJournal, func: IRFunction) -> bool:
        if rec.func is not func or rec.summary is None:
            return False
        for inst in func.body:
            if isinstance(inst, (CallInst, ForkInst)):
                if self.tcg.callees_at(inst) != rec.site_resolutions.get(
                    inst.label
                ):
                    return False
        for name, f in rec.dep_funcs.items():
            if self.module.functions.get(name) is not f:
                return False
        for name, s in rec.dep_summaries.items():
            if self.summaries.get(name) is not s:
                return False
        return True

    def _replay(self, rec: FunctionJournal) -> None:
        self.summaries[rec.name] = rec.summary
        for op in rec.ops:
            tag = op[0]
            if tag == "edge":
                self.vfg.add_edge(
                    op[1],
                    op[2],
                    op[3],
                    op[4],
                    callsite=op[5],
                    obj=op[6],
                    store=op[7],
                    load=op[8],
                )
            elif tag == "pts":
                self._pts_add(op[1], op[2], op[3])
            elif tag == "load":
                self.all_loads.append(op[1])
            elif tag == "store":
                self.all_stores.append(op[1])
            elif tag == "starget":
                self.store_targets.setdefault(op[1], []).append((op[2], op[3]))
            elif tag == "fesc":
                self.fork_escaped.append(op[1])
            elif tag == "stat":
                self.statistics[op[1]] = self.statistics.get(op[1], 0) + op[2]

    def _add_edge(
        self,
        src,
        dst,
        guard: BoolTerm,
        kind: str,
        callsite: Optional[int] = None,
        obj: Optional[MemObject] = None,
        store: Optional[StoreInst] = None,
        load: Optional[LoadInst] = None,
    ) -> None:
        if self._journal is not None:
            self._journal.ops.append(
                ("edge", src, dst, guard, kind, callsite, obj, store, load)
            )
        self.vfg.add_edge(
            src,
            dst,
            guard,
            kind,
            callsite=callsite,
            obj=obj,
            store=store,
            load=load,
        )

    def _note_load(self, inst: LoadInst) -> None:
        if self._journal is not None:
            self._journal.ops.append(("load", inst))
        self.all_loads.append(inst)

    def _note_store(self, inst: StoreInst) -> None:
        if self._journal is not None:
            self._journal.ops.append(("store", inst))
        self.all_stores.append(inst)

    def _note_store_target(
        self, obj: MemObject, store: StoreInst, guard: BoolTerm
    ) -> None:
        if self._journal is not None:
            self._journal.ops.append(("starget", obj, store, guard))
        self.store_targets.setdefault(obj, []).append((store, guard))

    def _note_fork_escape(self, obj: MemObject) -> None:
        if self._journal is not None:
            self._journal.ops.append(("fesc", obj))
        self.fork_escaped.append(obj)

    def _bump(self, key: str, delta: int = 1) -> None:
        if self._journal is not None:
            self._journal.ops.append(("stat", key, delta))
        self.statistics[key] = self.statistics.get(key, 0) + delta

    def _resolve_callees(self, inst: Instruction) -> List[str]:
        names = self.tcg.callees_at(inst)
        if self._journal is not None:
            self._journal.site_resolutions[inst.label] = names
        return sorted(names)

    def pts_of(self, value: Value) -> PtsSet:
        if isinstance(value, Variable):
            return self.pts.get(value, {})
        return {}

    # ----- per-function analysis -------------------------------------------

    def _analyze_function(self, func: IRFunction) -> None:
        summary = FunctionSummary(func=func)
        self.summaries[func.name] = summary
        content: Dict[MemObject, List[ContentEntry]] = {}
        # Synthetic initial-value names are scoped to this function, so
        # they are identical in every process analyzing the same source
        # (journal replay reuses the recorded Variables and never mints).
        self._namer = VariableNamer(f"in::{func.name}")

        # Formal pointees: each pointer parameter may reference memory the
        # caller owns; model it with one synthetic object whose initial
        # content is a synthetic variable (bound to caller values at call
        # sites).  This is the auxiliary-variable transformation.
        for i, param in enumerate(func.params):
            pointee = MemObject(f"{func.name}.arg{i}", "formal")
            summary.formal_pointees[i] = pointee
            self._pts_add(param, pointee, TRUE)
            self._add_edge(ObjNode(pointee), DefNode(param), TRUE, "alloc")
            init = self._namer.fresh(f"arg{i}")
            summary.initial_values[pointee] = init
            content[pointee] = [ContentEntry(init, TRUE, None)]

        for inst in func.body:
            self._transfer(inst, func, summary, content)

        summary.exit_content = content

    def _initial_content(
        self,
        obj: MemObject,
        summary: FunctionSummary,
        content: Dict[MemObject, List[ContentEntry]],
    ) -> List[ContentEntry]:
        """Content list for an object first touched in this function."""
        entries = content.get(obj)
        if entries is None:
            init = self._namer.fresh(obj.name)
            summary.initial_values[obj] = init
            entries = [ContentEntry(init, TRUE, None)]
            content[obj] = entries
        return entries

    # ----- transfer functions ---------------------------------------------

    def _transfer(
        self,
        inst: Instruction,
        func: IRFunction,
        summary: FunctionSummary,
        content: Dict[MemObject, List[ContentEntry]],
    ) -> None:
        if isinstance(inst, (AllocInst, AddrOfInst)):
            self._pts_add(inst.dst, inst.obj, inst.guard)
            self._add_edge(ObjNode(inst.obj), DefNode(inst.dst), inst.guard, "alloc")
            if isinstance(inst, AllocInst):
                # Fresh heap cell: content starts empty (uninitialized),
                # so no initial synthetic value is needed.
                content.setdefault(inst.obj, [])
        elif isinstance(inst, CopyInst):
            self._flow_value(inst.src, DefNode(inst.dst), inst.guard, inst)
            self._pts_merge_from(inst.dst, inst.src, inst.guard)
        elif isinstance(inst, PhiInst):
            for value, sel in inst.incomings:
                guard = and_(inst.guard, sel)
                self._flow_value(value, DefNode(inst.dst), guard, inst)
                self._pts_merge_from(inst.dst, value, guard)
        elif isinstance(inst, (BinOpInst, CmpInst)):
            for operand in (inst.lhs, inst.rhs):
                if isinstance(operand, Variable):
                    self._add_edge(
                        DefNode(operand), DefNode(inst.dst), inst.guard, "direct"
                    )
        elif isinstance(inst, LoadInst):
            self._transfer_load(inst, summary, content)
        elif isinstance(inst, StoreInst):
            self._transfer_store(inst, summary, content)
        elif isinstance(inst, CallInst):
            self._transfer_call(inst, summary, content)
        elif isinstance(inst, ForkInst):
            self._transfer_fork(inst)
        # Free/Sink/Source/Return/Join/Lock/Unlock: no value-flow effects here.

    def _transfer_load(
        self,
        inst: LoadInst,
        summary: FunctionSummary,
        content: Dict[MemObject, List[ContentEntry]],
    ) -> None:
        self._note_load(inst)
        for obj, alias_guard in self.pts_of(inst.pointer).items():
            entries = (
                self._initial_content(obj, summary, content)
                if obj.kind in ("formal", "global")
                else content.setdefault(obj, [])
            )
            for entry in entries:
                guard = and_(inst.guard, alias_guard, entry.guard)
                if self._pruned(guard):
                    continue
                if entry.store is not None:
                    self._add_edge(
                        StoreNode(entry.store),
                        DefNode(inst.dst),
                        guard,
                        "load",
                        obj=obj,
                        store=entry.store,
                        load=inst,
                    )
                else:
                    self._flow_value(entry.value, DefNode(inst.dst), guard, inst)
                self._pts_merge_from(inst.dst, entry.value, guard)

    def _transfer_store(
        self,
        inst: StoreInst,
        summary: FunctionSummary,
        content: Dict[MemObject, List[ContentEntry]],
    ) -> None:
        self._note_store(inst)
        self._flow_value(inst.value, StoreNode(inst), inst.guard, inst)
        for obj, alias_guard in self.pts_of(inst.pointer).items():
            if obj.kind in ("formal", "global"):
                self._initial_content(obj, summary, content)
            written = and_(inst.guard, alias_guard)
            if self._pruned(written):
                continue
            self._note_store_target(obj, inst, alias_guard)
            entries = content.setdefault(obj, [])
            if len(entries) < self.max_content_entries:
                # Path-sensitive strong update: survivors keep g ∧ ¬written.
                survivors = []
                for entry in entries:
                    weakened = and_(entry.guard, not_(written))
                    if not self._pruned(weakened):
                        survivors.append(
                            ContentEntry(entry.value, weakened, entry.store)
                        )
                self._bump("strong_updates")
                entries[:] = survivors
            else:
                self._bump("weak_updates")
            entries.append(ContentEntry(inst.value, written, inst))

    def _transfer_call(
        self,
        inst: CallInst,
        summary: FunctionSummary,
        content: Dict[MemObject, List[ContentEntry]],
    ) -> None:
        for callee_name in self._resolve_callees(inst):
            callee = self.module.functions.get(callee_name)
            callee_summary = self.summaries.get(callee_name)
            if self._journal is not None:
                self._journal.dep_funcs[callee_name] = callee
                self._journal.dep_summaries[callee_name] = callee_summary
            if callee is None or callee_summary is None:
                continue  # recursion cut or unknown: no effects (soundy)
            binding = self._bind_formals(inst, callee, callee_summary)
            self._apply_initial_reads(inst, callee_summary, binding, content)
            self._apply_side_effects(inst, callee_summary, binding, content)
            self._apply_returns(inst, callee, binding)

    def _bind_formals(
        self, inst: CallInst, callee: IRFunction, callee_summary: FunctionSummary
    ) -> Dict[MemObject, PtsSet]:
        """Bind formal pointees to the actuals' objects; add call edges."""
        binding: Dict[MemObject, PtsSet] = {}
        for i, (formal, actual) in enumerate(zip(callee.params, inst.args)):
            self._flow_value(actual, DefNode(formal), inst.guard, inst, kind="call", callsite=inst.label)
            pointee = callee_summary.formal_pointees.get(i)
            if pointee is not None:
                binding[pointee] = dict(self.pts_of(actual))
        return binding

    def _apply_initial_reads(
        self,
        inst: CallInst,
        callee_summary: FunctionSummary,
        binding: Dict[MemObject, PtsSet],
        content: Dict[MemObject, List[ContentEntry]],
    ) -> None:
        """Feed caller memory into the callee's synthetic initial values."""
        for obj, init_var in callee_summary.initial_values.items():
            targets = binding.get(obj, {obj: TRUE} if obj.kind != "formal" else {})
            for caller_obj, alias_guard in targets.items():
                for entry in content.get(caller_obj, []):
                    guard = and_(inst.guard, alias_guard, entry.guard)
                    if self._pruned(guard):
                        continue
                    src = (
                        StoreNode(entry.store)
                        if entry.store is not None
                        else self._value_node(entry.value, inst)
                    )
                    if src is not None:
                        self._add_edge(
                            src,
                            DefNode(init_var),
                            guard,
                            "call",
                            callsite=inst.label,
                        )
                    self._pts_merge_from(init_var, entry.value, guard)

    def _apply_side_effects(
        self,
        inst: CallInst,
        callee_summary: FunctionSummary,
        binding: Dict[MemObject, PtsSet],
        content: Dict[MemObject, List[ContentEntry]],
    ) -> None:
        """Merge the callee's exit memory into the caller's state."""
        init_vars = callee_summary.initial_value_vars()
        for obj, exit_entries in callee_summary.exit_content.items():
            if not exit_entries:
                continue
            changed = [e for e in exit_entries if not (
                isinstance(e.value, Variable) and e.value in init_vars
            )]
            if not changed:
                continue  # callee only read: caller state unchanged
            targets = binding.get(obj, {obj: TRUE} if obj.kind != "formal" else {})
            for caller_obj, alias_guard in targets.items():
                entries = content.setdefault(caller_obj, [])
                for e in changed:
                    guard = and_(inst.guard, alias_guard, e.guard)
                    if self._pruned(guard):
                        continue
                    entries.append(ContentEntry(e.value, guard, e.store))
                    if e.store is not None:
                        self._note_store_target(caller_obj, e.store, guard)
                    self._pts_translate_into(caller_obj, e.value, guard, binding)
                del entries[: max(0, len(entries) - self.max_content_entries)]

    def _apply_returns(
        self, inst: CallInst, callee: IRFunction, binding: Dict[MemObject, PtsSet]
    ) -> None:
        if inst.dst is None:
            return
        for value, ret_guard in callee.returns:
            guard = and_(inst.guard, ret_guard)
            if self._pruned(guard):
                continue
            self._flow_value(value, DefNode(inst.dst), guard, inst, kind="ret", callsite=inst.label)
            for obj, g in self._translated_pts(value, binding).items():
                self._pts_add(inst.dst, obj, and_(guard, g))

    def _transfer_fork(self, inst: ForkInst) -> None:
        """Fork: only the direct argument edge (Alg. 1 lines 23-24); the
        escaped objects seed the interference analysis."""
        for callee_name in self._resolve_callees(inst):
            callee = self.module.functions.get(callee_name)
            if self._journal is not None:
                self._journal.dep_funcs[callee_name] = callee
            if callee is None:
                continue
            for formal, actual in zip(callee.params, inst.args):
                self._flow_value(
                    actual, DefNode(formal), inst.guard, inst, kind="forkarg", callsite=inst.label
                )
                for obj in self.pts_of(actual):
                    self._note_fork_escape(obj)

    # ----- helpers -----------------------------------------------------------

    def _value_node(self, value: Value, at: Instruction):
        if isinstance(value, Variable):
            return DefNode(value)
        if isinstance(value, NullConstant):
            return NullNode(at)
        return None

    def _flow_value(
        self,
        value: Value,
        dst_node,
        guard: BoolTerm,
        at: Instruction,
        kind: str = "direct",
        callsite: Optional[int] = None,
    ) -> None:
        src = self._value_node(value, at)
        if src is None:
            return
        if self._pruned(guard):
            return
        self._add_edge(src, dst_node, guard, kind, callsite=callsite)

    def _pts_add(self, var: Variable, obj: MemObject, guard: BoolTerm) -> None:
        if guard is FALSE:
            return
        if self._journal is not None:
            self._journal.ops.append(("pts", var, obj, guard))
        pset = self.pts.setdefault(var, {})
        existing = pset.get(obj)
        pset[obj] = or_(existing, guard) if existing is not None else guard

    def _pts_merge_from(self, dst: Variable, src: Value, guard: BoolTerm) -> None:
        for obj, g in self.pts_of(src).items():
            self._pts_add(dst, obj, and_(guard, g))

    def _translated_pts(
        self, value: Value, binding: Dict[MemObject, PtsSet]
    ) -> PtsSet:
        """The pts of a callee value with formal pointees mapped to the
        caller objects bound at this call site."""
        out: PtsSet = {}
        for obj, g in self.pts_of(value).items():
            if obj.kind == "formal" and obj in binding:
                for caller_obj, bg in binding[obj].items():
                    prev = out.get(caller_obj)
                    combined = and_(g, bg)
                    out[caller_obj] = or_(prev, combined) if prev is not None else combined
            else:
                prev = out.get(obj)
                out[obj] = or_(prev, g) if prev is not None else g
        return out

    def _pts_translate_into(
        self,
        _caller_obj: MemObject,
        value: Value,
        guard: BoolTerm,
        binding: Dict[MemObject, PtsSet],
    ) -> None:
        """After merging a callee store into caller memory, make sure the
        stored value's pts is visible in caller terms (formal-pointee
        translation) — loads in the caller use pts of the stored value."""
        if not isinstance(value, Variable):
            return
        for obj, g in self._translated_pts(value, binding).items():
            self._pts_add(value, obj, and_(guard, g))

    def _pruned(self, guard: BoolTerm) -> bool:
        if guard is FALSE:
            self._bump("edges_pruned")
            return True
        if self.prune_guards and quick_unsat(guard):
            self._bump("edges_pruned")
            return True
        return False
