"""Per-function value-flow/escape summaries — the modular layer between
Alg. 1 (guarded data dependence) and Alg. 2 (interference).

Alg. 1 builds the VFG one function at a time (reverse-topological pass
order), so every function owns one *contiguous span* of edge ordinals and
store/load site positions (recorded in
``DataDependenceAnalysis.function_extents``).  A
:class:`FunctionVFSummary` packages that span as a compact,
content-fingerprinted artifact:

* the function's edge-ordinal span (its slice of the VFG),
* its guarded store/load sites on pointer variables, indexed
  ``pointer-var -> site positions`` (the inputs to ``Pted`` membership
  tests and to the ``S(l)``/``object_stores`` construction),
* its escape seeds (objects it publishes through fork arguments),
* a content fingerprint over the encoded edges/sites (node labels +
  structural guard keys), so a single-function edit invalidates exactly
  one summary in the :class:`~repro.analysis.artifacts.ArtifactStore`.

:class:`SummaryIndex` merges the per-function site indexes and serves a
:class:`SummaryGraphView` — a demand-loading adjacency view that
materializes a function's edge span only when the interference fixpoint
or the detection DFS actually walks into it.  Exactness is structural:
per-node adjacency lists in the real VFG are ordinal-sorted by
construction, so merging per-shard ``(ordinal, edge)`` entries and
appending interference-created overlay edges (whose ordinals are larger
than every dataflow ordinal) reproduces ``vfg.out_edges`` byte for byte.

Fingerprint hashing is sharded across a ``ProcessPoolExecutor``
(``summary_workers``/``--summary-workers``), with the same
process -> thread -> serial fallback ladder as the solver backend and a
``worker:summary`` fault point for pool-death injection.
"""

from __future__ import annotations

import contextlib
import hashlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..ir.values import MemObject, Variable
from ..smt.terms import structural_key
from ..testing.faults import fault_point
from .graph import DefNode, NullNode, ObjNode, StoreNode, VFGEdge, ValueFlowGraph

__all__ = [
    "FunctionVFSummary",
    "SummaryGraphView",
    "SummaryIndex",
    "compute_summaries",
]


# ----- summary artifact -----------------------------------------------------


@dataclass
class FunctionVFSummary:
    """One function's contribution to the inter-thread analysis.

    Picklable (variables/objects/instructions pickle by value); persisted
    in the ArtifactStore *memory* layer only — SSA variable identity is
    process-local, so a summary is valid exactly as long as the journal
    that produced its span (enforced by the extent check on reuse).
    """

    name: str
    #: sha256 over the encoded edge rows + site rows (relative ordinals,
    #: node labels, structural guard keys) — content-addressed, stable
    #: across journal replays of an unchanged function
    fingerprint: str
    #: (edge_start, edge_end, store_start, store_end, load_start,
    #: load_end, fork_escape_start, fork_escape_end)
    extent: Tuple[int, ...]
    #: pointer variable -> ascending positions into ``dataflow.all_stores``
    ptr_stores: Dict[Variable, List[int]] = field(default_factory=dict)
    #: pointer variable -> ascending positions into ``dataflow.all_loads``
    ptr_loads: Dict[Variable, List[int]] = field(default_factory=dict)
    #: objects this function publishes via fork arguments (its slice of
    #: ``dataflow.fork_escaped``)
    escape_seeds: List[MemObject] = field(default_factory=list)

    @property
    def edge_span(self) -> Tuple[int, int]:
        return (self.extent[0], self.extent[1])

    @property
    def num_edges(self) -> int:
        return self.extent[1] - self.extent[0]

    @property
    def num_sites(self) -> int:
        return (self.extent[3] - self.extent[2]) + (self.extent[5] - self.extent[4])


# ----- demand-loading graph view -------------------------------------------


class SummaryGraphView:
    """Adjacency view over summary edge spans, loaded shard by shard.

    ``out_edges(node)`` materializes only the shards (function spans)
    that *own* out-edges of ``node``; the result list is identical to
    ``vfg.out_edges(node)`` — same edges, same order — because per-node
    lists are rebuilt by ordinal.  Interference edges created during the
    fixpoint are appended through :meth:`add_overlay` with monotonically
    increasing ordinals, which keeps every materialized list sorted
    without re-sorting.
    """

    def __init__(self, index: "SummaryIndex") -> None:
        self.index = index
        self._loaded: Set[str] = set()
        #: pending per-node (ordinal, edge) entries for loaded shards
        self._entries: Dict[Any, List[Tuple[int, VFGEdge]]] = {}
        #: finalized ordinal-sorted adjacency lists
        self._ready: Dict[Any, List[VFGEdge]] = {}
        self.shards_loaded = 0
        self.edges_materialized = 0
        self.demand_queries = 0

    def out_edges(self, node: Any) -> List[VFGEdge]:
        ready = self._ready.get(node)
        if ready is not None:
            return ready
        self.demand_queries += 1
        for name in self.index.out_owners.get(node, ()):
            self._load(name)
        entries = self._entries.pop(node, None)
        if entries is None:
            ready = []
        else:
            entries.sort(key=lambda pair: pair[0])
            ready = [edge for _ordinal, edge in entries]
        self._ready[node] = ready
        return ready

    def in_edges(self, node: Any) -> List[VFGEdge]:
        # Backward queries (escape seeding, explanation) go straight to
        # the real VFG; demand loading only pays off on the forward side.
        return self.index.vfg.in_edges(node)

    def add_overlay(self, edge: VFGEdge, ordinal: int) -> None:
        """Register an interference edge added to the VFG at ``ordinal``
        (strictly larger than all previously registered ordinals for its
        source node, since the VFG append is the ordinal)."""
        ready = self._ready.get(edge.src)
        if ready is not None:
            ready.append(edge)
        else:
            self._entries.setdefault(edge.src, []).append((ordinal, edge))

    def _load(self, name: str) -> None:
        if name in self._loaded:
            return
        self._loaded.add(name)
        summary = self.index.summaries[name]
        start, end = summary.edge_span
        for ordinal, edge in enumerate(self.index.vfg.edge_slice(start, end), start):
            # A node's finalized list never misses shard edges: owners
            # are computed up front, and a node is finalized only after
            # all its owner shards have loaded.
            target = self._ready.get(edge.src)
            if target is not None:
                # Owner loaded after finalization cannot happen for
                # dataflow edges (all owners load before finalization);
                # guard anyway for robustness.
                target.append(edge)
            else:
                self._entries.setdefault(edge.src, []).append((ordinal, edge))
        self.shards_loaded += 1
        self.edges_materialized += end - start

    # ----- diagnostics ------------------------------------------------------

    def assert_consistent(self) -> None:
        """Every materialized adjacency list must equal the real VFG's
        (same edge objects, same order) — the exactness invariant."""
        for node, ready in self._ready.items():
            real = self.index.vfg.out_edges(node)
            if ready != real:
                raise AssertionError(
                    f"summary view diverged at {node!r}: "
                    f"{len(ready)} vs {len(real)} edges"
                )

    def statistics(self) -> Dict[str, int]:
        return {
            "shards_loaded": self.shards_loaded,
            "shards_total": len(self.index.summaries),
            "edges_materialized": self.edges_materialized,
            "demand_queries": self.demand_queries,
        }


# ----- index ----------------------------------------------------------------


class SummaryIndex:
    """All function summaries of one run, plus the merged site indexes
    and the demand-loading graph view consumed by interference/detection."""

    def __init__(
        self,
        vfg: ValueFlowGraph,
        summaries: Dict[str, FunctionVFSummary],
    ) -> None:
        self.vfg = vfg
        self.summaries = summaries
        #: merged pointer-var -> ascending global store positions
        self.ptr_stores: Dict[Variable, List[int]] = {}
        #: merged pointer-var -> ascending global load positions
        self.ptr_loads: Dict[Variable, List[int]] = {}
        #: node -> names of the functions owning its out-edges
        self.out_owners: Dict[Any, Tuple[str, ...]] = {}
        owners: Dict[Any, List[str]] = {}
        for name, summary in summaries.items():
            for var, positions in summary.ptr_stores.items():
                self.ptr_stores.setdefault(var, []).extend(positions)
            for var, positions in summary.ptr_loads.items():
                self.ptr_loads.setdefault(var, []).extend(positions)
            start, end = summary.edge_span
            for edge in vfg.edge_slice(start, end):
                names = owners.setdefault(edge.src, [])
                if not names or names[-1] != name:
                    names.append(name)
        for node, names in owners.items():
            self.out_owners[node] = tuple(dict.fromkeys(names))
        # Summaries arrive in pass order, so merged per-var position
        # lists are ascending already; sort defensively (cheap: lists
        # are sorted, timsort is linear on them).
        for positions in self.ptr_stores.values():
            positions.sort()
        for positions in self.ptr_loads.values():
            positions.sort()
        self.view = SummaryGraphView(self)

    @property
    def escape_seeds(self) -> List[MemObject]:
        seeds: List[MemObject] = []
        for summary in self.summaries.values():
            seeds.extend(summary.escape_seeds)
        return seeds

    def store_positions(self, var: Variable) -> Sequence[int]:
        return self.ptr_stores.get(var, ())

    def load_positions(self, var: Variable) -> Sequence[int]:
        return self.ptr_loads.get(var, ())

    def statistics(self) -> Dict[str, int]:
        stats = self.view.statistics()
        stats["functions"] = len(self.summaries)
        return stats


# ----- content encoding + worker target -------------------------------------


def _encode_node(node: Any) -> Tuple:
    if isinstance(node, DefNode):
        return ("d", node.var.name)
    if isinstance(node, StoreNode):
        return ("s", node.inst.label)
    if isinstance(node, ObjNode):
        obj = node.obj
        return ("o", obj.name, obj.kind, obj.context)
    if isinstance(node, NullNode):
        return ("n", node.inst.label)
    return ("x", repr(node))


def _encode_function(dataflow, name: str):
    """The picklable fingerprint payload for one function: relative
    ordinals, label-encoded nodes, guard *terms* (picklable via their
    ``__reduce__`` re-interning) — structural guard serialization is the
    expensive part and runs in the worker."""
    extent = dataflow.function_extents[name]
    e0, e1, s0, s1, l0, l1, f0, f1 = extent
    edge_rows = []
    for rel, edge in enumerate(dataflow.vfg.edge_slice(e0, e1)):
        edge_rows.append(
            (
                rel,
                _encode_node(edge.src),
                _encode_node(edge.dst),
                edge.kind,
                edge.callsite,
                edge.guard,
                edge.interthread,
            )
        )
    site_rows = []
    for rel, store in enumerate(dataflow.all_stores[s0:s1]):
        ptr = store.pointer
        site_rows.append(
            ("st", rel, store.label, ptr.name if isinstance(ptr, Variable) else None)
        )
    for rel, load in enumerate(dataflow.all_loads[l0:l1]):
        ptr = load.pointer
        site_rows.append(
            ("ld", rel, load.label, ptr.name if isinstance(ptr, Variable) else None)
        )
    for obj in dataflow.fork_escaped[f0:f1]:
        site_rows.append(("esc", obj.name, obj.kind, obj.context))
    return (name, edge_rows, site_rows)


def _fingerprint_chunk(chunk) -> List[Tuple[str, str]]:
    """Worker target: hash each function payload to its content
    fingerprint.  Runs identically on the process pool, the thread
    fallback and the serial path."""
    fault_point("worker:summary")
    results: List[Tuple[str, str]] = []
    guard_keys: Dict[int, str] = {}
    for name, edge_rows, site_rows in chunk:
        hasher = hashlib.sha256()
        hasher.update(repr(name).encode())
        for rel, src, dst, kind, callsite, guard, interthread in edge_rows:
            key = guard_keys.get(id(guard))
            if key is None:
                key = structural_key(guard)
                guard_keys[id(guard)] = key
            hasher.update(
                repr((rel, src, dst, kind, callsite, key, interthread)).encode()
            )
        for row in site_rows:
            hasher.update(repr(row).encode())
        results.append((name, hasher.hexdigest()))
    return results


# ----- portable disk codec --------------------------------------------------


def _encode_disk_summary(summary: FunctionVFSummary, schema: str) -> dict:
    """The JSON disk entry for one summary.  Only portable content goes
    to disk: the fingerprint plus the extent *shape* (relative counts)
    used to validate a hit.  Site indexes and escape seeds are rebuilt
    from the live dataflow on load — they index process-local objects."""
    e0, e1, s0, s1, l0, l1, f0, f1 = summary.extent
    return {
        "schema": schema,
        "name": summary.name,
        "fingerprint": summary.fingerprint,
        "shape": [e1 - e0, s1 - s0, l1 - l0, f1 - f0],
    }


def _decode_disk_summary(
    entry, name: str, extent: Tuple[int, ...], dataflow, schema: str
) -> Optional[FunctionVFSummary]:
    """Reconstruct a summary from a disk entry, or ``None`` when the
    entry is stale or malformed (schema drift, shape mismatch, hand-rolled
    JSON) — every reject is just a cache miss."""
    if not isinstance(entry, dict) or entry.get("schema") != schema:
        return None
    if entry.get("name") != name:
        return None
    fingerprint = entry.get("fingerprint")
    if not isinstance(fingerprint, str) or len(fingerprint) != 64:
        return None
    e0, e1, s0, s1, l0, l1, f0, f1 = extent
    if entry.get("shape") != [e1 - e0, s1 - s0, l1 - l0, f1 - f0]:
        return None
    return FunctionVFSummary(
        name=name,
        fingerprint=fingerprint,
        extent=extent,
        ptr_stores=_site_index(dataflow.all_stores, s0, s1),
        ptr_loads=_site_index(dataflow.all_loads, l0, l1),
        escape_seeds=list(dataflow.fork_escaped[f0:f1]),
    )


# ----- sharded computation --------------------------------------------------


def _site_index(sites, start: int, end: int) -> Dict[Variable, List[int]]:
    index: Dict[Variable, List[int]] = {}
    for pos in range(start, end):
        ptr = sites[pos].pointer
        if isinstance(ptr, Variable):
            index.setdefault(ptr, []).append(pos)
    return index


def _chunks(payloads: List, n: int) -> List[List]:
    n = max(1, min(n, len(payloads)))
    size, rem = divmod(len(payloads), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        if end > start:
            out.append(payloads[start:end])
        start = end
    return out


def _run_sharded(
    payloads: List,
    workers: int,
    backend: str,
    metrics=None,
    tracer=None,
) -> Dict[str, str]:
    """Fingerprint payloads across ``workers`` shards with the
    process -> thread -> serial fallback ladder; exact on every rung."""

    def _span(name: str, **attrs):
        if tracer is not None:
            return tracer.span(name, **attrs)
        return contextlib.nullcontext()

    def _count(name: str, delta: int = 1) -> None:
        if metrics is not None:
            metrics.counter(f"summary.{name}").add(delta)

    fingerprints: Dict[str, str] = {}
    if not payloads:
        return fingerprints
    chunks = _chunks(payloads, workers)
    if workers <= 1 or len(chunks) <= 1:
        with _span("summary.shard", shard=0, functions=len(payloads)):
            for name, digest in _fingerprint_chunk(payloads):
                fingerprints[name] = digest
        return fingerprints

    def _pool_run(executor_cls) -> Dict[str, str]:
        done: Dict[str, str] = {}
        with executor_cls(max_workers=len(chunks)) as pool:
            futures = [pool.submit(_fingerprint_chunk, chunk) for chunk in chunks]
            for shard, (chunk, future) in enumerate(zip(chunks, futures)):
                with _span("summary.shard", shard=shard, functions=len(chunk)):
                    for name, digest in future.result():
                        done[name] = digest
        return done

    if backend == "process":
        try:
            fingerprints = _pool_run(ProcessPoolExecutor)
            return fingerprints
        except (OSError, RuntimeError, ImportError, EOFError):
            # BrokenProcessPool is a RuntimeError subclass: a dying
            # worker (or a sandbox with no process spawning) lands here.
            _count("pool_failures")
            backend = "thread"
    if backend == "thread":
        try:
            fingerprints = _pool_run(ThreadPoolExecutor)
            return fingerprints
        except RuntimeError:
            _count("pool_failures")
    # Serial last resort — always exact, never fails.
    _count("serial_fallbacks")
    with _span("summary.shard", shard=0, functions=len(payloads), fallback=True):
        for name, digest in _fingerprint_chunk(payloads):
            fingerprints[name] = digest
    return fingerprints


def compute_summaries(
    dataflow,
    *,
    store=None,
    lineage_key: str = "",
    config_key: str = "",
    workers: int = 1,
    backend: str = "process",
    metrics=None,
    tracer=None,
) -> SummaryIndex:
    """Build (or reuse) the per-function summaries for one Alg. 1 run.

    Memory reuse rule: a function whose dataflow pass was a journal
    *replay* (``function_trace`` status ``cached``) produced
    byte-identical edges and sites, so its persisted summary is valid iff
    its extent matches — a single-function edit therefore recomputes
    exactly the summaries of re-run functions.

    Disk reuse (when the store routes the ``vfs`` namespace to a
    directory and ``config_key`` is given): functions whose portable
    identity key (:func:`repro.analysis.fingerprint.summary_identity_keys`)
    matches a schema-valid disk entry skip the expensive
    encode+fingerprint step entirely — the fingerprint comes from disk,
    the site indexes and escape seeds rebuild cheaply from the live
    dataflow.  Deterministic SSA naming makes those fingerprints valid in
    any process, which is what lets summaries survive restarts.
    """

    def _count(name: str, delta: int = 1) -> None:
        if metrics is not None:
            metrics.counter(f"summary.{name}").add(delta)

    identity: Dict[str, str] = {}
    schema = ""
    if store is not None and config_key and getattr(store, "has_disk", None):
        if store.has_disk("vfs"):
            from ..analysis.fingerprint import SUMMARY_SCHEMA, summary_identity_keys

            schema = SUMMARY_SCHEMA
            identity = summary_identity_keys(dataflow, config_key)

    statuses = {name: status for name, status, _seconds in dataflow.function_trace}
    summaries: Dict[str, FunctionVFSummary] = {}
    pending: List[str] = []
    for name, extent in dataflow.function_extents.items():
        reused: Optional[FunctionVFSummary] = None
        if store is not None and statuses.get(name) == "cached":
            entry = store.get("summary", (lineage_key, name))
            if isinstance(entry, FunctionVFSummary) and entry.extent == extent:
                reused = entry
        if reused is None and name in identity:
            decoded = _decode_disk_summary(
                store.get_disk("vfs", identity[name]), name, extent, dataflow, schema
            )
            if decoded is not None:
                reused = decoded
                store.put("summary", (lineage_key, name), decoded)
                _count("disk_hits")
        if reused is not None:
            summaries[name] = reused
            _count("cache_hits")
        else:
            pending.append(name)
            summaries[name] = None  # placeholder keeps pass order
    payloads = [_encode_function(dataflow, name) for name in pending]
    fingerprints = _run_sharded(payloads, workers, backend, metrics, tracer)
    for name in pending:
        extent = dataflow.function_extents[name]
        summary = FunctionVFSummary(
            name=name,
            fingerprint=fingerprints[name],
            extent=extent,
            ptr_stores=_site_index(dataflow.all_stores, extent[2], extent[3]),
            ptr_loads=_site_index(dataflow.all_loads, extent[4], extent[5]),
            escape_seeds=list(dataflow.fork_escaped[extent[6] : extent[7]]),
        )
        summaries[name] = summary
        if store is not None:
            store.put("summary", (lineage_key, name), summary)
        if name in identity:
            store.put_disk("vfs", identity[name], _encode_disk_summary(summary, schema))
            _count("disk_stores")
        _count("computed")
    _count("functions", len(summaries))
    if metrics is not None:
        metrics.gauge("summary.workers").set(workers)
    return SummaryIndex(dataflow.vfg, summaries)
