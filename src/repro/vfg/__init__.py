"""Guarded value-flow graph construction (paper §4, Fig. 1 left half)."""

from .builder import VFGBundle, build_vfg
from .dataflow import ContentEntry, DataDependenceAnalysis, FunctionSummary
from .export import to_dot, to_json
from .graph import DefNode, NullNode, ObjNode, StoreNode, ValueFlowGraph, VFGEdge
from .interference import InterferenceAnalysis

__all__ = [
    "VFGBundle",
    "build_vfg",
    "ContentEntry",
    "DataDependenceAnalysis",
    "FunctionSummary",
    "DefNode",
    "NullNode",
    "ObjNode",
    "StoreNode",
    "ValueFlowGraph",
    "VFGEdge",
    "InterferenceAnalysis",
    "to_dot",
    "to_json",
]
