"""Alg. 2 — interference-dependence analysis.

Starting from the intra-thread VFG of Alg. 1, this stage:

1. runs the *escape analysis* (Alg. 2 lines 12-23): the escaped set is
   seeded with objects passed at fork sites (plus globals, which every
   thread can reach) and closed under "an object stored into an escaped
   object escapes";
2. computes each escaped object's *pointed-to-by* set ``Pted(o)`` — the
   variables reachable from the object's node in the VFG — together with
   the aggregated guards of the traversed edges (line 21);
3. pairs stores and loads whose pointers share an escaped object: pairs
   in different threads that may happen in parallel become *interference
   edges* (``Φ_alias`` guard, Eq. 1); ordered same-thread pairs missed by
   the intra-procedural pass become additional data-dependence edges
   (the line-9 update);
4. iterates — new edges extend reachability, which may enlarge both the
   escaped set and the Pted sets (the cyclic dependence the paper
   describes) — until no more edges are introduced.

The load-store order part of the guard (``Φ_ls``, Eq. 2) is generated
lazily at the bug-checking stage (:mod:`repro.detection.realizability`)
where the set ``S(l)`` is final; the edge records the (store, load,
object) triple it needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir.instructions import ForkInst, LoadInst, StoreInst
from ..ir.values import MemObject, Value, Variable
from ..smt.terms import FALSE, TRUE, BoolTerm, and_, or_
from ..smt.simplify import quick_unsat
from ..threads.mhp import MhpAnalysis
from .dataflow import DataDependenceAnalysis
from .graph import DefNode, ObjNode, StoreNode, ValueFlowGraph, VFGNode

__all__ = ["InterferenceAnalysis"]

#: widening threshold: after this many guard refinements of one node the
#: aggregated guard is widened to TRUE (sound for edge discovery)
_GUARD_UPDATE_CAP = 4


class InterferenceAnalysis:
    """Runs Alg. 2, mutating the VFG produced by Alg. 1 in place."""

    def __init__(
        self,
        dataflow: DataDependenceAnalysis,
        mhp: MhpAnalysis,
        max_rounds: int = 20,
        use_mhp: bool = True,
        prune_guards: bool = True,
        summary_index=None,
        metrics=None,
    ) -> None:
        self.use_mhp = use_mhp
        self.prune_guards = prune_guards
        self.dataflow = dataflow
        self.module = dataflow.module
        self.tcg = dataflow.tcg
        self.vfg: ValueFlowGraph = dataflow.vfg
        self.mhp = mhp
        self.max_rounds = max_rounds
        #: per-function summary layer (:mod:`repro.vfg.summaries`); when
        #: present the fixpoint walks the demand-loading view and looks up
        #: store/load candidates through the merged site indexes instead
        #: of scanning every site for every object — same edges, same
        #: order, fewer touched shards
        self.summary_index = summary_index
        self.metrics = metrics
        self._graph = summary_index.view if summary_index is not None else dataflow.vfg
        self.escaped: Set[MemObject] = set()
        #: escaped object -> {node: aggregated guard}
        self.pted: Dict[MemObject, Dict[VFGNode, BoolTerm]] = {}
        #: escaped object -> [(store, alias guard)] — the S(l) index for Φ_ls
        self.object_stores: Dict[MemObject, List[Tuple[StoreInst, BoolTerm]]] = {}
        self.interference_edge_count = 0
        self.rounds = 0
        #: guard-widening events (aggregated guard forced to TRUE at
        #: the _GUARD_UPDATE_CAP refinement)
        self.widenings = 0
        #: all line-9/interference edges added by this analysis
        self.edges_added = 0
        self._points_back_cache: Dict[Variable, Set[MemObject]] = {}

    def __getstate__(self):
        """The metrics registry (holds a lock) stays parent-side when the
        finished analysis ships to a detection-sharding worker."""
        state = dict(self.__dict__)
        state["metrics"] = None
        return state

    # ----- public -----------------------------------------------------------

    def run(self) -> ValueFlowGraph:
        self._seed_escaped()
        for _ in range(self.max_rounds):
            self.rounds += 1
            self._compute_pted()
            self._close_escaped()
            self._compute_pted()  # newly escaped objects need Pted too
            added = self._add_interference_edges()
            if not added:
                break
            self._points_back_cache.clear()
        self._index_object_stores()
        if self.metrics is not None:
            self.metrics.counter("interference.rounds").add(self.rounds)
            self.metrics.counter("interference.widenings").add(self.widenings)
            self.metrics.counter("interference.edges_added").add(self.edges_added)
            self.metrics.counter("interference.interference_edges").add(
                self.interference_edge_count
            )
            self.metrics.gauge("interference.escaped_objects").set(len(self.escaped))
        return self.vfg

    # ----- escape analysis (lines 12-23) -------------------------------------

    def _seed_escaped(self) -> None:
        self.escaped.update(self.module.globals.values())
        self.escaped.update(self.dataflow.fork_escaped)
        # Fork arguments whose pts was unresolved at Alg. 1 time: recover
        # the objects by backward reachability from the argument value.
        for func in self.module.functions.values():
            for inst in func.body:
                if isinstance(inst, ForkInst):
                    for arg in inst.args:
                        if isinstance(arg, Variable):
                            self.escaped.update(self._objects_pointed_by(arg))

    def _close_escaped(self) -> None:
        """Close under: storing a pointer to o' into an escaped object
        makes o' escape (Alg. 2 lines 14-18)."""
        changed = True
        while changed:
            changed = False
            escaping_ptrs = self._pointer_vars_of_escaped()
            for store in self._stores_through(escaping_ptrs):
                if not isinstance(store.value, Variable):
                    continue
                for obj in self._objects_pointed_by(store.value):
                    if obj not in self.escaped:
                        self.escaped.add(obj)
                        changed = True

    def _stores_through(self, ptrs: Set[Variable]) -> Iterable[StoreInst]:
        """Stores whose pointer is one of ``ptrs``, in global site order.

        With the summary layer this is an index lookup (positions merged
        across the touched pointers, then sorted — the same ascending
        subsequence the whole-list scan would yield); without it, the
        original scan over every store.
        """
        index = self.summary_index
        if index is None:
            return [
                s
                for s in self.dataflow.all_stores
                if isinstance(s.pointer, Variable) and s.pointer in ptrs
            ]
        positions: List[int] = []
        for var in ptrs:
            positions.extend(index.store_positions(var))
        positions.sort()
        all_stores = self.dataflow.all_stores
        return [all_stores[pos] for pos in positions]

    def _pointer_vars_of_escaped(self) -> Set[Variable]:
        out: Set[Variable] = set()
        for obj in self.escaped:
            for node in self.pted.get(obj, ()):
                if isinstance(node, DefNode):
                    out.add(node.var)
        return out

    def points_to_objects(self, var: Variable) -> Set[MemObject]:
        """Public query: the objects ``var`` may point to, per the VFG
        (backward reachability to object nodes).  Used by the checkers to
        resolve which memory a ``free``/dereference touches."""
        return self._objects_pointed_by(var)

    def pted_guard(self, obj: MemObject, node: VFGNode) -> Optional[BoolTerm]:
        """The aggregated pointed-to-by guard of ``node`` for ``obj``
        (None when the node is not in Pted(obj))."""
        return self.pted.get(obj, {}).get(node)

    def _objects_pointed_by(self, var: Variable) -> Set[MemObject]:
        """Objects o with ObjNode(o) → ... → def(var): the pointer targets
        of ``var`` discoverable in the current VFG (backward reachability)."""
        cached = self._points_back_cache.get(var)
        if cached is not None:
            return cached
        seen: Set[VFGNode] = set()
        out: Set[MemObject] = set()
        stack: List[VFGNode] = [DefNode(var)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if isinstance(node, ObjNode):
                out.add(node.obj)
                continue
            for edge in self.vfg.in_edges(node):
                stack.append(edge.src)
        self._points_back_cache[var] = out
        return out

    # ----- pointed-to-by sets (lines 19-23) -----------------------------------

    def _compute_pted(self) -> None:
        for obj in self.escaped:
            self.pted[obj] = self._reach_with_guards(ObjNode(obj))

    def _reach_with_guards(self, origin: VFGNode) -> Dict[VFGNode, BoolTerm]:
        """Forward reachability from ``origin`` aggregating edge guards
        (disjunction over paths, conjunction along a path), with widening
        to TRUE after :data:`_GUARD_UPDATE_CAP` refinements per node."""
        guards: Dict[VFGNode, BoolTerm] = {origin: TRUE}
        updates: Dict[VFGNode, int] = {}
        worklist: List[VFGNode] = [origin]
        graph = self._graph
        while worklist:
            node = worklist.pop()
            node_guard = guards[node]
            for edge in graph.out_edges(node):
                new_guard = and_(node_guard, edge.guard)
                if new_guard is FALSE:
                    continue
                old = guards.get(edge.dst)
                if old is None:
                    guards[edge.dst] = new_guard
                    worklist.append(edge.dst)
                    continue
                merged = or_(old, new_guard)
                if merged is old:
                    continue
                count = updates.get(edge.dst, 0) + 1
                updates[edge.dst] = count
                if count >= _GUARD_UPDATE_CAP:
                    self.widenings += 1
                    guards[edge.dst] = TRUE
                else:
                    guards[edge.dst] = merged
                worklist.append(edge.dst)
        guards.pop(origin, None)
        return guards

    # ----- interference edges (lines 2-10) --------------------------------------

    def _add_interference_edges(self) -> int:
        added = 0
        for obj in list(self.escaped):
            pted = self.pted.get(obj, {})
            if not pted:
                continue
            stores = self._pted_sites(pted, kind="store")
            loads = self._pted_sites(pted, kind="load")
            for store, alpha in stores:
                for load, beta in loads:
                    added += self._try_edge(obj, store, alpha, load, beta)
        self.edges_added += added
        return added

    def _pted_sites(self, pted: Dict[VFGNode, BoolTerm], kind: str) -> List[Tuple]:
        """``(site, alias guard)`` pairs whose pointer is in Pted, in
        global site order — via the merged summary index (positions of
        the Pted pointer variables, sorted: the identical ascending
        subsequence) or the original whole-list scan."""
        index = self.summary_index
        if index is None:
            sites = (
                self.dataflow.all_stores if kind == "store" else self.dataflow.all_loads
            )
            return [
                (s, pted[DefNode(s.pointer)])
                for s in sites
                if isinstance(s.pointer, Variable) and DefNode(s.pointer) in pted
            ]
        lookup = index.store_positions if kind == "store" else index.load_positions
        positions: List[int] = []
        for node in pted:
            if isinstance(node, DefNode):
                positions.extend(lookup(node.var))
        positions.sort()
        sites = self.dataflow.all_stores if kind == "store" else self.dataflow.all_loads
        return [(sites[pos], pted[DefNode(sites[pos].pointer)]) for pos in positions]

    def _try_edge(
        self,
        obj: MemObject,
        store: StoreInst,
        alpha: BoolTerm,
        load: LoadInst,
        beta: BoolTerm,
    ) -> int:
        if self.use_mhp:
            interthread = self.mhp.may_happen_in_parallel(store, load)
        else:
            # Ablation: no MHP pruning — any cross-thread pair interferes.
            ts = self.tcg.threads_of(store)
            tl = self.tcg.threads_of(load)
            interthread = any(a != b for a in ts for b in tl)
        if not interthread:
            # Same-thread pair: only a forward, compatible pair can be a
            # missed data dependence (line-9 update); a store that can
            # never precede the load is skipped statically.
            if not self.mhp.happens_before(store, load):
                return 0
        guard = and_(store.guard, load.guard, alpha, beta)
        if guard is FALSE:
            return 0
        if self.prune_guards and quick_unsat(guard):
            return 0
        edge = self.vfg.add_edge(
            StoreNode(store),
            DefNode(load.dst),
            guard,
            "load",
            obj=obj,
            store=store,
            load=load,
            interthread=interthread,
        )
        if edge is None:
            return 0
        if self.summary_index is not None:
            # Mirror into the demand-loading view; the just-assigned
            # ordinal is num_edges - 1 (add_edge appends).
            self.summary_index.view.add_overlay(edge, self.vfg.num_edges - 1)
        if interthread:
            self.interference_edge_count += 1
        return 1

    # ----- Φ_ls support ------------------------------------------------------

    def _index_object_stores(self) -> None:
        """Final store index per escaped object, used by the checker to
        build the no-overwrite part of Φ_ls (the S(l) of Eq. 2)."""
        for obj in self.escaped:
            pted = self.pted.get(obj, {})
            self.object_stores[obj] = self._pted_sites(pted, kind="store")
        # Objects never escaped still need S(l) for intra-thread edges.
        for obj, targeted in self.dataflow.store_targets.items():
            if obj not in self.object_stores:
                self.object_stores[obj] = list(targeted)
