"""Concrete interpreter + witness replay (dynamic bug confirmation).

A small dynamic-analysis substrate: it executes the lowered IR under the
SMT model's environment and the bug report's witness interleaving, and
checks that the reported violation actually fires — the executable
counterpart of the paper's manual report confirmation (§7.3).
"""

from .confirm import ConfirmationResult, confirm_all, confirm_bug
from .interpreter import Environment, ExecutionResult, Interpreter
from .state import Cell, RuntimeValue, ThreadState, Violation
from .testing import DynamicTestingResult, dynamic_test, random_environment

__all__ = [
    "ConfirmationResult",
    "confirm_all",
    "confirm_bug",
    "DynamicTestingResult",
    "dynamic_test",
    "random_environment",
    "Environment",
    "ExecutionResult",
    "Interpreter",
    "Cell",
    "RuntimeValue",
    "ThreadState",
    "Violation",
]
