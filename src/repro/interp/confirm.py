"""Witness replay: dynamically confirm a static bug report.

The paper's authors confirmed reports manually ("through rounds of
rejections before the final confirmation"); here the confirmation is
executable.  Given a bug report, we take the SMT model behind it — the
extern values and branch-atom assignments that make every guard on the
path true, and the statement order witnessing a feasible interleaving —
and *run the program* under exactly that environment and schedule with
the concrete interpreter.  A report is confirmed when the replay
triggers a dynamic violation of the same kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..checkers.base import BugReport
from ..ir.module import IRModule
from .interpreter import Environment, ExecutionResult, Interpreter
from .state import Violation

__all__ = ["CONCURRENCY_KINDS", "ConfirmationResult", "confirm_bug", "confirm_all"]

#: report kinds needing the interpreter's opt-in concurrency detectors
CONCURRENCY_KINDS = frozenset(
    {"data-race", "atomicity-violation", "order-violation"}
)


@dataclass
class ConfirmationResult:
    bug: BugReport
    confirmed: bool
    matching: List[Violation] = field(default_factory=list)
    execution: Optional[ExecutionResult] = None

    def describe(self) -> str:
        status = "CONFIRMED" if self.confirmed else "not reproduced"
        lines = [f"[{status}] {self.bug.kind} ℓ{self.bug.source.label} -> ℓ{self.bug.sink.label}"]
        for v in self.matching:
            lines.append(f"  runtime: {v!r}")
        return "\n".join(lines)


def _schedule_from(bug: BugReport) -> List[int]:
    """The witness interleaving as an ordered list of statement labels."""
    pairs = []
    for name, position in bug.witness_order.items():
        if name.startswith("O") and name[1:].isdigit():
            pairs.append((position, int(name[1:])))
    return [label for _pos, label in sorted(pairs)]


def _environment_from(bug: BugReport) -> Environment:
    env = bug.witness_env or {}
    return Environment(
        externs=dict(env.get("ints", {})),
        bools=dict(env.get("bools", {})),
    )


def confirm_bug(
    module: IRModule, bug: BugReport, max_steps: int = 100_000
) -> ConfirmationResult:
    """Replay one report's witness; confirmed iff a same-kind violation
    fires at runtime (at the reported sink, or anywhere for the kind).

    A statement inside a function shared by several threads makes the
    schedule ambiguous, so both owner-preference strategies are tried.
    """
    schedule = _schedule_from(bug)
    last_execution: Optional[ExecutionResult] = None
    strategies = (
        {"schedule": schedule},
        {"schedule": schedule, "prefer_children": True},
        # Witnesses mediated by procedure summaries can omit the order
        # variables of the concrete store/load; "children run eagerly at
        # their fork" covers the canonical publish-then-free races.
        {"schedule": None, "eager_children": True},
    )
    for strategy in strategies:
        interp = Interpreter(
            module,
            _environment_from(bug),
            concurrency_checks=bug.kind in CONCURRENCY_KINDS,
        )
        execution = interp.run(max_steps=max_steps, **strategy)
        last_execution = execution
        matching = [v for v in execution.violations if v.kind == bug.kind]
        exact = [v for v in matching if v.label == bug.sink.label]
        if exact or matching:
            return ConfirmationResult(
                bug=bug,
                confirmed=True,
                matching=exact or matching,
                execution=execution,
            )
    return ConfirmationResult(
        bug=bug, confirmed=False, matching=[], execution=last_execution
    )


def confirm_all(module: IRModule, bugs: List[BugReport]) -> List[ConfirmationResult]:
    return [confirm_bug(module, bug) for bug in bugs]
