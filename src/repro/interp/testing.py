"""Random-schedule dynamic testing — the baseline the paper argues against.

The paper's introduction: dynamic detection "depends on intricate
sequences of low-probability concurrent events … making dynamic analysis
difficult to exercise even a tiny fraction of all possible execution".
This module makes that claim measurable: run a program under many random
schedules (and random symbolic environments) and count how often each
violation kind actually surfaces.  The benchmark compares the hit rate
against Canary's static verdict, which needs no luck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.module import IRModule
from .interpreter import Environment, Interpreter

__all__ = ["DynamicTestingResult", "random_environment", "dynamic_test"]


@dataclass
class DynamicTestingResult:
    trials: int
    #: violation kind -> number of trials in which it surfaced
    hits: Dict[str, int] = field(default_factory=dict)
    #: violation kind -> first trial index that exposed it (for MTTF-style stats)
    first_hit: Dict[str, int] = field(default_factory=dict)
    total_steps: int = 0

    def hit_rate(self, kind: str) -> float:
        return self.hits.get(kind, 0) / self.trials if self.trials else 0.0

    def kinds_found(self) -> Set[str]:
        return set(self.hits)

    def describe(self) -> str:
        lines = [f"dynamic testing: {self.trials} random schedules"]
        if not self.hits:
            lines.append("  no violations observed")
        for kind, count in sorted(self.hits.items()):
            lines.append(
                f"  {kind}: {count}/{self.trials} trials"
                f" ({100.0 * self.hit_rate(kind):.1f}%),"
                f" first at trial {self.first_hit[kind]}"
            )
        return "\n".join(lines)


def random_environment(rng: random.Random, module: IRModule) -> Environment:
    """Random extern values and default-random opaque atoms."""
    externs = {name: rng.randrange(-4, 5) for name in module.externs}
    # Opaque atoms are keyed by generated names we cannot enumerate ahead
    # of time; flip a global default instead (each trial is all-true or
    # all-false plus the extern variation — a common fuzzing heuristic).
    return Environment(externs=externs, bools={}, default_bool=rng.random() < 0.5)


def dynamic_test(
    module: IRModule,
    trials: int = 100,
    seed: int = 0,
    max_steps_per_trial: int = 20_000,
    environment: Optional[Environment] = None,
) -> DynamicTestingResult:
    """Run ``trials`` random schedules; aggregate observed violations."""
    rng = random.Random(seed)
    result = DynamicTestingResult(trials=trials)
    for trial in range(trials):
        env = environment or random_environment(rng, module)
        interp = Interpreter(module, env)
        execution = interp.run_random(
            seed=rng.randrange(1 << 30), max_steps=max_steps_per_trial
        )
        result.total_steps += execution.steps
        seen_this_trial: Set[str] = set()
        for violation in execution.violations:
            if violation.kind in seen_this_trial:
                continue
            seen_this_trial.add(violation.kind)
            result.hits[violation.kind] = result.hits.get(violation.kind, 0) + 1
            result.first_hit.setdefault(violation.kind, trial)
    return result
