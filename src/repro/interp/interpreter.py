"""Concrete interpreter for lowered MiniCC modules.

Executes the guarded straight-line IR under a *symbolic environment*
(extern values + opaque branch-atom assignments, typically taken from an
SMT model) and an optional *schedule* (a total order over statement
labels, typically a bug report's witness interleaving).  Instruction
guards are evaluated against the environment — the same assignment the
solver used — so a replay follows exactly the control-flow paths the
witness assumed, while the memory effects are fully concrete.

The interpreter dynamically detects the four memory-safety/flow
properties the original checkers report (use-after-free, double-free,
NULL dereference, information leak), which lets
:mod:`repro.interp.confirm` validate static reports by replaying their
witnesses — the executable analogue of the paper's manual bug
confirmation.

With ``concurrency_checks=True`` it additionally detects the
concurrency families (data-race, atomicity-violation, order-violation)
using a per-access happens-before clock (fork/join/signal→wait edges)
plus lock-set disjointness.  The detectors are *opt-in*: they observe
scheduling accidents, so the static-soundness differential tests (which
compare against the memory-safety checkers only) run with them off;
:func:`repro.interp.confirm.confirm_bug` turns them on when replaying a
concurrency report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import (
    AddrOfInst,
    AllocInst,
    BinOpInst,
    CallInst,
    CmpInst,
    CopyInst,
    ForkInst,
    FreeInst,
    Instruction,
    JoinInst,
    LoadInst,
    LockInst,
    PhiInst,
    ReturnInst,
    SignalInst,
    SinkInst,
    SourceInst,
    StoreInst,
    UnlockInst,
    WaitInst,
)
from ..ir.module import IRModule
from ..ir.values import (
    FunctionRef,
    IntConstant,
    MemObject,
    NullConstant,
    SymbolicConstant,
    Value,
    Variable,
)
from ..smt.terms import And, BoolConst, BoolTerm, BoolVar, Eq, Le, Lt, Not, Or
from .state import NULL_VALUE, Cell, RuntimeValue, ThreadState, Violation

__all__ = ["Environment", "Interpreter", "ExecutionResult"]

_MAX_CALL_DEPTH = 32


@dataclass
class Environment:
    """The symbolic inputs of a run: extern integers and opaque booleans
    (keyed by the atom names the lowering generates)."""

    externs: Dict[str, int] = field(default_factory=dict)
    bools: Dict[str, bool] = field(default_factory=dict)
    default_bool: bool = False

    def int_value(self, name: str) -> int:
        return self.externs.get(name, 0)

    def bool_value(self, name: str) -> bool:
        return self.bools.get(name, self.default_bool)


@dataclass
class ExecutionResult:
    violations: List[Violation]
    steps: int
    output: List[str]
    completed: bool

    def violations_of(self, kind: str) -> List[Violation]:
        return [v for v in self.violations if v.kind == kind]


class Interpreter:
    """One concrete execution of a module (create fresh per run)."""

    def __init__(
        self,
        module: IRModule,
        env: Optional[Environment] = None,
        concurrency_checks: bool = False,
    ) -> None:
        self.module = module
        self.env = env or Environment()
        self.concurrency_checks = concurrency_checks
        self.violations: List[Violation] = []
        self.output: List[str] = []
        self.globals: Dict[MemObject, Cell] = {}
        self.threads: List[ThreadState] = []
        self._thread_by_name: Dict[Tuple[str, str], ThreadState] = {}
        self._blocked: Dict[str, Tuple[str, str]] = {}  # tid -> awaited key
        self._cond_blocked: Dict[str, str] = {}  # tid -> awaited condition
        self._signalled: Set[str] = set()  # latched condition variables
        self._held: Dict[str, List[str]] = {}  # tid -> held mutexes (multiset)
        #: happens-before clocks for the opt-in concurrency detectors:
        #: each tracked access is an event; a thread's clock is the set of
        #: events ordered before its next action (fork inherits, join and
        #: wait merge).
        self._clocks: Dict[str, Set[int]] = {}
        self._signal_clocks: Dict[str, Set[int]] = {}
        #: cell uid -> {'write': access | None, 'reads': {tid: access},
        #:              'rmw': {tid: [read_label, intervening_label]},
        #:              'accesses': [access, ...]}  where an access is
        #: (tid, label, lock set, event id, is_write)
        self._access: Dict[int, dict] = {}
        #: (kind, label, prev_label) triples already reported — dedup so
        #: a loop re-executing a racing pair floods nothing
        self._reported: Set[tuple] = set()
        self._event_counter = 0
        self.steps = 0
        self._tid_counter = 0

    # ----- guard evaluation -------------------------------------------------

    def eval_guard(self, term: BoolTerm) -> bool:
        if isinstance(term, BoolConst):
            return term.value
        if isinstance(term, BoolVar):
            return self.env.bool_value(term.name)
        if isinstance(term, Not):
            return not self.eval_guard(term.arg)
        if isinstance(term, And):
            return all(self.eval_guard(a) for a in term.args)
        if isinstance(term, Or):
            return any(self.eval_guard(a) for a in term.args)
        if isinstance(term, (Le, Lt, Eq)):
            lhs = self._eval_int_term(term.lhs)
            rhs = self._eval_int_term(term.rhs)
            if isinstance(term, Le):
                return lhs <= rhs
            if isinstance(term, Lt):
                return lhs < rhs
            return lhs == rhs
        return self.env.default_bool

    def _eval_int_term(self, term) -> int:
        from ..smt.terms import Add, IntConst, IntVar, Sub

        if isinstance(term, IntConst):
            return term.value
        if isinstance(term, IntVar):
            return self.env.int_value(term.name)
        if isinstance(term, Add):
            return self._eval_int_term(term.lhs) + self._eval_int_term(term.rhs)
        if isinstance(term, Sub):
            return self._eval_int_term(term.lhs) - self._eval_int_term(term.rhs)
        return 0

    # ----- values -------------------------------------------------------------

    def _value_of(self, value: Value, frame_env: Dict[Variable, RuntimeValue]) -> RuntimeValue:
        if isinstance(value, IntConstant):
            return RuntimeValue(integer=value.value)
        if isinstance(value, NullConstant):
            return NULL_VALUE
        if isinstance(value, SymbolicConstant):
            return RuntimeValue(integer=self.env.int_value(value.name))
        if isinstance(value, FunctionRef):
            return RuntimeValue(func=value.name)
        if isinstance(value, Variable):
            return frame_env.get(value, RuntimeValue(integer=0))
        return RuntimeValue(integer=0)

    # ----- thread / frame machinery -------------------------------------------

    def _spawn(self, entry: str, args: List[RuntimeValue], tid: Optional[str] = None) -> ThreadState:
        func = self.module.functions[entry]
        frame_env: Dict[Variable, RuntimeValue] = {}
        for formal, actual in zip(func.params, args):
            frame_env[formal] = actual
        if tid is None:
            self._tid_counter += 1
            tid = f"t{self._tid_counter}"
        thread = ThreadState(tid=tid, frames=[[entry, 0, frame_env, None, {}]])
        self.threads.append(thread)
        return thread

    def _runnable(self, thread: ThreadState) -> bool:
        if thread.finished:
            return False
        cond = self._cond_blocked.get(thread.tid)
        if cond is not None:
            if cond not in self._signalled:
                return False
            del self._cond_blocked[thread.tid]
            self._merge_clock(thread.tid, self._signal_clocks.get(cond))
        key = self._blocked.get(thread.tid)
        if key is None:
            return True
        target = self._thread_by_name.get(key)
        if target is None or target.finished:
            del self._blocked[thread.tid]
            if target is not None:
                self._merge_clock(thread.tid, self._clocks.get(target.tid))
            return True
        return False

    def _merge_clock(self, tid: str, events: Optional[Set[int]]) -> None:
        if self.concurrency_checks and events:
            self._clocks.setdefault(tid, set()).update(events)

    def _next_instruction(self, thread: ThreadState) -> Optional[Instruction]:
        """The next guard-enabled instruction the thread will execute
        (skipping disabled ones), or None if the thread will finish."""
        while thread.frames:
            fname, pc, _env, _dst, _cells = thread.frames[-1]
            body = self.module.functions[fname].body
            while pc < len(body):
                inst = body[pc]
                if self.eval_guard(inst.guard):
                    thread.frames[-1][1] = pc
                    return inst
                pc += 1
            # frame exhausted: return to caller
            self._pop_frame(thread, value=None)
        thread.finished = True
        return None

    def _pop_frame(self, thread: ThreadState, value: Optional[RuntimeValue]) -> None:
        frame = thread.frames.pop()
        dst = frame[3]
        if thread.frames and dst is not None:
            caller_env = thread.frames[-1][2]
            caller_env[dst] = value if value is not None else RuntimeValue(integer=0)
        if thread.frames:
            thread.frames[-1][1] += 1  # advance past the call
        if not thread.frames:
            thread.finished = True

    # ----- stepping --------------------------------------------------------------

    def step(self, thread: ThreadState) -> Optional[Instruction]:
        """Execute the thread's next enabled instruction.  Returns it, or
        None when the thread finished / is blocked."""
        if not self._runnable(thread):
            return None
        inst = self._next_instruction(thread)
        if inst is None:
            return None
        fname, pc, frame_env, _dst, cells = thread.frames[-1]
        self.steps += 1
        advanced = self._execute(inst, thread, frame_env, cells)
        if advanced:
            thread.frames[-1][1] += 1
        return inst

    def _execute(
        self,
        inst: Instruction,
        thread: ThreadState,
        env: Dict[Variable, RuntimeValue],
        cells: Dict[MemObject, Cell],
    ) -> bool:
        """Execute one instruction; returns False when the pc was managed
        explicitly (calls, returns)."""
        if isinstance(inst, AllocInst):
            env[inst.dst] = RuntimeValue(pointer=Cell(origin=f"ℓ{inst.label}"))
        elif isinstance(inst, AddrOfInst):
            cell = self._slot_cell(inst.obj, cells)
            env[inst.dst] = RuntimeValue(pointer=cell)
        elif isinstance(inst, CopyInst):
            env[inst.dst] = self._value_of(inst.src, env)
        elif isinstance(inst, PhiInst):
            chosen = None
            for value, sel in inst.incomings:
                if self.eval_guard(sel):
                    chosen = value
                    break
            if chosen is None and inst.incomings:
                chosen = inst.incomings[0][0]
            env[inst.dst] = (
                self._value_of(chosen, env) if chosen is not None else NULL_VALUE
            )
        elif isinstance(inst, (BinOpInst, CmpInst)):
            env[inst.dst] = self._arith(inst, env)
        elif isinstance(inst, LoadInst):
            ptr = self._value_of(inst.pointer, env)
            cell = self._deref(ptr, inst, "load")
            if cell is not None:
                self._record_access(cell, inst, thread, is_write=False)
                env[inst.dst] = cell.value if cell.value is not None else RuntimeValue(integer=0)
            else:
                env[inst.dst] = RuntimeValue(integer=0)
        elif isinstance(inst, StoreInst):
            ptr = self._value_of(inst.pointer, env)
            cell = self._deref(ptr, inst, "store")
            if cell is not None:
                self._record_access(cell, inst, thread, is_write=True)
                cell.value = self._value_of(inst.value, env)
        elif isinstance(inst, FreeInst):
            ptr = self._value_of(inst.pointer, env)
            if ptr.pointer is not None:
                cell = ptr.pointer
                if cell.freed:
                    self.violations.append(
                        Violation(
                            "double-free",
                            inst.label,
                            f"{cell!r} first freed at ℓ{cell.freed_by}",
                        )
                    )
                else:
                    cell.freed = True
                    cell.freed_by = inst.label
        elif isinstance(inst, CallInst):
            return self._call(inst, thread, env)
        elif isinstance(inst, ReturnInst):
            value = (
                self._value_of(inst.value, env) if inst.value is not None else None
            )
            self._pop_frame(thread, value)
            return False
        elif isinstance(inst, ForkInst):
            callee_name = self._callee_name(inst.callee, env)
            if callee_name is not None and callee_name in self.module.functions:
                args = [self._value_of(a, env) for a in inst.args]
                child = self._spawn(callee_name, args)
                self._thread_by_name[(thread.tid, inst.thread)] = child
                if self.concurrency_checks:
                    # fork edge: the child happens-after everything the
                    # parent has done so far
                    self._clocks[child.tid] = set(self._clocks.get(thread.tid, ()))
                if getattr(self, "_eager_children", False):
                    # "Serialize children first" schedule: the child runs
                    # to completion at its fork point.
                    guard_steps = 0
                    while not child.finished and guard_steps < 10_000:
                        guard_steps += 1
                        if self.step(child) is None and not child.finished:
                            break  # blocked inside the child: give up
        elif isinstance(inst, JoinInst):
            key = (thread.tid, inst.thread)
            target = self._thread_by_name.get(key)
            if target is not None and not target.finished:
                self._blocked[thread.tid] = key
                return False  # retry the join later
            if target is not None:
                self._merge_clock(thread.tid, self._clocks.get(target.tid))
        elif isinstance(inst, SourceInst):
            if inst.kind == "taint":
                env[inst.dst] = RuntimeValue(integer=1, tainted=True)
            else:  # nondet: consistent with the guard atom b!<name>
                truth = self.env.bool_value(f"b!{inst.dst.name}")
                env[inst.dst] = RuntimeValue(integer=1 if truth else 0)
        elif isinstance(inst, SinkInst):
            values = [self._value_of(a, env) for a in inst.args]
            if inst.kind == "taint_sink" and any(v.tainted for v in values):
                self.violations.append(
                    Violation("info-leak", inst.label, "tainted value reached sink")
                )
            elif inst.kind == "print":
                self.output.append(" ".join(repr(v) for v in values))
        elif isinstance(inst, LockInst):
            # Mutual exclusion is honored by the schedule, not enforced
            # here; the held-lock sets feed the race detector's lock-set
            # disjointness test.
            self._held.setdefault(thread.tid, []).append(inst.mutex)
        elif isinstance(inst, UnlockInst):
            held = self._held.get(thread.tid)
            if held and inst.mutex in held:
                held.remove(inst.mutex)
        elif isinstance(inst, SignalInst):
            self._signalled.add(inst.cond)
            if self.concurrency_checks:
                self._signal_clocks.setdefault(inst.cond, set()).update(
                    self._clocks.get(thread.tid, ())
                )
        elif isinstance(inst, WaitInst):
            if inst.cond not in self._signalled:
                self._cond_blocked[thread.tid] = inst.cond
                return False  # retry once some thread signals
            self._merge_clock(thread.tid, self._signal_clocks.get(inst.cond))
        return True

    # ----- opt-in concurrency detection ---------------------------------------

    def _record_access(
        self, cell: Cell, inst: Instruction, thread: ThreadState, is_write: bool
    ) -> None:
        """Happens-before/lock-set detection of data races, atomicity
        violations, and order violations (``concurrency_checks`` only).

        A prior access races with the current one when it came from a
        different thread, its event is not in the current thread's clock
        (no fork/join/signal→wait path orders them), and the two lock
        sets are disjoint.
        """
        if not self.concurrency_checks:
            return
        tid = thread.tid
        clock = self._clocks.setdefault(tid, set())
        locks = frozenset(self._held.get(tid, ()))
        state = self._access.setdefault(
            cell.uid, {"write": None, "reads": {}, "rmw": {}, "accesses": []}
        )

        def races_with(prev) -> bool:
            ptid, _plabel, plocks, pevent, _pwrite = prev
            return ptid != tid and pevent not in clock and not (plocks & locks)

        # Race detection runs against the cell's *full* access history,
        # not just the most recent write: a race between two accesses is
        # a property of the happens-before relation, so an intervening
        # third write must not mask it (otherwise confirmation would
        # depend on which schedule the replay happened to take).
        kind = "write" if is_write else "read"
        for prev in state["accesses"]:
            if (is_write or prev[4]) and races_with(prev):
                pair = ("data-race", inst.label, prev[1])
                if pair in self._reported:
                    continue
                self._reported.add(pair)
                pkind = "write" if prev[4] else "read"
                self.violations.append(
                    Violation(
                        "data-race",
                        inst.label,
                        f"{kind} of {cell!r} racing with {pkind} at ℓ{prev[1]}",
                    )
                )
        last_write = state["write"]
        if is_write:
            # This write intervenes in every other thread's open
            # read-modify-write window on the cell.
            for other_tid, window in state["rmw"].items():
                if other_tid != tid and window[1] is None:
                    window[1] = inst.label
            # Completing our own window after an intervening remote write
            # is the atomicity violation.
            window = state["rmw"].pop(tid, None)
            if window is not None and window[1] is not None:
                self.violations.append(
                    Violation(
                        "atomicity-violation",
                        window[1],
                        f"remote write at ℓ{window[1]} split the"
                        f" ℓ{window[0]}→ℓ{inst.label} read-modify-write",
                    )
                )
            # Overwriting our own previous value that a remote thread
            # observed is the order violation (use before publication).
            if last_write is not None and last_write[0] == tid:
                for reader_tid, prev in state["reads"].items():
                    if reader_tid != tid:
                        self.violations.append(
                            Violation(
                                "order-violation",
                                prev[1],
                                f"remote read at ℓ{prev[1]} observed the"
                                f" superseded value stored at ℓ{last_write[1]}",
                            )
                        )
            self._event_counter += 1
            clock.add(self._event_counter)
            state["write"] = (tid, inst.label, locks, self._event_counter, True)
            state["accesses"].append(state["write"])
            state["reads"] = {}
        else:
            self._event_counter += 1
            clock.add(self._event_counter)
            access = (tid, inst.label, locks, self._event_counter, False)
            state["reads"][tid] = access
            state["accesses"].append(access)
            state["rmw"][tid] = [inst.label, None]

    def _slot_cell(self, obj: MemObject, cells: Dict[MemObject, Cell]) -> Cell:
        if obj.kind == "global":
            store = self.globals
        else:
            store = cells
        cell = store.get(obj)
        if cell is None:
            cell = Cell(origin=repr(obj))
            store[obj] = cell
        return cell

    def _deref(self, ptr: RuntimeValue, inst: Instruction, op: str) -> Optional[Cell]:
        if ptr.pointer is None:
            if ptr.is_null:
                self.violations.append(
                    Violation("null-deref", inst.label, f"{op} through NULL")
                )
            return None
        cell = ptr.pointer
        if cell.freed:
            self.violations.append(
                Violation(
                    "use-after-free",
                    inst.label,
                    f"{op} of {cell!r} freed at ℓ{cell.freed_by}",
                )
            )
        return cell

    def _arith(self, inst, env) -> RuntimeValue:
        lhs = self._value_of(inst.lhs, env)
        rhs = self._value_of(inst.rhs, env)
        tainted = lhs.tainted or rhs.tainted
        a = lhs.integer if lhs.integer is not None else (lhs.pointer.uid if lhs.pointer else 0)
        b = rhs.integer if rhs.integer is not None else (rhs.pointer.uid if rhs.pointer else 0)
        if isinstance(inst, CmpInst):
            op = inst.op
            result = {
                "<": a < b,
                "<=": a <= b,
                ">": a > b,
                ">=": a >= b,
                "==": a == b,
                "!=": a != b,
            }[op]
            return RuntimeValue(integer=1 if result else 0, tainted=tainted)
        op = inst.op
        try:
            result = {
                "+": a + b,
                "-": a - b,
                "*": a * b,
                "/": a // b if b else 0,
                "%": a % b if b else 0,
            }[op]
        except KeyError:
            result = 0
        # Pointer arithmetic keeps pointing at the same (monolithic) cell.
        if lhs.pointer is not None and op in ("+", "-"):
            return RuntimeValue(pointer=lhs.pointer, tainted=tainted)
        return RuntimeValue(integer=result, tainted=tainted)

    def _callee_name(self, callee: Value, env) -> Optional[str]:
        if isinstance(callee, FunctionRef):
            return callee.name
        if isinstance(callee, Variable):
            value = env.get(callee)
            if value is not None and getattr(value, "func", None):
                return value.func
        return None

    def _call(self, inst: CallInst, thread: ThreadState, env) -> bool:
        if len(thread.frames) >= _MAX_CALL_DEPTH:
            if inst.dst is not None:
                env[inst.dst] = RuntimeValue(integer=0)
            return True
        name = self._callee_name(inst.callee, env)
        func = self.module.functions.get(name) if name else None
        if func is None:
            if inst.dst is not None:
                env[inst.dst] = RuntimeValue(integer=0)
            return True
        frame_env: Dict[Variable, RuntimeValue] = {}
        for formal, actual in zip(func.params, inst.args):
            frame_env[formal] = self._value_of(actual, env)
        thread.frames.append([name, 0, frame_env, inst.dst, {}])
        return False

    # ----- scheduling ---------------------------------------------------------

    def run(
        self,
        entry_args: Sequence[RuntimeValue] = (),
        schedule: Optional[Sequence[int]] = None,
        max_steps: int = 100_000,
        prefer_children: bool = False,
        eager_children: bool = False,
    ) -> ExecutionResult:
        """Execute from the module entry.

        ``schedule`` is a total order over statement labels (the witness
        interleaving): the scheduler drives whichever thread owns the
        next scheduled label up to (and through) it, then falls back to
        round-robin until every thread finishes.
        """
        self._prefer_children = prefer_children
        self._eager_children = eager_children
        main = self._spawn(self.module.entry, list(entry_args), tid="main")
        anchors = list(schedule or [])
        anchor_idx = 0
        anchor_budget = 0
        _ANCHOR_RETRIES = 4096
        while self.steps < max_steps:
            # Phase 1: drive the next anchor, if any thread will reach it.
            if anchor_idx < len(anchors):
                label = anchors[anchor_idx]
                if anchor_budget > _ANCHOR_RETRIES:
                    anchor_idx += 1
                    anchor_budget = 0
                    continue
                owner = self._owner_of(label)
                if owner is None:
                    # The owning thread may not have been forked yet: let
                    # some thread make progress and retry this anchor.
                    anchor_budget += 1
                    if not self._step_any():
                        anchor_idx += 1  # truly unreachable (guard off)
                        anchor_budget = 0
                    continue
                executed = self.step(owner)
                if executed is None:
                    # blocked on a join: let others run
                    anchor_budget += 1
                    if not self._step_any(exclude=owner):
                        anchor_idx += 1
                        anchor_budget = 0
                    continue
                if executed.label == label:
                    anchor_idx += 1
                    anchor_budget = 0
                continue
            # Phase 2: round-robin to completion.
            if not self._step_any():
                break
        completed = all(t.finished for t in self.threads)
        return ExecutionResult(
            violations=self.violations,
            steps=self.steps,
            output=self.output,
            completed=completed,
        )

    def run_random(
        self,
        seed: int,
        entry_args: Sequence[RuntimeValue] = (),
        max_steps: int = 50_000,
    ) -> ExecutionResult:
        """Execute under a uniformly random scheduler (seeded).

        This is the dynamic-testing baseline the paper's introduction
        argues against: each run exercises *one* interleaving, so
        low-probability races need many trials to surface.
        """
        import random as _random

        rng = _random.Random(seed)
        self._spawn(self.module.entry, list(entry_args), tid="main")
        while self.steps < max_steps:
            runnable = [t for t in self.threads if self._runnable(t)]
            if not runnable:
                break
            thread = rng.choice(runnable)
            was_finished = thread.finished
            if self.step(thread) is None and not thread.finished and not was_finished:
                # blocked mid-join: other threads continue
                continue
        completed = all(t.finished for t in self.threads)
        return ExecutionResult(
            violations=self.violations,
            steps=self.steps,
            output=self.output,
            completed=completed,
        )

    def _step_any(self, exclude: Optional[ThreadState] = None) -> bool:
        for thread in self.threads:
            if thread is exclude:
                continue
            if not self._runnable(thread):
                continue
            was_finished = thread.finished
            if self.step(thread) is not None:
                return True
            if thread.finished and not was_finished:
                # Retiring a thread is progress too: it may unblock joins.
                return True
        return False

    def _owner_of(self, label: int) -> Optional[ThreadState]:
        """The live thread whose pending instruction stream contains the
        label.  A label inside a function shared by several threads is
        ambiguous; ``prefer_children`` breaks ties toward the most
        recently spawned thread (useful when the witness's action belongs
        to a worker rather than main)."""
        candidates = list(self.threads)
        if getattr(self, "_prefer_children", False):
            candidates = list(reversed(candidates))
        for thread in candidates:
            if thread.finished:
                continue
            for frame in thread.frames:
                fname, pc = frame[0], frame[1]
                body = self.module.functions[fname].body
                for inst in body[pc:]:
                    if inst.label == label:
                        return thread
        # Fall back: a thread that can still call into the label's function.
        try:
            func_name = self.module.function_of(self.module.instruction_at(label))
        except KeyError:
            return None
        for thread in candidates:
            if thread.finished:
                continue
            if any(frame[0] == func_name for frame in thread.frames):
                return thread
        for thread in candidates:
            if not thread.finished and self._reaches_function(thread, func_name):
                return thread
        return None

    def _reaches_function(self, thread: ThreadState, func_name: str) -> bool:
        if not thread.frames:
            return False
        seen: Set[str] = set()
        stack = [thread.frames[-1][0]]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name == func_name:
                return True
            func = self.module.functions.get(name)
            if func is None:
                continue
            for inst in func.body:
                if isinstance(inst, CallInst):
                    if isinstance(inst.callee, FunctionRef):
                        stack.append(inst.callee.name)
        return False
