"""Runtime state for the concrete MiniCC interpreter."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Cell", "RuntimeValue", "Violation", "ThreadState", "NULL_VALUE"]

_cell_ids = itertools.count()


@dataclass(eq=False)
class Cell:
    """One concrete memory cell (allocated by ``malloc``/``&x``/global)."""

    origin: str  # description of the allocation site
    value: "RuntimeValue" = None
    freed: bool = False
    freed_by: Optional[int] = None  # label of the freeing statement

    def __post_init__(self):
        self.uid = next(_cell_ids)

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return f"<cell#{self.uid} {self.origin} {state}>"


@dataclass(frozen=True)
class RuntimeValue:
    """A concrete value: an integer, a pointer to a cell, or a function
    reference — plus a taint bit (for the information-leak checker's
    dynamic confirmation)."""

    integer: Optional[int] = None
    pointer: Optional[Cell] = None
    tainted: bool = False
    func: Optional[str] = None

    @property
    def is_null(self) -> bool:
        return self.integer == 0 and self.pointer is None

    def with_taint(self) -> "RuntimeValue":
        return RuntimeValue(self.integer, self.pointer, True)

    def __repr__(self) -> str:
        if self.pointer is not None:
            return f"ptr({self.pointer!r})" + ("+taint" if self.tainted else "")
        return f"int({self.integer})" + ("+taint" if self.tainted else "")


NULL_VALUE = RuntimeValue(integer=0)


@dataclass
class Violation:
    """A dynamically observed memory-safety/flow violation."""

    kind: str  # 'use-after-free' | 'double-free' | 'null-deref' | 'info-leak'
    # (with Interpreter(concurrency_checks=True) additionally:
    #  'data-race' | 'atomicity-violation' | 'order-violation')
    label: int  # statement that triggered it
    detail: str

    def __repr__(self) -> str:
        return f"<violation {self.kind} at ℓ{self.label}: {self.detail}>"


@dataclass(eq=False)
class ThreadState:
    """One runnable thread: a stack of (function, program counter, env)."""

    tid: str
    # call stack frames: (function name, index into body, local env)
    frames: List[tuple] = field(default_factory=list)
    finished: bool = False

    def __repr__(self) -> str:
        state = "finished" if self.finished else f"{len(self.frames)} frame(s)"
        return f"<thread {self.tid} {state}>"
