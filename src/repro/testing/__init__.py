"""Test-support machinery that ships with the package (fault injection)."""

from .faults import FaultError, FaultPlan, fault_point, inject, plan_from_seed

__all__ = ["FaultError", "FaultPlan", "fault_point", "inject", "plan_from_seed"]
