"""Deterministic fault injection for the degradation paths.

The resource-governance layer promises that a crashing pass, a stalled
solver query, or a dying worker process degrades one report instead of
taking down the run.  Promises about error paths rot unless they are
exercised, so the pipeline carries named **fault points** — cheap no-op
hooks (:func:`fault_point`) at the places failures occur in the wild:

* ``pass:<name>`` — entry of every pipeline pass (``pass:pointer``,
  ``pass:interference``, ``pass:detect:use-after-free``, ...);
* ``solver:solve`` — entry of :func:`repro.smt.solver.solve_formula`,
  i.e. every SMT query on any backend;
* ``worker:solve`` — the same point, but only inside a worker *process*
  (used to simulate pool deaths).

A :class:`FaultPlan` arms a set of points with one of three behaviors:

* **crash** — raise :class:`FaultError` (a pass/checker exception);
* **stall** — sleep ``stall_seconds`` (a slow query that should trip
  the per-query solver deadline);
* **die** — ``os._exit`` the current *worker process* (a pool death;
  a guard makes this a no-op in the main process so thread backends
  are never killed).  With ``die_once_path`` set, only the first
  worker to reach the point dies (a crash-then-recover scenario for
  the retry path); without it, every worker dies (retry exhaustion).

Plans install into a module global *and* the ``CANARY_FAULTS``
environment variable (JSON), so forked/spawned pool workers observe the
same plan.  Everything is deterministic: which points fire is fixed by
the plan, and :func:`plan_from_seed` derives a reproducible plan from an
integer seed — CI runs the suite under a ``CANARY_FAULT_SEED`` matrix to
sweep scenarios without any test-side randomness.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "SEED_ENV_VAR",
    "FaultError",
    "FaultPlan",
    "clear",
    "fault_point",
    "inject",
    "install",
    "plan_from_seed",
]

ENV_VAR = "CANARY_FAULTS"
SEED_ENV_VAR = "CANARY_FAULT_SEED"

#: exit status of a worker killed by a ``die`` fault (diagnosable in CI logs)
DIE_EXIT_CODE = 86

#: the process that imported this module first (the analysis driver);
#: ``die`` points only ever fire in a *different* (worker) process.
_MAIN_PID = os.getpid()


class FaultError(RuntimeError):
    """Raised by an armed ``crash`` fault point."""


@dataclass(frozen=True)
class FaultPlan:
    """Which fault points fire, and how."""

    crash: FrozenSet[str] = frozenset()
    stall: FrozenSet[str] = frozenset()
    die: FrozenSet[str] = frozenset()
    #: raise ``KeyboardInterrupt`` — control flow that must *propagate*
    #: out of the pipeline (degradation catches never swallow it)
    interrupt: FrozenSet[str] = frozenset()
    #: raise :class:`~repro.analysis.budget.BudgetExceededError` — a hard
    #: budget unwind that must likewise propagate, never degrade
    cancel: FrozenSet[str] = frozenset()
    stall_seconds: float = 0.2
    #: when set, a ``die`` point kills only the first worker to reach it
    #: (the path file is the cross-process "already died" token)
    die_once_path: Optional[str] = None

    @staticmethod
    def make(
        crash: Iterable[str] = (),
        stall: Iterable[str] = (),
        die: Iterable[str] = (),
        interrupt: Iterable[str] = (),
        cancel: Iterable[str] = (),
        stall_seconds: float = 0.2,
        die_once_path: Optional[str] = None,
    ) -> "FaultPlan":
        return FaultPlan(
            crash=frozenset(crash),
            stall=frozenset(stall),
            die=frozenset(die),
            interrupt=frozenset(interrupt),
            cancel=frozenset(cancel),
            stall_seconds=stall_seconds,
            die_once_path=die_once_path,
        )

    # ----- (de)serialization (env-var transport to pool workers) ---------

    def to_json(self) -> str:
        return json.dumps(
            {
                "crash": sorted(self.crash),
                "stall": sorted(self.stall),
                "die": sorted(self.die),
                "interrupt": sorted(self.interrupt),
                "cancel": sorted(self.cancel),
                "stall_seconds": self.stall_seconds,
                "die_once_path": self.die_once_path,
            }
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        data = json.loads(text)
        return FaultPlan.make(
            crash=data.get("crash", ()),
            stall=data.get("stall", ()),
            die=data.get("die", ()),
            interrupt=data.get("interrupt", ()),
            cancel=data.get("cancel", ()),
            stall_seconds=data.get("stall_seconds", 0.2),
            die_once_path=data.get("die_once_path"),
        )

    def points(self) -> FrozenSet[str]:
        return self.crash | self.stall | self.die | self.interrupt | self.cancel


@dataclass
class _State:
    plan: Optional[FaultPlan] = None
    #: fired-point counters (main process only; diagnostics for tests)
    fired: Dict[str, int] = field(default_factory=dict)
    #: env-var parse memo: (raw value, parsed plan)
    env_memo: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


_state = _State()
_lock = threading.Lock()


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process and (via the environment) in every
    pool worker forked or spawned afterwards."""
    with _lock:
        _state.plan = plan
        _state.fired = {}
    os.environ[ENV_VAR] = plan.to_json()


def clear() -> None:
    with _lock:
        _state.plan = None
        _state.env_memo = (None, None)
    os.environ.pop(ENV_VAR, None)


@contextmanager
def inject(plan: FaultPlan):
    """``with inject(plan): ...`` — arm, run, always disarm."""
    previous_env = os.environ.get(ENV_VAR)
    install(plan)
    try:
        yield plan
    finally:
        clear()
        if previous_env is not None:
            os.environ[ENV_VAR] = previous_env


def fired(name: str) -> int:
    """How often ``name`` fired in this process (test diagnostics)."""
    with _lock:
        return _state.fired.get(name, 0)


def _active_plan() -> Optional[FaultPlan]:
    plan = _state.plan
    if plan is not None:
        return plan
    # Worker processes inherit only the environment copy of the plan.
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return None
    memo_raw, memo_plan = _state.env_memo
    if raw == memo_raw:
        return memo_plan
    try:
        plan = FaultPlan.from_json(raw)
    except (ValueError, KeyError):
        plan = None
    with _lock:
        _state.env_memo = (raw, plan)
    return plan


def fault_point(name: str) -> None:
    """A named hook on a production code path; no-op unless a plan arms it.

    Ordering on a multiply-armed point: die, then stall, then
    interrupt/cancel, then crash — so a single point can model "slow,
    then fails" by arming stall+crash.
    """
    plan = _active_plan()
    if plan is None:
        return
    in_worker = os.getpid() != _MAIN_PID
    armed = name in plan.points()
    if not armed:
        return
    with _lock:
        _state.fired[name] = _state.fired.get(name, 0) + 1
    if name in plan.die and in_worker:
        if plan.die_once_path is not None:
            try:
                # O_EXCL: exactly one worker wins the token and dies.
                fd = os.open(
                    plan.die_once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(fd)
            except FileExistsError:
                pass
            else:
                os._exit(DIE_EXIT_CODE)
        else:
            os._exit(DIE_EXIT_CODE)
    if name in plan.stall:
        time.sleep(plan.stall_seconds)
    if name in plan.interrupt:
        raise KeyboardInterrupt(f"injected interrupt at {name!r}")
    if name in plan.cancel:
        from ..analysis.budget import BudgetExceededError

        raise BudgetExceededError(where=name, reason="injected budget expiry")
    if name in plan.crash:
        raise FaultError(f"injected fault at {name!r}")


# ----- seeded scenario sampling (the CI fault matrix) -----------------------

#: points a seeded plan may crash — every one must degrade gracefully
CRASHABLE_POINTS = (
    "pass:verify",
    "pass:pointer",
    "pass:tcg",
    "pass:mhp",
    "pass:interference",
    "pass:detect:use-after-free",
)


def plan_from_seed(seed: int, stall_seconds: float = 0.2) -> FaultPlan:
    """A deterministic fault scenario for an integer seed.

    Seed 0 is the empty plan (the control row of the CI matrix).  Other
    seeds deterministically pick a crash point, and every third seed
    additionally stalls the solver — covering crash-only, crash+stall
    combinations without randomness inside any single run.
    """
    if seed <= 0:
        return FaultPlan()
    crash = {CRASHABLE_POINTS[(seed - 1) % len(CRASHABLE_POINTS)]}
    stall = {"solver:solve"} if seed % 3 == 0 else set()
    return FaultPlan.make(crash=crash, stall=stall, stall_seconds=stall_seconds)


def seed_from_env(default: int = 0) -> int:
    """The CI matrix seed (``CANARY_FAULT_SEED``), or ``default``."""
    try:
        return int(os.environ.get(SEED_ENV_VAR, default))
    except ValueError:
        return default
