"""FSAM-style baseline detector (paper §7.1, citing Sui, Di, Xue [60]).

Pipeline: exhaustive *flow-sensitive* points-to with per-statement memory
snapshots and thread-aware def-use chains → unguarded VFG → plain
source→sink reachability for use-after-free.

Flow sensitivity kills some spurious intra-thread flows relative to the
Saber baseline (fewer reports in Table 1), but there is still no path or
interleaving reasoning, so the guard- and order-infeasible patterns are
all reported; and the per-statement snapshots are the memory wall of
Fig. 7b.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..ir.instructions import FreeInst, LoadInst, StoreInst
from ..ir.module import IRModule
from ..ir.values import MemObject, Variable
from ..pointer.flowsensitive import FlowSensitiveResult, flow_sensitive_pointsto
from ..threads.callgraph import build_thread_call_graph
from ..threads.mhp import MhpAnalysis
from .common import BaselineReport, UnguardedVFG, collect_deref_uses, reachable_vars

__all__ = ["FsamBaseline", "FsamResult"]


@dataclass
class FsamResult:
    reports: List[BaselineReport]
    vfg_nodes: int
    vfg_edges: int
    pointsto_facts: int
    iterations: int
    build_seconds: float
    check_seconds: float
    timed_out: bool = False


class FsamBaseline:
    """Sparse flow-sensitive multithreaded UAF detection à la FSAM."""

    def __init__(self, time_budget: Optional[float] = None) -> None:
        self.time_budget = time_budget

    def build_vfg(self, module: IRModule) -> tuple:
        start = time.perf_counter()
        deadline = start + self.time_budget if self.time_budget is not None else None
        tcg = build_thread_call_graph(module)
        mhp = MhpAnalysis(tcg)
        pts = flow_sensitive_pointsto(module, tcg, deadline=deadline)
        graph = UnguardedVFG()
        graph.add_copy_edges(module)
        stores = [
            i
            for f in module.functions.values()
            for i in f.body
            if isinstance(i, StoreInst) and isinstance(i.value, Variable)
        ]
        loads = [
            i
            for f in module.functions.values()
            for i in f.body
            if isinstance(i, LoadInst)
        ]
        # The points-to result says explicitly whether the deadline cut
        # its fixed point short (inferring it from the clock alone could
        # miss a partial result that finished just under the deadline).
        timed_out = pts.timed_out or (
            deadline is not None and time.perf_counter() > deadline
        )
        for store in stores:
            if timed_out:
                break
            if deadline is not None and time.perf_counter() > deadline:
                timed_out = True
                break
            store_pts = pts.points_to(store.pointer)
            if not store_pts:
                continue
            for load in loads:
                shared = {
                    o
                    for o in store_pts & pts.points_to(load.pointer)
                    if isinstance(o, MemObject)
                }
                if not shared:
                    continue
                # Thread-aware def-use: the store reaches the load either
                # flow-sensitively (its value is in the load's incoming
                # memory snapshot) or concurrently (MHP).
                memory = pts.memory_before(load.label)
                value_set = pts.points_to(store.value)
                reaches = any(
                    value_set & memory.get(o, frozenset()) for o in shared
                ) or bool(
                    value_set
                    and mhp.may_happen_in_parallel(store, load)
                )
                if reaches or not value_set:
                    graph.add(store.value, load.dst)
        elapsed = time.perf_counter() - start
        return pts, graph, elapsed, timed_out

    def detect_uaf(self, module: IRModule) -> FsamResult:
        pts, graph, build_seconds, timed_out = self.build_vfg(module)
        start = time.perf_counter()
        reports: List[BaselineReport] = []
        if not timed_out:
            uses = collect_deref_uses(module)
            frees = [
                i
                for f in module.functions.values()
                for i in f.body
                if isinstance(i, FreeInst) and isinstance(i.pointer, Variable)
            ]
            alias_roots: Dict[MemObject, Set[Variable]] = {}
            for func in module.functions.values():
                for inst in func.body:
                    var = inst.defined_var()
                    if var is None:
                        continue
                    for obj in pts.points_to(var):
                        if isinstance(obj, MemObject):
                            alias_roots.setdefault(obj, set()).add(var)
            seen = set()
            for free in frees:
                roots: Set[Variable] = set()
                for obj in pts.points_to(free.pointer):
                    if isinstance(obj, MemObject):
                        roots |= alias_roots.get(obj, set())
                for var in reachable_vars(graph, roots):
                    if not isinstance(var, Variable):
                        continue
                    for use in uses.get(var, ()):
                        if use is free or isinstance(use, FreeInst):
                            continue
                        key = (free.label, use.label)
                        if key in seen:
                            continue
                        seen.add(key)
                        reports.append(BaselineReport("use-after-free", free, use))
        return FsamResult(
            reports=reports,
            vfg_nodes=graph.num_nodes,
            vfg_edges=graph.num_edges,
            pointsto_facts=pts.total_facts,
            iterations=pts.iterations,
            build_seconds=build_seconds,
            check_seconds=time.perf_counter() - start,
            timed_out=timed_out,
        )
