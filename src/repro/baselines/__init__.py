"""Baseline detectors the paper compares against (§7.1):

* :class:`SaberBaseline` — Andersen flow-insensitive, unguarded VFG;
* :class:`FsamBaseline` — exhaustive flow-sensitive, thread-aware VFG.

Both are reimplementations of the published algorithms with the same
report semantics (no path/interleaving reasoning), used by the Fig. 7
and Table 1 benchmarks.
"""

from .common import BaselineReport, UnguardedVFG
from .fsam import FsamBaseline, FsamResult
from .saber import SaberBaseline, SaberResult

__all__ = [
    "BaselineReport",
    "UnguardedVFG",
    "FsamBaseline",
    "FsamResult",
    "SaberBaseline",
    "SaberResult",
]
