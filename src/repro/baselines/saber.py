"""Saber-style baseline detector (paper §7.1, citing Sui et al. [61]).

Pipeline: exhaustive Andersen points-to → unguarded value-flow graph
(store→load edges wherever the points-to sets of the two pointers
intersect, with *no* thread, order, or path reasoning — flow-insensitive
points-to "trivially models the thread interference") → plain
source→sink graph reachability for the use-after-free property.

No guards, no MHP, no SMT: every guard-infeasible and order-infeasible
pattern in a program is reported, which is why Table 1 shows ~100% false
positive rates for this family of tools on concurrency properties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.instructions import FreeInst, LoadInst, StoreInst
from ..ir.module import IRModule
from ..ir.values import MemObject, Variable
from ..pointer.andersen import AndersenResult, andersen
from .common import BaselineReport, UnguardedVFG, collect_deref_uses, reachable_vars

__all__ = ["SaberBaseline", "SaberResult"]


@dataclass
class SaberResult:
    reports: List[BaselineReport]
    vfg_nodes: int
    vfg_edges: int
    pointsto_facts: int
    build_seconds: float
    check_seconds: float
    timed_out: bool = False


class SaberBaseline:
    """Full-sparse, unguarded value-flow UAF detection à la Saber."""

    def __init__(
        self, time_budget: Optional[float] = None, collapse_cycles: bool = False
    ) -> None:
        self.time_budget = time_budget
        self.collapse_cycles = collapse_cycles

    def build_vfg(self, module: IRModule) -> tuple:
        """The Fig. 7 measurement target: points-to + VFG construction."""
        start = time.perf_counter()
        deadline = start + self.time_budget if self.time_budget is not None else None
        pts = andersen(
            module, deadline=deadline, collapse_cycles=self.collapse_cycles
        )
        graph = UnguardedVFG()
        graph.add_copy_edges(module)
        stores = [
            i
            for f in module.functions.values()
            for i in f.body
            if isinstance(i, StoreInst) and isinstance(i.value, Variable)
        ]
        loads = [
            i
            for f in module.functions.values()
            for i in f.body
            if isinstance(i, LoadInst)
        ]
        timed_out = deadline is not None and time.perf_counter() > deadline
        # Exhaustive pairwise aliasing: the quadratic pair scan over an
        # exhaustive points-to result is the cost center.
        for store in stores:
            if timed_out:
                break
            if deadline is not None and time.perf_counter() > deadline:
                timed_out = True
                break
            store_pts = pts.points_to(store.pointer)
            if not store_pts:
                continue
            for load in loads:
                if store_pts & pts.points_to(load.pointer):
                    graph.add(store.value, load.dst)
        elapsed = time.perf_counter() - start
        return pts, graph, elapsed, timed_out

    def detect_uaf(self, module: IRModule) -> SaberResult:
        pts, graph, build_seconds, timed_out = self.build_vfg(module)
        start = time.perf_counter()
        reports: List[BaselineReport] = []
        if not timed_out:
            uses = collect_deref_uses(module)
            frees = [
                i
                for f in module.functions.values()
                for i in f.body
                if isinstance(i, FreeInst) and isinstance(i.pointer, Variable)
            ]
            # Roots: every variable aliasing the freed one (same pts objects).
            alias_roots: Dict[MemObject, Set[Variable]] = {}
            for func in module.functions.values():
                for inst in func.body:
                    for value in (inst.defined_var(),):
                        if value is None:
                            continue
                        for obj in pts.points_to(value):
                            if isinstance(obj, MemObject):
                                alias_roots.setdefault(obj, set()).add(value)
            seen = set()
            for free in frees:
                roots: Set[Variable] = set()
                for obj in pts.points_to(free.pointer):
                    if isinstance(obj, MemObject):
                        roots |= alias_roots.get(obj, set())
                for var in reachable_vars(graph, roots):
                    if not isinstance(var, Variable):
                        continue
                    for use in uses.get(var, ()):
                        if use is free or isinstance(use, FreeInst):
                            continue
                        key = (free.label, use.label)
                        if key in seen:
                            continue
                        seen.add(key)
                        reports.append(
                            BaselineReport("use-after-free", free, use)
                        )
        return SaberResult(
            reports=reports,
            vfg_nodes=graph.num_nodes,
            vfg_edges=graph.num_edges,
            pointsto_facts=pts.total_facts,
            build_seconds=build_seconds,
            check_seconds=time.perf_counter() - start,
            timed_out=timed_out,
        )
