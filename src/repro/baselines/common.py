"""Shared machinery for the baseline detectors.

Both baselines build an *unguarded* value-flow graph from an exhaustive
points-to result and report every source→sink reachable pair without any
realizability checking — that is exactly what makes them fast to
describe and imprecise in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir.instructions import (
    CallInst,
    CopyInst,
    ForkInst,
    FreeInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import IRModule
from ..ir.values import FunctionRef, MemObject, Value, Variable

__all__ = ["UnguardedVFG", "BaselineReport", "collect_deref_uses", "reachable_vars"]


@dataclass
class BaselineReport:
    """A baseline finding: free site and use site, no witness, no guards."""

    kind: str
    source: Instruction
    sink: Instruction

    @property
    def key(self) -> Tuple[int, int]:
        return (self.source.label, self.sink.label)


class UnguardedVFG:
    """Plain def-use graph over variables (no guards, no order info)."""

    def __init__(self) -> None:
        self._succ: Dict[object, Set[object]] = {}
        self.num_edges = 0

    def add(self, src: object, dst: object) -> None:
        succs = self._succ.setdefault(src, set())
        if dst not in succs:
            succs.add(dst)
            self.num_edges += 1

    def successors(self, node: object) -> Set[object]:
        return self._succ.get(node, set())

    @property
    def num_nodes(self) -> int:
        nodes = set(self._succ)
        for succs in self._succ.values():
            nodes |= succs
        return len(nodes)

    def add_copy_edges(self, module: IRModule) -> None:
        """Direct (SSA) flows shared by both baselines."""
        for func in module.functions.values():
            for inst in func.body:
                if isinstance(inst, CopyInst) and isinstance(inst.src, Variable):
                    self.add(inst.src, inst.dst)
                elif isinstance(inst, PhiInst):
                    for value, _g in inst.incomings:
                        if isinstance(value, Variable):
                            self.add(value, inst.dst)
                elif isinstance(inst, (CallInst, ForkInst)):
                    callees = _direct_callees(module, inst)
                    for name in callees:
                        callee = module.functions.get(name)
                        if callee is None:
                            continue
                        for formal, actual in zip(callee.params, inst.args):
                            if isinstance(actual, Variable):
                                self.add(actual, formal)
                        dst = getattr(inst, "dst", None)
                        if dst is not None:
                            for value, _g in callee.returns:
                                if isinstance(value, Variable):
                                    self.add(value, dst)


def _direct_callees(module: IRModule, inst) -> List[str]:
    if isinstance(inst.callee, FunctionRef):
        return [inst.callee.name]
    # Indirect: conservatively all address-taken functions of right arity.
    out = []
    for name, func in module.functions.items():
        if len(func.params) == len(inst.args):
            out.append(name)
    return out


def reachable_vars(graph: UnguardedVFG, roots: Iterable[object]) -> Set[object]:
    seen: Set[object] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.successors(node))
    return seen


def collect_deref_uses(module: IRModule) -> Dict[Variable, List[Instruction]]:
    """var -> instructions dereferencing it (load/store/free)."""
    uses: Dict[Variable, List[Instruction]] = {}
    for func in module.functions.values():
        for inst in func.body:
            ptr: Optional[Value] = None
            if isinstance(inst, (LoadInst, StoreInst)):
                ptr = inst.pointer
            elif isinstance(inst, FreeInst):
                ptr = inst.pointer
            if isinstance(ptr, Variable):
                uses.setdefault(ptr, []).append(inst)
    return uses
