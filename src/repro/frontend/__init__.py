"""MiniCC frontend: lexer, AST, recursive-descent parser.

MiniCC is the concrete syntax for the paper's Fig. 3 call-by-value
language with pointers, dynamic allocation, structured control flow and
fork/join concurrency.  See :mod:`repro.frontend.parser` for the grammar.
"""

from .ast_nodes import Program
from .lexer import Token, tokenize
from .parser import parse_program
from .source import FrontendError, LexError, Location, ParseError

__all__ = [
    "Program",
    "Token",
    "tokenize",
    "parse_program",
    "FrontendError",
    "LexError",
    "Location",
    "ParseError",
]
