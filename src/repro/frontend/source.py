"""Source locations and diagnostics for the MiniCC frontend."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Location", "FrontendError", "LexError", "ParseError"]


@dataclass(frozen=True)
class Location:
    """A position in a source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    @staticmethod
    def unknown() -> "Location":
        return Location(0, 0, "<unknown>")


class FrontendError(Exception):
    """Base class for lexing/parsing errors; carries a location."""

    def __init__(self, message: str, location: Location) -> None:
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class LexError(FrontendError):
    pass


class ParseError(FrontendError):
    pass
