"""Structural fingerprints of AST nodes.

The incremental pipeline decides whether a function must be re-lowered
by comparing content hashes of its (unrolled) AST.  The fingerprint is
*structural*: it covers node types, names, operators and literals but
ignores :class:`~repro.frontend.source.Location` fields, so reformatting
or edits elsewhere in the file do not invalidate a function.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterable, List

from .ast_nodes import FuncDef, Program

__all__ = ["ast_fingerprint", "program_context_fingerprint", "stable_digest"]


def stable_digest(parts: Iterable[str]) -> str:
    """A short, process-independent digest of an iterable of strings."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "backslashreplace"))
        h.update(b"\x1f")
    return h.hexdigest()[:16]


def _encode(obj, out: List[str]) -> None:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out.append(type(obj).__name__)
        for f in dataclasses.fields(obj):
            if f.name == "location":
                continue
            _encode(getattr(obj, f.name), out)
        out.append(";")
    elif isinstance(obj, (list, tuple)):
        out.append(f"[{len(obj)}")
        for item in obj:
            _encode(item, out)
        out.append("]")
    else:
        out.append(repr(obj))


def ast_fingerprint(node) -> str:
    """Content hash of one AST subtree (typically a :class:`FuncDef`)."""
    out: List[str] = []
    _encode(node, out)
    return stable_digest(out)


def program_context_fingerprint(program: Program, unroll_depth: int) -> str:
    """Hash of everything *outside* a function that its lowering depends
    on: the ordered function list (names and arities fix both label-block
    positions and ``FunctionRef`` resolution), global and extern names,
    and the unroll depth.  A context change forces a full re-lowering.
    """
    parts = [f"unroll={unroll_depth}"]
    for i, func in enumerate(program.functions):
        parts.append(f"fn:{i}:{func.name}/{len(func.params)}")
    parts.extend(f"glob:{g.name}" for g in program.globals)
    parts.extend(f"ext:{e.name}" for e in program.externs)
    return stable_digest(parts)
