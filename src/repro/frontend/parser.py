"""Recursive-descent parser for MiniCC.

Grammar (EBNF):

    program     := (extern | global | funcdef)*
    extern      := 'extern' 'int' IDENT ';'
    global      := type IDENT ';'                    (at top level)
    funcdef     := type IDENT '(' params? ')' block
    params      := param (',' param)*
    param       := type IDENT
    type        := ('int' | 'void') '*'*
    block       := '{' stmt* '}'
    stmt        := vardecl | assign | store | if | while | return
                 | fork | join | exprstmt | block
    vardecl     := type IDENT ('=' expr)? ';'
    assign      := IDENT '=' expr ';'
    store       := '*' unary '=' expr ';'
    if          := 'if' '(' expr ')' block ('else' (block | if))?
    while       := 'while' '(' expr ')' block
    return      := 'return' expr? ';'
    fork        := 'fork' '(' IDENT ',' IDENT (',' expr)* ')' ';'
    join        := 'join' '(' IDENT ')' ';'
    exprstmt    := expr ';'

Expressions use standard C precedence for the supported operators.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as A
from .lexer import Token, TokenKind, tokenize
from .source import ParseError

__all__ = ["parse_program", "Parser"]


_BINARY_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["+", "-"],
    ["*", "/", "%"],
]


def parse_program(source: str, filename: str = "<input>") -> A.Program:
    """Parse MiniCC source text into an AST."""
    return Parser(tokenize(source, filename)).parse_program()


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ----- token helpers ------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _next(self) -> Token:
        tok = self._peek()
        self._pos += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.location)
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind != TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.location)
        return tok

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._pos += 1
            return True
        return False

    def _at_type(self) -> bool:
        tok = self._peek()
        return tok.is_keyword("int") or tok.is_keyword("void")

    # ----- top level ----------------------------------------------------

    def parse_program(self) -> A.Program:
        start = self._peek().location
        program = A.Program(location=start)
        while self._peek().kind != TokenKind.EOF:
            tok = self._peek()
            if tok.is_keyword("extern"):
                program.externs.append(self._parse_extern())
            elif self._at_type():
                self._parse_toplevel(program)
            else:
                raise ParseError(
                    f"expected declaration, found {tok.text!r}", tok.location
                )
        return program

    def _parse_extern(self) -> A.ExternDecl:
        loc = self._next().location  # 'extern'
        tok = self._next()
        if not tok.is_keyword("int"):
            raise ParseError("extern declarations must be 'extern int'", tok.location)
        name = self._expect_ident()
        self._expect_punct(";")
        return A.ExternDecl(location=loc, name=name.text)

    def _parse_toplevel(self, program: A.Program) -> None:
        ty = self._parse_type()
        name = self._expect_ident()
        if self._peek().is_punct("("):
            program.functions.append(self._parse_funcdef(ty, name))
        else:
            self._expect_punct(";")
            program.globals.append(
                A.GlobalDecl(location=name.location, type=ty, name=name.text)
            )

    def _parse_type(self) -> A.Type:
        tok = self._next()
        if not (tok.is_keyword("int") or tok.is_keyword("void")):
            raise ParseError(f"expected a type, found {tok.text!r}", tok.location)
        depth = 0
        while self._accept_punct("*"):
            depth += 1
        return A.Type(base=tok.text, pointer_depth=depth)

    def _parse_funcdef(self, return_type: A.Type, name: Token) -> A.FuncDef:
        self._expect_punct("(")
        params: List[A.Param] = []
        if not self._peek().is_punct(")"):
            while True:
                if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                    self._next()
                    break
                ty = self._parse_type()
                pname = self._expect_ident()
                params.append(A.Param(type=ty, name=pname.text))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        body = self._parse_block()
        return A.FuncDef(
            location=name.location,
            name=name.text,
            return_type=return_type,
            params=params,
            body=body,
        )

    # ----- statements ----------------------------------------------------

    def _parse_block(self) -> A.BlockStmt:
        open_tok = self._expect_punct("{")
        body: List[A.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind == TokenKind.EOF:
                raise ParseError("unterminated block", open_tok.location)
            body.append(self._parse_stmt())
        self._expect_punct("}")
        return A.BlockStmt(location=open_tok.location, body=body)

    def _parse_stmt(self) -> A.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("return"):
            return self._parse_return()
        if self._at_type():
            return self._parse_vardecl()
        if tok.kind == TokenKind.IDENT and tok.text == "fork" and self._peek(1).is_punct("("):
            return self._parse_fork()
        if tok.kind == TokenKind.IDENT and tok.text == "join" and self._peek(1).is_punct("("):
            return self._parse_join()
        if tok.is_punct("*"):
            return self._parse_store()
        if tok.kind == TokenKind.IDENT and self._peek(1).is_punct("="):
            name = self._next()
            self._next()  # '='
            value = self._parse_expr()
            self._expect_punct(";")
            return A.AssignStmt(location=name.location, name=name.text, value=value)
        expr = self._parse_expr()
        if self._accept_punct("="):
            # Assignment through a parsed lvalue, e.g. ``p[i] = e;``.
            value = self._parse_expr()
            self._expect_punct(";")
            if isinstance(expr, A.IndexExpr):
                return A.IndexStoreStmt(
                    location=tok.location,
                    base=expr.base,
                    index=expr.index,
                    value=value,
                )
            if isinstance(expr, A.VarExpr):
                return A.AssignStmt(location=tok.location, name=expr.name, value=value)
            raise ParseError("invalid assignment target", tok.location)
        self._expect_punct(";")
        return A.ExprStmt(location=tok.location, expr=expr)

    def _parse_vardecl(self) -> A.VarDeclStmt:
        ty = self._parse_type()
        name = self._expect_ident()
        init: Optional[A.Expr] = None
        if self._accept_punct("="):
            init = self._parse_expr()
        self._expect_punct(";")
        return A.VarDeclStmt(location=name.location, type=ty, name=name.text, init=init)

    def _parse_store(self) -> A.StoreStmt:
        star = self._expect_punct("*")
        pointer = self._parse_unary()
        self._expect_punct("=")
        value = self._parse_expr()
        self._expect_punct(";")
        return A.StoreStmt(location=star.location, pointer=pointer, value=value)

    def _parse_if(self) -> A.IfStmt:
        tok = self._next()  # 'if'
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then_body = self._parse_block()
        else_body: Optional[A.BlockStmt] = None
        if self._peek().is_keyword("else"):
            self._next()
            if self._peek().is_keyword("if"):
                nested = self._parse_if()
                else_body = A.BlockStmt(location=nested.location, body=[nested])
            else:
                else_body = self._parse_block()
        return A.IfStmt(
            location=tok.location, cond=cond, then_body=then_body, else_body=else_body
        )

    def _parse_while(self) -> A.WhileStmt:
        tok = self._next()  # 'while'
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_block()
        return A.WhileStmt(location=tok.location, cond=cond, body=body)

    def _parse_return(self) -> A.ReturnStmt:
        tok = self._next()  # 'return'
        value: Optional[A.Expr] = None
        if not self._peek().is_punct(";"):
            value = self._parse_expr()
        self._expect_punct(";")
        return A.ReturnStmt(location=tok.location, value=value)

    def _parse_fork(self) -> A.ForkStmt:
        tok = self._next()  # 'fork'
        self._expect_punct("(")
        thread = self._expect_ident()
        self._expect_punct(",")
        callee = self._expect_ident()
        args: List[A.Expr] = []
        while self._accept_punct(","):
            args.append(self._parse_expr())
        self._expect_punct(")")
        self._expect_punct(";")
        return A.ForkStmt(
            location=tok.location, thread=thread.text, callee=callee.text, args=args
        )

    def _parse_join(self) -> A.JoinStmt:
        tok = self._next()  # 'join'
        self._expect_punct("(")
        thread = self._expect_ident()
        self._expect_punct(")")
        self._expect_punct(";")
        return A.JoinStmt(location=tok.location, thread=thread.text)

    # ----- expressions ----------------------------------------------------

    def _parse_expr(self) -> A.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(_BINARY_PRECEDENCE):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = _BINARY_PRECEDENCE[level]
        while self._peek().kind == TokenKind.PUNCT and self._peek().text in ops:
            op = self._next()
            rhs = self._parse_binary(level + 1)
            lhs = A.BinaryExpr(location=op.location, op=op.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        if tok.is_punct("-") or tok.is_punct("!"):
            self._next()
            operand = self._parse_unary()
            return A.UnaryExpr(location=tok.location, op=tok.text, operand=operand)
        if tok.is_punct("*"):
            self._next()
            operand = self._parse_unary()
            return A.DerefExpr(location=tok.location, operand=operand)
        if tok.is_punct("&"):
            self._next()
            name = self._expect_ident()
            return A.AddrOfExpr(location=tok.location, name=name.text)
        return self._parse_primary()

    def _parse_primary(self) -> A.Expr:
        expr = self._parse_atom()
        # Postfix indexing: p[i], p[i][j], f(x)[k] ...
        while self._peek().is_punct("["):
            bracket = self._next()
            index = self._parse_expr()
            self._expect_punct("]")
            expr = A.IndexExpr(location=bracket.location, base=expr, index=index)
        return expr

    def _parse_atom(self) -> A.Expr:
        tok = self._next()
        if tok.kind == TokenKind.NUMBER:
            return A.NumberExpr(location=tok.location, value=int(tok.text))
        if tok.is_keyword("null"):
            return A.NullExpr(location=tok.location)
        if tok.kind == TokenKind.IDENT:
            if self._peek().is_punct("("):
                self._next()  # '('
                args: List[A.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                return A.CallExpr(location=tok.location, callee=tok.text, args=args)
            return A.VarExpr(location=tok.location, name=tok.text)
        if tok.is_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.location)
