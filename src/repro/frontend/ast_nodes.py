"""Abstract syntax tree for MiniCC.

The AST mirrors the paper's Fig. 3 syntax: programs are lists of
functions; statements include assignments, pointer loads/stores,
branches, loops, calls, ``return``, ``fork``/``join``, plus the memory
and synchronization intrinsics the checkers consume (``malloc``,
``free``, ``lock``/``unlock``, source/sink markers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .source import Location

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "Program",
    "FuncDef",
    "Param",
    "ExternDecl",
    "GlobalDecl",
    "NumberExpr",
    "NullExpr",
    "VarExpr",
    "UnaryExpr",
    "BinaryExpr",
    "CallExpr",
    "DerefExpr",
    "AddrOfExpr",
    "IndexExpr",
    "VarDeclStmt",
    "AssignStmt",
    "StoreStmt",
    "IndexStoreStmt",
    "IfStmt",
    "WhileStmt",
    "ReturnStmt",
    "ExprStmt",
    "BlockStmt",
    "ForkStmt",
    "JoinStmt",
]


@dataclass
class Node:
    location: Location


# --------------------------------------------------------------------------
# Expressions


@dataclass
class Expr(Node):
    pass


@dataclass
class NumberExpr(Expr):
    value: int


@dataclass
class NullExpr(Expr):
    pass


@dataclass
class VarExpr(Expr):
    name: str


@dataclass
class UnaryExpr(Expr):
    op: str  # '-', '!'
    operand: Expr


@dataclass
class BinaryExpr(Expr):
    op: str  # + - * / % < <= > >= == != && ||
    lhs: Expr
    rhs: Expr


@dataclass
class CallExpr(Expr):
    """A call in expression position: ``f(a, b)`` or intrinsics like
    ``malloc()``, ``nondet()``, ``taint_source()``."""

    callee: str
    args: List[Expr]


@dataclass
class DerefExpr(Expr):
    """``*e`` in rvalue position (a load)."""

    operand: Expr


@dataclass
class AddrOfExpr(Expr):
    """``&x``: the address of a local or global variable."""

    name: str


@dataclass
class IndexExpr(Expr):
    """``p[e]`` in rvalue position.

    Arrays are monolithic (paper §6): the index is evaluated for effect
    but the access reads the array object as a whole, i.e. it lowers to
    a plain load through ``p``.
    """

    base: Expr
    index: Expr


# --------------------------------------------------------------------------
# Declarations / statements


@dataclass
class Type:
    """MiniCC types: ``int`` with N levels of pointer indirection, or void."""

    base: str  # 'int' or 'void'
    pointer_depth: int = 0

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth


@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDeclStmt(Stmt):
    type: Type
    name: str
    init: Optional[Expr]


@dataclass
class AssignStmt(Stmt):
    """``x = e;``"""

    name: str
    value: Expr


@dataclass
class StoreStmt(Stmt):
    """``*x = e;``"""

    pointer: Expr
    value: Expr


@dataclass
class IndexStoreStmt(Stmt):
    """``p[e1] = e2;`` — a store into the (monolithic) array object."""

    base: Expr
    index: Expr
    value: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: "BlockStmt"
    else_body: Optional["BlockStmt"]


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: "BlockStmt"


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect, e.g. ``free(p);`` or ``g(x);``"""

    expr: Expr


@dataclass
class BlockStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ForkStmt(Stmt):
    """``fork(t, f, args...);`` — start thread ``t`` running ``f``.

    ``callee`` may name a function or a function-pointer variable (resolved
    via Steensgaard's analysis when building the thread call graph).
    """

    thread: str
    callee: str
    args: List[Expr]


@dataclass
class JoinStmt(Stmt):
    """``join(t);``"""

    thread: str


# --------------------------------------------------------------------------
# Top level


@dataclass
class Param:
    type: Type
    name: str


@dataclass
class FuncDef(Node):
    name: str
    return_type: Type
    params: List[Param]
    body: BlockStmt


@dataclass
class ExternDecl(Node):
    """``extern int name;`` — a symbolic configuration constant.

    Reads of an extern anywhere in the program denote the *same* symbolic
    value, which is how correlated branch conditions across threads (the
    ``theta`` of the paper's Fig. 2) arise.
    """

    name: str


@dataclass
class GlobalDecl(Node):
    """``int* g;`` at top level — a global memory cell (address-taken)."""

    type: Type
    name: str


@dataclass
class Program(Node):
    functions: List[FuncDef] = field(default_factory=list)
    externs: List[ExternDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")
