"""Lexer for MiniCC, the concurrent C-like input language.

MiniCC is the concrete syntax for the paper's Fig. 3 language: functions,
integers and pointers, ``malloc``/``free``, ``fork``/``join``,
``lock``/``unlock``, branches and loops, and a handful of intrinsic
source/sink operations used by the checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .source import LexError, Location

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]


class TokenKind:
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "int",
        "void",
        "if",
        "else",
        "while",
        "return",
        "extern",
        "null",
        "struct",
    }
)

_PUNCTS = [
    "&&", "||", "==", "!=", "<=", ">=",
    "{", "}", "(", ")", "[", "]", ";", ",",
    "=", "<", ">", "+", "-", "*", "/", "%", "!", "&", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    location: Location

    def is_punct(self, text: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == text


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize MiniCC source text; raises :class:`LexError` on bad input."""
    return list(_scan(source, filename))


def _scan(source: str, filename: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def loc() -> Location:
        return Location(line, col, filename)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", loc())
            for c in source[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        if ch.isdigit():
            start, start_loc = i, loc()
            while i < n and source[i].isdigit():
                i += 1
            col += i - start
            yield Token(TokenKind.NUMBER, source[start:i], start_loc)
            continue
        if ch.isalpha() or ch == "_":
            start, start_loc = i, loc()
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            col += i - start
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            yield Token(kind, text, start_loc)
            continue
        if ch == '"':
            start_loc = loc()
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise LexError("unterminated string literal", start_loc)
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", start_loc)
            text = source[i + 1 : j]
            col += j + 1 - i
            i = j + 1
            yield Token(TokenKind.STRING, text, start_loc)
            continue
        matched = False
        for p in _PUNCTS:
            if source.startswith(p, i):
                yield Token(TokenKind.PUNCT, p, loc())
                i += len(p)
                col += len(p)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", loc())
    yield Token(TokenKind.EOF, "", loc())
