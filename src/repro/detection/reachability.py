"""Sink-directed reachability indexing for demand-driven path search.

The blind forward DFS of the original searcher (paper §5.1) only learns
that a subtree is useless after exhausting it.  Following DFI's
demand-driven value-flow indexing (PAPERS.md), this module inverts the
question: *before* the search starts, compute — once per sink class —
which VFG nodes can reach a sink at all, and with what calling-context
obligation, so ``_dfs`` refuses to enter provably useless subtrees.

Plain backward reachability would ignore the context discipline the
forward search enforces (call/return matching, unreturnable fork
edges), so the index tracks one integer per node: the minimal number of
*base-level returns* some node→sink path needs, i.e. how far below the
node's entry context depth the path must pop.

Backward transfer along an edge ``src --e--> dst`` (``k`` = need at
``dst``):

* ``direct``/``alloc``/``store``/``load`` — need ``k`` (no context op);
* ``ret``      — need ``k + 1`` (the path pops one level immediately);
* ``call``     — need ``max(k - 1, 0)`` (the push absorbs one pop);
* ``forkarg``  — admissible only when ``k == 0``: a fork marker can
  never be popped, so the suffix must stay at or above the fork depth.

Needs saturate at ``context_depth`` (storing a smaller need than the
true one is conservative: it only admits more).  Call/return *site*
matching and the context-depth cap on pushes are deliberately ignored —
both only shrink the set of admissible forward paths, so the index
over-approximates and pruning stays exact: it never cuts a subtree the
reference DFS could extract a candidate from.

At search time the test is ``min_need(node) <= avail(context)`` where
``avail`` counts the context entries above the topmost fork marker
(∞ when there is none — returns past the bottom of the stack are the
legal "unbalanced-up" exits).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..vfg.graph import ValueFlowGraph, VFGNode

__all__ = ["INFINITE_AVAIL", "ReachabilityIndexCache", "SinkReachabilityIndex"]

#: "no fork marker on the context stack": any number of base-level
#: returns is admissible (unbalanced-up past the stack bottom is legal).
INFINITE_AVAIL = 1 << 30


class SinkReachabilityIndex:
    """Backward context-polarity reachability from a checker's sink set."""

    def __init__(
        self,
        vfg: ValueFlowGraph,
        sinks: Iterable[VFGNode],
        context_depth: int = 6,
    ) -> None:
        cap = max(1, context_depth)
        needs: Dict[VFGNode, int] = {s: 0 for s in sinks}
        self.num_sinks = len(needs)
        work = deque(needs)
        while work:
            node = work.popleft()
            k = needs[node]  # may have improved since it was queued
            for edge in vfg.in_edges(node):
                kind = edge.kind
                if kind == "ret":
                    nk = min(k + 1, cap)
                elif kind == "call":
                    nk = k - 1 if k > 0 else 0
                elif kind == "forkarg":
                    if k != 0:
                        continue
                    nk = 0
                else:
                    nk = k
                cur = needs.get(edge.src)
                if cur is None or nk < cur:
                    needs[edge.src] = nk
                    work.append(edge.src)
        self._needs = needs
        self.num_reachable = len(needs)
        self.built_at_version = getattr(vfg, "version", None)

    def min_need(self, node: VFGNode) -> Optional[int]:
        return self._needs.get(node)

    def can_enter(self, node: VFGNode, avail: int = INFINITE_AVAIL) -> bool:
        """May an admissible suffix from ``node`` (whose context allows
        ``avail`` base-level returns) still reach a sink?"""
        need = self._needs.get(node)
        return need is not None and need <= avail


class ReachabilityIndexCache:
    """Cross-run memo of sink-set → index, bounded by LRU eviction.

    Checkers that share a sink class (identical sink node sets over the
    same VFG — e.g. two pointer-dereference properties) share one index;
    the cache key is the sink set itself, so sharing is by construction
    rather than by checker name.

    Entries are keyed by graph identity and validated against the VFG
    version stamped at build time, so an index of a mutated (or dead)
    graph can never serve a hit.  Past ``capacity`` entries the
    least-recently-used index is evicted — a resident daemon cycling
    many subjects keeps its hot sink classes warm instead of losing the
    whole cache (the pre-LRU behavior discarded everything past a size
    threshold, zeroing the hit rate exactly when the cache mattered).
    Thread-safe: the daemon's worker pool shares one instance.
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = max(1, capacity)
        self._indexes: "OrderedDict[Tuple[int, FrozenSet[VFGNode], int], SinkReachabilityIndex]" = (
            OrderedDict()
        )
        self._graphs: Dict[int, ValueFlowGraph] = {}  # keep ids stable
        self._lock = threading.Lock()
        self.builds = 0
        self.shared_hits = 0
        self.evictions = 0

    def get(
        self,
        vfg: ValueFlowGraph,
        sinks: Iterable[VFGNode],
        context_depth: int = 6,
    ) -> SinkReachabilityIndex:
        key = (id(vfg), frozenset(sinks), max(1, context_depth))
        with self._lock:
            index = self._indexes.get(key)
            if index is not None and index.built_at_version == getattr(
                vfg, "version", None
            ):
                self._indexes.move_to_end(key)
                self.shared_hits += 1
                return index
        # Build outside the lock: indexing is the expensive part, and a
        # duplicate build by a racing thread is harmless (last write wins,
        # both indexes are equally valid for their graph version).
        index = SinkReachabilityIndex(vfg, key[1], key[2])
        with self._lock:
            self._indexes[key] = index
            self._indexes.move_to_end(key)
            self._graphs[id(vfg)] = vfg
            self.builds += 1
            while len(self._indexes) > self.capacity:
                old_key, _ = self._indexes.popitem(last=False)
                self.evictions += 1
                if not any(k[0] == old_key[0] for k in self._indexes):
                    self._graphs.pop(old_key[0], None)
        return index

    @property
    def hit_rate(self) -> float:
        total = self.builds + self.shared_hits
        return self.shared_hits / total if total else 0.0

    def statistics(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._indexes),
                "builds": self.builds,
                "shared_hits": self.shared_hits,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._indexes)
