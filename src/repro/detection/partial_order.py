"""Execution-order constraint generation (paper §4.2.2 and §5.1).

Every statement ℓ gets a strict-order variable ``O_ℓ`` (an SMT integer).
Two families of constraints are built here:

* ``Φ_po`` (Eq. 4) — program order: intra-thread control-flow order and
  inter-thread fork/join order, encoded for every pair of statements that
  the structural happens-before analysis can order;
* ``Φ_ls`` (Eq. 2) — load-store order for an indirect value-flow edge:
  the store happens before the load, and no other interfering store to
  the same object lands in between.

As the paper notes, order constraints between statements whose order is
statically known are folded via happens-before instead of being left to
the solver.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..ir.instructions import Instruction, StoreInst
from ..ir.values import MemObject
from ..smt.terms import TRUE, BoolTerm, IntTerm, and_, implies, int_var, lt, or_
from ..threads.mhp import MhpAnalysis
from ..vfg.builder import VFGBundle
from ..vfg.graph import VFGEdge

__all__ = ["order_var", "OrderConstraintBuilder"]


def order_var(inst: Instruction) -> IntTerm:
    """The strict-order variable ``O_ℓ`` of a statement."""
    return int_var(f"O{inst.label}")


class OrderConstraintBuilder:
    """Builds Φ_po and Φ_ls for a value-flow path.

    With a :class:`~repro.threads.locks.LockAnalysis` attached, also adds
    mutual-exclusion constraints between critical sections of the same
    mutex (the future-work lock/unlock extension).
    """

    def __init__(
        self,
        bundle: VFGBundle,
        lock_analysis=None,
        memory_model: str = "sc",
    ) -> None:
        if memory_model not in ("sc", "tso", "pso"):
            raise ValueError(f"unknown memory model {memory_model!r}")
        self.bundle = bundle
        self.mhp: MhpAnalysis = bundle.mhp
        self.lock_analysis = lock_analysis
        self.memory_model = memory_model
        self._condvars = None

    @property
    def condvars(self):
        """Lazily built :class:`~repro.threads.condvars.CondVarAnalysis`."""
        if self._condvars is None:
            from ..threads.condvars import CondVarAnalysis

            self._condvars = CondVarAnalysis(self.bundle.module, self.mhp)
        return self._condvars

    # ----- Φ_po (Eq. 4) -----------------------------------------------------

    def program_order_pair(self, a: Instruction, b: Instruction) -> BoolTerm:
        """``PO(a, b)``: the program-order relation between two statements,
        or TRUE when they are unordered (concurrent).

        Under the relaxed-memory extension (paper future work 2), some
        intra-thread orders are dropped: TSO lets a store pass a later
        load of a different location; PSO additionally lets stores to
        different locations reorder.  Fork/join edges always order (they
        act as full fences).
        """
        if a is b:
            return TRUE
        if self.mhp.happens_before(a, b):
            if self._relaxed(a, b):
                return TRUE
            return lt(order_var(a), order_var(b))
        if self.mhp.happens_before(b, a):
            if self._relaxed(b, a):
                return TRUE
            return lt(order_var(b), order_var(a))
        return TRUE

    def _relaxed(self, first: Instruction, second: Instruction) -> bool:
        """Is the program order ``first <P second`` dropped by the model?

        Only *same-function* pairs relax — cross-thread fork/join orders
        are fences.  Pairs on the same memory object stay ordered (the
        models preserve per-location coherence); without a must-alias
        proof we only relax pairs whose pointers are distinct SSA values.
        """
        if self.memory_model == "sc":
            return False
        from ..ir.instructions import LoadInst, StoreInst

        same_func = self.bundle.module.function_of(first) == (
            self.bundle.module.function_of(second)
        )
        if not same_func:
            return False
        if isinstance(first, StoreInst) and isinstance(second, LoadInst):
            return first.pointer is not second.pointer  # TSO and PSO
        if self.memory_model == "pso" and isinstance(first, StoreInst) and isinstance(
            second, StoreInst
        ):
            return first.pointer is not second.pointer
        return False

    def program_order(self, statements: Sequence[Instruction]) -> BoolTerm:
        """Φ_po over all statement pairs of a path (Eq. 4)."""
        parts: List[BoolTerm] = []
        unique: List[Instruction] = []
        seen = set()
        for s in statements:
            if s is not None and s.label not in seen:
                seen.add(s.label)
                unique.append(s)
        for i in range(len(unique)):
            for j in range(i + 1, len(unique)):
                parts.append(self.program_order_pair(unique[i], unique[j]))
        return and_(*parts)

    # ----- Φ_ls (Eq. 2) -----------------------------------------------------

    def load_store_order(self, edge: VFGEdge) -> BoolTerm:
        """Φ_ls for one indirect (store→load) value-flow edge.

        ``O_s < O_l`` plus, for every other store ``s'`` that may write the
        same object and may interleave, ``O_s' < O_s or O_l < O_s'`` —
        guarded by the condition under which ``s'`` actually writes the
        object, which keeps the encoding path-sensitive.
        """
        store, load, obj = edge.store, edge.load, edge.obj
        if store is None or load is None or obj is None:
            return TRUE
        parts: List[BoolTerm] = []
        if not self.mhp.happens_before(store, load):
            parts.append(lt(order_var(store), order_var(load)))
        for other, alias_guard in self.bundle.object_stores.get(obj, ()):  # S(l)
            if other is store:
                continue
            if not self._may_intervene(other, store, load):
                continue
            no_overwrite = or_(
                lt(order_var(other), order_var(store)),
                lt(order_var(load), order_var(other)),
            )
            parts.append(implies(and_(other.guard, alias_guard), no_overwrite))
            # Pin the intervening store with its statically-known order
            # relative to both endpoints, otherwise the solver may place
            # it anywhere and the disjunction above loses its teeth.
            parts.append(self.program_order_pair(other, store))
            parts.append(self.program_order_pair(other, load))
        return and_(*parts)

    def interfering_stores(self, edge: VFGEdge) -> List[StoreInst]:
        """The S(l) stores whose order variables Φ_ls mentions — needed by
        callers that add further constraints about them (e.g. mutexes)."""
        store, load, obj = edge.store, edge.load, edge.obj
        if store is None or load is None or obj is None:
            return []
        return [
            other
            for other, _g in self.bundle.object_stores.get(obj, ())
            if other is not store and self._may_intervene(other, store, load)
        ]

    # ----- mutual exclusion (lock/unlock extension) --------------------------

    def mutex_exclusion(self, statements: Sequence[Instruction]) -> BoolTerm:
        """Mutual-exclusion constraints for every pair of statements in
        distinct same-mutex critical sections that may run in parallel."""
        if self.lock_analysis is None:
            return TRUE
        parts: List[BoolTerm] = []
        seen_regions = set()
        unique: List[Instruction] = []
        seen = set()
        for s in statements:
            if s is not None and s.label not in seen:
                seen.add(s.label)
                unique.append(s)
        for i, a in enumerate(unique):
            for b in unique[i + 1 :]:
                if not self.mhp.may_happen_in_parallel(a, b):
                    continue
                for ra, rb in self.lock_analysis.common_mutex_regions(a, b):
                    key = tuple(sorted((ra.lock.label, rb.lock.label)))
                    if key in seen_regions:
                        continue
                    seen_regions.add(key)
                    parts.append(
                        or_(
                            lt(order_var(ra.unlock), order_var(rb.lock)),
                            lt(order_var(rb.unlock), order_var(ra.lock)),
                        )
                    )
        # Section-internal orders for every region touched.
        for s in unique:
            for region in self.lock_analysis.regions_of(s):
                parts.append(lt(order_var(region.lock), order_var(s)))
                parts.append(lt(order_var(s), order_var(region.unlock)))
        return and_(*parts)

    # ----- signal→wait edges (condition-variable extension) -------------------

    def signal_wait_order(self, statements: Sequence[Instruction]) -> BoolTerm:
        """Signal→wait ordering edges for every wait statement on a path.

        For each ``wait(c)`` the disjunction ``⋁ O_s < O_w`` over the
        condition's signal sites forces *some* signal before the wait;
        each mentioned signal is additionally pinned to the other path
        statements via its statically-known program order (mirroring the
        Φ_ls treatment of interfering stores).  Signal/wait edges are
        fences — no memory-model relaxation applies (``_relaxed`` only
        weakens load/store pairs).
        """
        cv = self.condvars
        if not cv.has_sync():
            return TRUE
        unique: List[Instruction] = []
        seen = set()
        for s in statements:
            if s is not None and s.label not in seen:
                seen.add(s.label)
                unique.append(s)
        # The waits that constrain this formula: those in the statement
        # universe, plus those ordered before some statement in it (a
        # path statement after a wait inherits the signal ordering the
        # same way a statement inside a lock region inherits O_lock<O_s).
        waits = []
        wseen = set()
        for cond in cv.conditions:
            for w in cv.waits_of(cond):
                if w.label in wseen:
                    continue
                if any(
                    w is st or self.mhp.happens_before(w, st) for st in unique
                ):
                    wseen.add(w.label)
                    waits.append(w)
        parts: List[BoolTerm] = []
        mentioned: List[Instruction] = []
        for w in waits:
            signals = cv.signals_of(w.cond)
            if not signals:
                continue  # un-signalled condition: no constraint (soundy)
            disj = [
                lt(order_var(s), order_var(w))
                for s in signals
                if not self.mhp.happens_before(w, s)
            ]
            if not disj:
                # Every signal is ordered after the wait: the wait can
                # never be released, so nothing past it executes.
                from ..smt.terms import FALSE

                return FALSE
            parts.append(or_(*disj))
            mentioned.extend(
                s for s in signals if not self.mhp.happens_before(w, s)
            )
            for st in unique:
                parts.append(self.program_order_pair(w, st))
        for s in mentioned:
            for st in unique:
                parts.append(self.program_order_pair(s, st))
        return and_(*parts)

    def _may_intervene(
        self, other: StoreInst, store: StoreInst, load: Instruction
    ) -> bool:
        """Can ``other`` possibly execute between ``store`` and ``load``?

        Statically-ordered stores (happens-before the store, or after the
        load) cannot; everything else — in particular stores that may
        happen in parallel with either endpoint — can.
        """
        if self.mhp.happens_before(other, store):
            return False
        if self.mhp.happens_before(load, other):
            return False
        mhp_any = self.mhp.may_happen_in_parallel(
            other, store
        ) or self.mhp.may_happen_in_parallel(other, load)
        if mhp_any:
            return True
        # Same-thread store strictly between the two endpoints: the
        # intra-procedural kill analysis already refined the edge guard,
        # but cross-function same-thread stores still need the constraint.
        return True
