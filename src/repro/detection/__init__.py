"""Guarded reachability detection (paper §5, Fig. 1 right half)."""

from .partial_order import OrderConstraintBuilder, order_var
from .reachability import ReachabilityIndexCache, SinkReachabilityIndex
from .realizability import (
    PathQuery,
    RealizabilityChecker,
    RealizabilityResult,
    StreamingSolver,
    VerdictCache,
)
from .search import (
    PathSearcher,
    SearchLimits,
    SearchStatistics,
    TruncationEvent,
    ValueFlowPath,
)

__all__ = [
    "OrderConstraintBuilder",
    "order_var",
    "PathQuery",
    "ReachabilityIndexCache",
    "RealizabilityChecker",
    "RealizabilityResult",
    "SinkReachabilityIndex",
    "StreamingSolver",
    "VerdictCache",
    "PathSearcher",
    "SearchLimits",
    "SearchStatistics",
    "TruncationEvent",
    "ValueFlowPath",
]
