"""Guarded reachability detection (paper §5, Fig. 1 right half)."""

from .partial_order import OrderConstraintBuilder, order_var
from .realizability import (
    PathQuery,
    RealizabilityChecker,
    RealizabilityResult,
    VerdictCache,
)
from .search import PathSearcher, SearchLimits, ValueFlowPath

__all__ = [
    "OrderConstraintBuilder",
    "order_var",
    "PathQuery",
    "RealizabilityChecker",
    "RealizabilityResult",
    "VerdictCache",
    "PathSearcher",
    "SearchLimits",
    "ValueFlowPath",
]
