"""Realizability checking of value-flow paths (paper §5.2).

For a candidate source→sink path, assemble

    Φ_all(π) = Φ_guards(π) ∧ Φ_ls(π) ∧ Φ_po(π) ∧ Φ_extra

(Eq. 5 plus the checker-specific constraints such as ``O_free < O_use``)
and decide it with the SMT solver.  SAT means the path corresponds to a
feasible sequentially-consistent interleaving and the bug is reported,
together with a *witness order* extracted from the model.

Per the paper, path queries are mutually independent, so a thread pool
can solve them in parallel; complex queries can fall back to
cube-and-conquer splitting.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir.instructions import Instruction
from ..smt.portfolio import cube_solve
from ..smt.solver import SAT, UNKNOWN, UNSAT, Model, Solver
from ..smt.terms import TRUE, BoolTerm, and_
from ..vfg.builder import VFGBundle
from .partial_order import OrderConstraintBuilder, order_var
from .search import ValueFlowPath

__all__ = ["PathQuery", "RealizabilityChecker", "RealizabilityResult"]


@dataclass
class PathQuery:
    """One candidate bug: a path plus its endpoint statements.

    ``alias_guard`` carries non-order side conditions (e.g. the freed
    object's pointed-to-by guard); ``extra_constraints`` carry the
    checker's order requirements (e.g. ``O_free < O_use``).  The split
    lets :meth:`RealizabilityChecker.explain_refutation` attribute an
    UNSAT verdict to guards vs. ordering.
    """

    path: ValueFlowPath
    source_inst: Optional[Instruction]
    sink_inst: Optional[Instruction]
    extra_constraints: Tuple[BoolTerm, ...] = ()
    alias_guard: BoolTerm = TRUE


@dataclass
class RealizabilityResult:
    realizable: bool
    verdict: str  # 'sat' | 'unsat' | 'unknown'
    formula: BoolTerm = TRUE
    witness_order: Dict[str, int] = field(default_factory=dict)
    #: the model's non-order assignments, for witness replay:
    #: {'ints': extern-name -> int, 'bools': atom-name -> bool}
    witness_env: Dict[str, Dict] = field(default_factory=dict)


class RealizabilityChecker:
    """Assembles Φ_all and decides it."""

    def __init__(
        self,
        bundle: VFGBundle,
        use_cube_and_conquer: bool = False,
        solver_max_conflicts: Optional[int] = 100_000,
        order_constraints: bool = True,
        lock_analysis=None,
        memory_model: str = "sc",
    ) -> None:
        self.bundle = bundle
        self.orders = OrderConstraintBuilder(
            bundle, lock_analysis=lock_analysis, memory_model=memory_model
        )
        self.use_cube_and_conquer = use_cube_and_conquer
        self.solver_max_conflicts = solver_max_conflicts
        self.order_constraints = order_constraints
        self.statistics = {"queries": 0, "sat": 0, "unsat": 0, "unknown": 0}

    # ----- formula assembly -------------------------------------------------

    def formula_for(self, query: PathQuery) -> BoolTerm:
        parts: List[BoolTerm] = []
        # Φ_guards: the aggregated guards along the path (Eq. 5) plus the
        # endpoint statements' own path conditions.
        mentioned: List[Instruction] = []
        for edge in query.path.edges:
            parts.append(edge.guard)
            if edge.kind == "load" and self.order_constraints:
                parts.append(self.orders.load_store_order(edge))  # Φ_ls
                mentioned.extend(self.orders.interfering_stores(edge))
        if query.source_inst is not None:
            parts.append(query.source_inst.guard)
        if query.sink_inst is not None:
            parts.append(query.sink_inst.guard)
        if self.order_constraints:
            # Φ_po over every statement involved (Eq. 4).
            statements = query.path.statements(self.bundle)
            for endpoint in (query.source_inst, query.sink_inst):
                if endpoint is not None:
                    statements.append(endpoint)
            parts.append(self.orders.program_order(statements))
            # Lock/unlock extension: mutual exclusion over everything the
            # formula mentions (path, endpoints, interfering stores).
            parts.append(self.orders.mutex_exclusion(statements + mentioned))
        parts.append(query.alias_guard)
        parts.extend(query.extra_constraints)
        return and_(*parts)

    def guards_only_formula(self, query: PathQuery) -> BoolTerm:
        """Only Φ_guards (edge guards + endpoint path conditions + alias
        guard) — no Φ_ls, no Φ_po, no checker order constraints."""
        parts: List[BoolTerm] = [query.alias_guard]
        for edge in query.path.edges:
            parts.append(edge.guard)
        if query.source_inst is not None:
            parts.append(query.source_inst.guard)
        if query.sink_inst is not None:
            parts.append(query.sink_inst.guard)
        return and_(*parts)

    def explain_refutation(self, query: PathQuery) -> str:
        """Why was an unrealizable candidate refuted?

        * ``'guard-contradiction'`` — the aggregated branch/alias guards
          alone are UNSAT (the Fig. 2 class);
        * ``'order-violation'`` — the guards are consistent but no total
          order satisfies Φ_ls ∧ Φ_po plus the checker's requirements
          (the Fig. 5(b) / fork-join class).
        """
        solver = Solver(max_conflicts=self.solver_max_conflicts)
        solver.add(self.guards_only_formula(query))
        if solver.check() is UNSAT:
            return "guard-contradiction"
        return "order-violation"

    # ----- deciding ------------------------------------------------------------

    def check(self, query: PathQuery) -> RealizabilityResult:
        self.statistics["queries"] += 1
        formula = self.formula_for(query)
        if self.use_cube_and_conquer:
            verdict = cube_solve(formula)
            model = None
        else:
            solver = Solver(max_conflicts=self.solver_max_conflicts)
            solver.add(formula)
            verdict = solver.check()
            model = solver.model()
        if verdict is SAT:
            self.statistics["sat"] += 1
            witness = {}
            witness_env: Dict[str, Dict] = {"ints": {}, "bools": {}}
            if model is not None:
                for name, value in model.order().items():
                    if name.startswith("O") and name[1:].isdigit():
                        # Statement order variables O<label>.
                        witness[name] = value
                    else:
                        witness_env["ints"][name] = value
                from ..smt.terms import BoolVar

                for atom, truth in model.bool_assignments().items():
                    if isinstance(atom, BoolVar):
                        witness_env["bools"][atom.name] = truth
            return RealizabilityResult(True, "sat", formula, witness, witness_env)
        if verdict is UNSAT:
            self.statistics["unsat"] += 1
            return RealizabilityResult(False, "unsat", formula)
        self.statistics["unknown"] += 1
        # Budget exhausted: soundy choice — do not report (low FP bias).
        return RealizabilityResult(False, "unknown", formula)

    def check_many(
        self, queries: Sequence[PathQuery], parallel: bool = False, max_workers: int = 4
    ) -> List[RealizabilityResult]:
        """Decide many independent path queries (§5.2: parallelizable)."""
        if not parallel or len(queries) < 2:
            return [self.check(q) for q in queries]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(self.check, queries))
