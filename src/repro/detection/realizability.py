"""Realizability checking of value-flow paths (paper §5.2).

For a candidate source→sink path, assemble

    Φ_all(π) = Φ_guards(π) ∧ Φ_ls(π) ∧ Φ_po(π) ∧ Φ_extra

(Eq. 5 plus the checker-specific constraints such as ``O_free < O_use``)
and decide it with the SMT solver.  SAT means the path corresponds to a
feasible sequentially-consistent interleaving and the bug is reported,
together with a *witness order* extracted from the model.

Per the paper, path queries are mutually independent, so batches can be
solved in parallel.  Two backends implement that:

* ``'process'`` — formulas are assembled in the parent, deduplicated,
  and shipped to a ``ProcessPoolExecutor`` (terms pickle structurally
  and re-intern in the worker; results come back as plain dicts).  This
  is the only backend that actually scales the pure-Python solver past
  the GIL.
* ``'thread'`` — a ``ThreadPoolExecutor`` fallback for environments
  where spawning processes is unavailable or the batch is tiny.

Either way, verdicts are memoized in a :class:`VerdictCache` keyed on
the canonicalized Φ_all (interning makes structural equality identity,
so the formula object itself is the key), shared across all checkers of
one ``Canary`` run.  Statistics are accumulated under a lock and merged
from workers, so counters are exact under any backend.

Fault tolerance: a dead worker process (OOM-killed, segfaulted, or
fault-injected) is never silent.  The streaming path retries the
affected formula on a respawned pool with exponential backoff before
re-solving it in-process; every pool failure is counted in the solver
statistics (``pool_failures`` / ``pool_retries`` / ``pool_local_solves``)
with the triggering exception recorded, and
:meth:`RealizabilityChecker.degradation_summary` turns the counters into
the report's degradation warnings.  Per-query budgets
(``solver_timeout`` seconds, optionally clipped by the run's
:class:`~repro.analysis.budget.Budget`) ride along with each payload, so
a stalled query returns ``UNKNOWN`` (reason recorded) instead of
wedging a worker.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir.instructions import Instruction
from ..obs.metrics import Counter, MetricsRegistry
from ..obs.tracer import NULL_TRACER, SpanContext, SpanRecorder, Tracer
from ..smt.solver import SAT, UNKNOWN, UNSAT, Solver, solve_formula
from ..smt.terms import TRUE, BoolTerm, and_
from ..vfg.builder import VFGBundle
from .partial_order import OrderConstraintBuilder, order_var
from .search import ValueFlowPath

__all__ = [
    "PathQuery",
    "RealizabilityChecker",
    "RealizabilityResult",
    "StreamingSolver",
    "VerdictCache",
]

#: backends accepted by check_many / AnalysisConfig.solver_backend
BACKENDS = ("thread", "process")


@dataclass
class PathQuery:
    """One candidate bug: a path plus its endpoint statements.

    ``alias_guard`` carries non-order side conditions (e.g. the freed
    object's pointed-to-by guard); ``extra_constraints`` carry the
    checker's order requirements (e.g. ``O_free < O_use``).  The split
    lets :meth:`RealizabilityChecker.explain_refutation` attribute an
    UNSAT verdict to guards vs. ordering.
    """

    path: ValueFlowPath
    source_inst: Optional[Instruction]
    sink_inst: Optional[Instruction]
    extra_constraints: Tuple[BoolTerm, ...] = ()
    alias_guard: BoolTerm = TRUE
    #: additional statements (beyond path + endpoints) whose order
    #: variables the checker's extra_constraints mention — they join the
    #: Φ_po / mutual-exclusion statement universe and contribute their
    #: own path conditions (e.g. the local write of an RMW pair for the
    #: atomicity checker).
    extra_statements: Tuple[Instruction, ...] = ()


@dataclass
class RealizabilityResult:
    realizable: bool
    verdict: str  # 'sat' | 'unsat' | 'unknown'
    formula: BoolTerm = TRUE
    witness_order: Dict[str, int] = field(default_factory=dict)
    #: the model's non-order assignments, for witness replay:
    #: {'ints': extern-name -> int, 'bools': atom-name -> bool}
    witness_env: Dict[str, Dict] = field(default_factory=dict)
    #: why an 'unknown' verdict was undecided ('conflicts', 'deadline',
    #: 'theory-rounds'); empty for decided verdicts.  An UNKNOWN is a
    #: budget outcome, never evidence of (un)realizability.
    unknown_reason: str = ""


#: a cached verdict: (verdict, ints, bool atoms, unknown reason)
_CacheEntry = Tuple[str, Dict[str, int], Dict[str, bool], str]


class VerdictCache:
    """Structural Φ_all → verdict memo, shared across checkers of a run.

    Keys are the formula terms themselves: the term DSL hash-conses, so
    two structurally identical Φ_all are the same object and repeated
    queries (the common case when many paths share guards and order
    skeletons, cf. DFI's reuse of solved sub-queries) hit the cache.
    Entries store only plain data — safe to materialize into fresh
    :class:`RealizabilityResult`\\ s and to populate from any backend.
    Thread-safe; hit/miss counters are exact.
    """

    def __init__(self) -> None:
        self._entries: Dict[BoolTerm, _CacheEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def peek(self, formula: BoolTerm) -> Optional[_CacheEntry]:
        """Look up without touching the hit/miss counters (callers count
        via :meth:`record` once they commit to using the answer)."""
        with self._lock:
            return self._entries.get(formula)

    def record(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def store(self, formula: BoolTerm, entry: _CacheEntry) -> None:
        with self._lock:
            self._entries[formula] = entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _solve_payload(payload):
    """Module-level process-pool target (must be picklable by name).

    The payload is ``(formula, max_conflicts, use_cube, timeout, family)``
    or — when tracing is on — a 6-tuple whose last element is the
    submitting span's :class:`~repro.obs.tracer.SpanContext` (or
    ``None``).  With a 6-tuple the return grows a sixth element: the
    worker's span records, which ride back for
    :meth:`~repro.obs.tracer.Tracer.ingest` so a query solved in another
    process still nests under its checker span.

    ``family`` (a string or ``None``) keys the worker's warm
    per-sink-family :class:`~repro.smt.solver.IncrementalSolver`; pool
    workers live for the whole stream, so sibling queries landing on the
    same worker reuse its CNF encoding, learnt clauses, and theory
    lemmas.
    """
    from ..testing.faults import fault_point

    recorder = None
    if len(payload) == 6:
        formula, max_conflicts, use_cube, timeout, family, ctx = payload
        recorder = SpanRecorder(ctx)
    else:
        formula, max_conflicts, use_cube, timeout, family = payload
    fault_point("worker:solve")  # pool-death injection site (workers only)
    if recorder is None:
        return solve_formula(
            formula,
            max_conflicts=max_conflicts,
            use_cube=use_cube,
            timeout=timeout,
            family=family,
        )
    with recorder.span("solver.query", pooled=True) as span:
        result = solve_formula(
            formula,
            max_conflicts=max_conflicts,
            use_cube=use_cube,
            timeout=timeout,
            recorder=recorder,
            family=family,
        )
        span.set("verdict", result[0])
    return result + (recorder.records,)


class RealizabilityChecker:
    """Assembles Φ_all and decides it."""

    def __init__(
        self,
        bundle: VFGBundle,
        use_cube_and_conquer: bool = False,
        solver_max_conflicts: Optional[int] = 100_000,
        order_constraints: bool = True,
        lock_analysis=None,
        memory_model: str = "sc",
        backend: str = "thread",
        cache: Optional[VerdictCache] = None,
        solver_timeout: Optional[float] = None,
        budget=None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        incremental_smt: bool = True,
        warm_family_threshold: int = 3,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown solver backend {backend!r} (want one of {BACKENDS})")
        self.bundle = bundle
        self.orders = OrderConstraintBuilder(
            bundle, lock_analysis=lock_analysis, memory_model=memory_model
        )
        self.use_cube_and_conquer = use_cube_and_conquer
        #: route queries through warm per-sink-family incremental solvers
        #: (assumption-based; disabled automatically under cube-and-conquer)
        self.incremental_smt = incremental_smt and not use_cube_and_conquer
        #: warm solving only pays off once a sink family has enough
        #: sibling queries to amortize the solver's clause-shipping setup;
        #: the first ``warm_family_threshold`` queries of each family
        #: solve one-shot, later siblings route to the warm solver.  This
        #: removes the end-to-end overhead on small families (most corpus
        #: sinks see one or two queries) while keeping the big-family win.
        self.warm_family_threshold = max(0, warm_family_threshold)
        self._family_counts: Dict[str, int] = {}
        self.solver_max_conflicts = solver_max_conflicts
        self.solver_timeout = solver_timeout
        #: optional repro.analysis.budget.Budget — clips per-query
        #: timeouts to the run's remaining wall budget (parent-side only;
        #: the budget object never crosses a process boundary)
        self.budget = budget
        self.order_constraints = order_constraints
        self.backend = backend
        self.cache = cache
        self._stats_lock = threading.Lock()
        self._last_pool_error = ""
        #: the single home of the solver counters; shared with the run's
        #: AnalysisReport when the pipeline constructs the checker
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Pre-register the full legacy counter set in its historical
        # order so the ``statistics`` view is shape-stable from birth.
        self._counters: Dict[str, Counter] = {}
        for key in (
            "queries",
            "sat",
            "unsat",
            "unknown",
            "unknown_conflicts",
            "unknown_deadline",
            "cache_hits",
            "cache_misses",
        ):
            self._counter(key)
        self._counter("solve_seconds").add(0.0)  # promote to float
        for key in ("pool_failures", "pool_retries", "pool_local_solves"):
            self._counter(key)

    def _counter(self, key: str) -> Counter:
        """The ``solver.<key>`` counter (get-or-create, memoized).

        All mutation happens under ``_stats_lock`` so multi-counter
        updates in :meth:`_bump` stay atomic as a group."""
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = self.metrics.counter(f"solver.{key}")
        return counter

    @property
    def statistics(self) -> Dict[str, int]:
        """Legacy view: the ``solver.*`` registry counters, plain dict."""
        return self.metrics.namespace("solver")

    def query_timeout(self) -> Optional[float]:
        """Per-query wall budget: ``solver_timeout`` clipped to the run
        budget's remaining wall time (evaluated at submission)."""
        timeout = self.solver_timeout
        if self.budget is not None:
            clipped = self.budget.query_timeout()
            if clipped is not None:
                timeout = clipped if timeout is None else min(timeout, clipped)
        return timeout

    # ----- formula assembly -------------------------------------------------

    def formula_for(self, query: PathQuery) -> BoolTerm:
        parts: List[BoolTerm] = []
        # Φ_guards: the aggregated guards along the path (Eq. 5) plus the
        # endpoint statements' own path conditions.
        mentioned: List[Instruction] = []
        for edge in query.path.edges:
            parts.append(edge.guard)
            if edge.kind == "load" and self.order_constraints:
                parts.append(self.orders.load_store_order(edge))  # Φ_ls
                mentioned.extend(self.orders.interfering_stores(edge))
        if query.source_inst is not None:
            parts.append(query.source_inst.guard)
        if query.sink_inst is not None:
            parts.append(query.sink_inst.guard)
        for extra in query.extra_statements:
            parts.append(extra.guard)
        if self.order_constraints:
            # Φ_po over every statement involved (Eq. 4).
            statements = query.path.statements(self.bundle)
            for endpoint in (query.source_inst, query.sink_inst):
                if endpoint is not None:
                    statements.append(endpoint)
            statements.extend(query.extra_statements)
            parts.append(self.orders.program_order(statements))
            # Lock/unlock extension: mutual exclusion over everything the
            # formula mentions (path, endpoints, interfering stores).
            parts.append(self.orders.mutex_exclusion(statements + mentioned))
            # Condition-variable extension: signal→wait edges for every
            # wait statement the formula mentions.
            parts.append(self.orders.signal_wait_order(statements + mentioned))
        parts.append(query.alias_guard)
        parts.extend(query.extra_constraints)
        return and_(*parts)

    def guards_only_formula(self, query: PathQuery) -> BoolTerm:
        """Only Φ_guards (edge guards + endpoint path conditions + alias
        guard) — no Φ_ls, no Φ_po, no checker order constraints."""
        parts: List[BoolTerm] = [query.alias_guard]
        for edge in query.path.edges:
            parts.append(edge.guard)
        if query.source_inst is not None:
            parts.append(query.source_inst.guard)
        if query.sink_inst is not None:
            parts.append(query.sink_inst.guard)
        return and_(*parts)

    def explain_refutation(self, query: PathQuery) -> str:
        """Why was an unrealizable candidate refuted?

        * ``'guard-contradiction'`` — the aggregated branch/alias guards
          alone are UNSAT (the Fig. 2 class);
        * ``'order-violation'`` — the guards are consistent but no total
          order satisfies Φ_ls ∧ Φ_po plus the checker's requirements
          (the Fig. 5(b) / fork-join class).
        """
        solver = Solver(
            max_conflicts=self.solver_max_conflicts, timeout=self.query_timeout()
        )
        solver.add(self.guards_only_formula(query))
        if solver.check() is UNSAT:
            return "guard-contradiction"
        return "order-violation"

    # ----- deciding ---------------------------------------------------------

    def _bump(
        self,
        verdict: str,
        cache_hit: Optional[bool],
        seconds: float,
        reason: str = "",
    ) -> None:
        """Merge one query's counters (thread-safe; exact under any pool)."""
        with self._stats_lock:
            self._counter("queries").add(1)
            self._counter(verdict).add(1)
            if verdict == UNKNOWN and reason:
                self._counter(f"unknown_{reason.replace('-', '_')}").add(1)
            if cache_hit is not None:
                self._counter("cache_hits" if cache_hit else "cache_misses").add(1)
            self._counter("solve_seconds").add(seconds)
        if self.cache is not None and cache_hit is not None:
            self.cache.record(cache_hit)

    def _note_pool_failure(self, context: str, exc: BaseException) -> None:
        """Record one worker/pool death — never swallowed silently."""
        with self._stats_lock:
            self._counter("pool_failures").add(1)
            self._last_pool_error = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
            if context:
                self._last_pool_error += f" [{context}]"

    def _count(self, key: str, delta: int = 1) -> None:
        with self._stats_lock:
            self._counter(key).add(delta)

    def degradation_summary(self) -> List[str]:
        """Human-readable degradation warnings for the analysis report:
        pool deaths (with how the work was recovered) and budget-starved
        queries.  Empty when nothing degraded."""
        out: List[str] = []
        s = self.statistics
        if s["pool_failures"]:
            detail = f" ({self._last_pool_error})" if self._last_pool_error else ""
            out.append(
                f"solver pool: {s['pool_failures']} worker failure(s){detail};"
                f" {s['pool_retries']} retried on a fresh pool,"
                f" {s['pool_local_solves']} re-solved locally"
            )
        if s.get("unknown_deadline"):
            out.append(
                f"solver: {s['unknown_deadline']} query(ies) hit the per-query"
                " deadline (verdict unknown, candidate not reported)"
            )
        return out

    def _absorb(self, data):
        """Normalize a ``_solve_payload`` return: ingest any worker span
        records (6-tuple form) and hand back the plain 5-tuple."""
        if len(data) == 6:
            self.tracer.ingest(data[5])
            return data[:5]
        return data

    def _materialize(
        self,
        formula: BoolTerm,
        verdict: str,
        ints: Dict[str, int],
        bools: Dict[str, bool],
        reason: str = "",
    ) -> RealizabilityResult:
        """Rebuild a result from plain (picklable / cacheable) solve data."""
        if verdict != SAT:
            # UNSAT: refuted.  UNKNOWN: budget exhausted — soundy choice,
            # do not report (low FP bias), but carry the reason so callers
            # can distinguish "proved infeasible" from "gave up".
            return RealizabilityResult(False, verdict, formula, unknown_reason=reason)
        witness: Dict[str, int] = {}
        witness_env: Dict[str, Dict] = {"ints": {}, "bools": dict(bools)}
        for name, value in ints.items():
            if name.startswith("O") and name[1:].isdigit():
                # Statement order variables O<label>.
                witness[name] = value
            else:
                witness_env["ints"][name] = value
        return RealizabilityResult(True, SAT, formula, witness, witness_env)

    def family_for(self, query: PathQuery) -> Optional[str]:
        """The query's path-family key — sibling paths enumerated from one
        sink share guard prefixes and Φ_po skeletons, so the sink labels
        the warm incremental solver they should all hit.  ``None`` means
        solve one-shot (incremental solving off, or no sink to key by)."""
        if not self.incremental_smt or query.sink_inst is None:
            return None
        family = f"sink:{query.sink_inst.label}"
        with self._stats_lock:
            count = self._family_counts.get(family, 0) + 1
            self._family_counts[family] = count
        if count <= self.warm_family_threshold:
            return None  # family not yet proven hot: one-shot is cheaper
        return family

    def check(self, query: PathQuery) -> RealizabilityResult:
        return self.check_formula(self.formula_for(query), family=self.family_for(query))

    def check_formula(
        self,
        formula: BoolTerm,
        parent: Optional[SpanContext] = None,
        family: Optional[str] = None,
    ) -> RealizabilityResult:
        """Decide one assembled Φ_all, consulting the verdict cache.

        ``parent`` overrides the span parent when the call runs on a
        helper thread (check_many's thread pool) whose ambient span
        stack is empty."""
        tracer = self.tracer
        if self.cache is not None:
            entry = self.cache.peek(formula)
            if entry is not None:
                verdict, ints, bools, reason = entry
                with tracer.span(
                    "solver.query", parent=parent, cached=True
                ) as span:
                    span.set("verdict", verdict)
                self._bump(verdict, cache_hit=True, seconds=0.0, reason=reason)
                return self._materialize(formula, verdict, ints, bools, reason)
        recorder = None
        with tracer.span("solver.query", parent=parent, cached=False) as span:
            if tracer.enabled:
                recorder = tracer.recorder(span.context())
            verdict, ints, bools, seconds, reason = solve_formula(
                formula,
                max_conflicts=self.solver_max_conflicts,
                use_cube=self.use_cube_and_conquer,
                timeout=self.query_timeout(),
                recorder=recorder,
                family=family,
            )
            span.set("verdict", verdict)
            if reason:
                span.set("unknown_reason", reason)
        if recorder is not None:
            tracer.ingest(recorder.records)
        if self.cache is not None:
            self.cache.store(formula, (verdict, ints, bools, reason))
            self._bump(verdict, cache_hit=False, seconds=seconds, reason=reason)
        else:
            self._bump(verdict, cache_hit=None, seconds=seconds, reason=reason)
        return self._materialize(formula, verdict, ints, bools, reason)

    def check_many(
        self,
        queries: Sequence[PathQuery],
        parallel: bool = False,
        max_workers: int = 4,
        backend: Optional[str] = None,
    ) -> List[RealizabilityResult]:
        """Decide many independent path queries (§5.2: parallelizable).

        ``backend`` overrides the checker's default: ``'process'`` ships
        formulas to a process pool (real parallelism for the pure-Python
        solver), ``'thread'`` uses the in-process pool.  Falls back to
        threads automatically if the process pool cannot be created.
        """
        if not parallel or len(queries) < 2:
            return [self.check(q) for q in queries]
        backend = backend or self.backend
        max_workers = max(1, max_workers)
        # Formula assembly touches the VFG bundle and order builder, so it
        # stays in the parent; only pure terms cross the pool boundary.
        formulas = [self.formula_for(q) for q in queries]
        families = [self.family_for(q) for q in queries]
        if backend == "process":
            try:
                return self._check_formulas_process(formulas, max_workers, families)
            except (OSError, RuntimeError, ImportError) as exc:
                # e.g. sandboxed fork or a dead worker (BrokenProcessPool is
                # a RuntimeError) — record it, degrade to the thread pool.
                self._note_pool_failure("batch", exc)
        # Pool threads have no ambient span stack: parent their query
        # spans explicitly under this (submitting) thread's open span.
        ctx = self.tracer.current_context()
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(
                pool.map(
                    lambda pair: self.check_formula(pair[0], parent=ctx, family=pair[1]),
                    zip(formulas, families),
                )
            )

    def open_stream(
        self,
        max_workers: int = 4,
        backend: Optional[str] = None,
        max_inflight: Optional[int] = None,
    ) -> "StreamingSolver":
        """A bounded enumerate→solve pipeline: submit path queries as the
        searcher discovers them; verdicts come back in submission order
        from :meth:`StreamingSolver.finish`."""
        return StreamingSolver(
            self,
            max_workers=max_workers,
            backend=backend or self.backend,
            max_inflight=max_inflight,
        )

    def _check_formulas_process(
        self,
        formulas: Sequence[BoolTerm],
        max_workers: int,
        families: Optional[Sequence[Optional[str]]] = None,
    ) -> List[RealizabilityResult]:
        cache = self.cache
        results: List[Optional[RealizabilityResult]] = [None] * len(formulas)
        cached: List[Tuple[int, BoolTerm, _CacheEntry]] = []
        todo: Dict[BoolTerm, List[int]] = {}
        family_of: Dict[BoolTerm, Optional[str]] = {}
        for i, formula in enumerate(formulas):
            entry = cache.peek(formula) if cache is not None else None
            if entry is not None:
                cached.append((i, formula, entry))
            else:
                # Duplicate formulas are solved once (interning makes the
                # dict collapse them) and fanned back out below.
                todo.setdefault(formula, []).append(i)
                if families is not None and formula not in family_of:
                    family_of[formula] = families[i]
        unique = list(todo)
        solved = []
        if unique:
            timeout = self.query_timeout()
            base = (self.solver_max_conflicts, self.use_cube_and_conquer, timeout)
            if self.tracer.enabled:
                ctx = self.tracer.current_context()
                payloads = [
                    (f,) + base + (family_of.get(f), ctx) for f in unique
                ]
            else:
                payloads = [(f,) + base + (family_of.get(f),) for f in unique]
            chunksize = max(1, len(payloads) // (4 * max_workers))
            # Raising here (before any statistics commit) lets check_many
            # fall back to the thread pool with exact counters.
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                solved = [
                    self._absorb(data)
                    for data in pool.map(_solve_payload, payloads, chunksize=chunksize)
                ]
        for i, formula, (verdict, ints, bools, reason) in cached:
            self._bump(verdict, cache_hit=True, seconds=0.0, reason=reason)
            results[i] = self._materialize(formula, verdict, ints, bools, reason)
        for formula, (verdict, ints, bools, seconds, reason) in zip(unique, solved):
            if cache is not None:
                cache.store(formula, (verdict, ints, bools, reason))
            for occurrence, i in enumerate(todo[formula]):
                # The first occurrence paid for the solve; further
                # occurrences of the same formula are in-batch reuse.
                hit: Optional[bool] = occurrence > 0 if cache is not None else None
                self._bump(
                    verdict,
                    cache_hit=hit,
                    seconds=seconds if occurrence == 0 else 0.0,
                    reason=reason,
                )
                results[i] = self._materialize(formula, verdict, ints, bools, reason)
        return results  # type: ignore[return-value]


class StreamingSolver:
    """Overlaps path enumeration with SMT solving (the streaming half of
    the sink-directed enumeration engine).

    The PR 1 batch engine enumerated *all* paths, then solved the batch —
    a barrier that leaves the solver pool idle during enumeration and the
    enumerator idle during solving.  This class removes the barrier:
    :meth:`submit` assembles Φ_all for one query (formula assembly stays
    on the caller's thread — term interning is not thread-safe, so the
    checker routes all submissions through its coordinator thread) and
    immediately ships unique, uncached formulas to the worker pool, while
    the DFS keeps producing.

    Backpressure: at most ``max_inflight`` unique formulas are in flight;
    further submissions block, bounding memory no matter how fast the
    enumerator runs.  Duplicates (interning makes structural equality
    identity) and verdict-cache hits never occupy a slot.

    :meth:`finish` returns verdicts in submission order with statistics
    accounted exactly like the batch path: the first occurrence of a
    formula pays the solve time and the cache miss, later occurrences
    are in-batch reuse, pre-cached formulas are hits.  If the process
    pool cannot be created (or dies mid-run), affected formulas are
    re-solved in-process, so a stream always completes.
    """

    def __init__(
        self,
        checker: RealizabilityChecker,
        max_workers: int = 4,
        backend: str = "process",
        max_inflight: Optional[int] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        self.checker = checker
        self.max_workers = max(1, max_workers)
        self.backend = backend
        self.max_inflight = max_inflight or 4 * self.max_workers
        #: pool-death recovery: a failed formula is resubmitted to a fresh
        #: pool up to ``max_retries`` times (sleeping ``retry_backoff *
        #: 2**attempt`` between tries) before local in-process solving.
        self.max_retries = max(0, max_retries)
        self.retry_backoff = retry_backoff
        self._sem = threading.Semaphore(self.max_inflight)
        self._pool = None
        self._pool_failed = False
        #: per submission: (formula, disposition, cached-entry-or-None)
        self._entries: List[Tuple[BoolTerm, str, Optional[_CacheEntry]]] = []
        self._futures: Dict[BoolTerm, Future] = {}
        #: path-family key per unique formula (first submission wins)
        self._families: Dict[BoolTerm, Optional[str]] = {}
        self._finished = False

    # ----- producing ---------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is not None or self._pool_failed:
            return self._pool
        if self.backend == "process":
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            except (OSError, RuntimeError, ImportError):
                self._pool = None  # sandboxed fork etc. — degrade to threads
        if self._pool is None:
            try:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            except (OSError, RuntimeError):
                self._pool_failed = True
        return self._pool

    def submit(self, query: PathQuery) -> int:
        """Assemble and enqueue one query; returns its submission ordinal."""
        if self._finished:
            raise RuntimeError("stream already finished")
        formula = self.checker.formula_for(query)
        return self.submit_formula(formula, family=self.checker.family_for(query))

    def _payload(self, formula: BoolTerm):
        """One worker payload; tracing appends the submitting thread's
        span context so worker spans nest under the checker span."""
        checker = self.checker
        base = (
            formula,
            checker.solver_max_conflicts,
            checker.use_cube_and_conquer,
            checker.query_timeout(),
            self._families.get(formula),
        )
        if checker.tracer.enabled:
            return base + (checker.tracer.current_context(),)
        return base

    def submit_formula(self, formula: BoolTerm, family: Optional[str] = None) -> int:
        cache = self.checker.cache
        entry = cache.peek(formula) if cache is not None else None
        if entry is not None:
            self._entries.append((formula, "cached", entry))
            return len(self._entries) - 1
        if formula in self._futures:
            self._entries.append((formula, "dup", None))
            return len(self._entries) - 1
        if family is not None:
            self._families.setdefault(formula, family)
        pool = self._ensure_pool()
        future: Optional[Future] = None
        if pool is not None:
            payload = self._payload(formula)
            self._sem.acquire()  # backpressure: bounded in-flight window
            try:
                future = pool.submit(_solve_payload, payload)
            except (OSError, RuntimeError) as exc:
                self.checker._note_pool_failure("submit", exc)
                self._sem.release()
                future = None
            else:
                future.add_done_callback(lambda _f: self._sem.release())
        if future is not None:
            self._futures[formula] = future
            self._entries.append((formula, "first", None))
        else:
            # No pool at all: mark for in-process solving at finish time.
            self._futures.setdefault(formula, None)  # type: ignore[arg-type]
            self._entries.append((formula, "first", None))
        return len(self._entries) - 1

    # ----- draining ----------------------------------------------------------

    def _await_with_retry(self, formula: BoolTerm, future: Future):
        """Collect one pooled verdict, surviving pool death.

        A future that raises (``BrokenProcessPool``, a pickling error, a
        fault-injected worker crash) is *recorded* — never swallowed —
        via :meth:`RealizabilityChecker._note_pool_failure`, then the
        formula is resubmitted to a freshly spawned pool with exponential
        backoff.  After ``max_retries`` failed attempts the caller falls
        back to solving in-process (returns ``None``)."""
        checker = self.checker
        payload = self._payload(formula)
        for attempt in range(self.max_retries + 1):
            try:
                return checker._absorb(future.result())
            except Exception as exc:
                checker._note_pool_failure("stream", exc)
                if attempt >= self.max_retries:
                    return None
                time.sleep(self.retry_backoff * (2**attempt))
                # Discard the (likely broken) pool and respawn before the
                # resubmission.  No semaphore juggling: futures of a broken
                # pool still run their done-callbacks, releasing the slot.
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                    self._pool = None
                pool = self._ensure_pool()
                if pool is None:
                    return None
                try:
                    future = pool.submit(_solve_payload, payload)
                except (OSError, RuntimeError) as submit_exc:
                    checker._note_pool_failure("resubmit", submit_exc)
                    return None
                checker._count("pool_retries")
        return None

    def finish(self) -> List[RealizabilityResult]:
        """Wait for all verdicts; results are in submission order."""
        self._finished = True
        checker = self.checker
        cache = checker.cache
        results: List[RealizabilityResult] = []
        solved: Dict[BoolTerm, Tuple[str, Dict, Dict, float, str]] = {}
        occurrences: Dict[BoolTerm, int] = {}
        try:
            for formula, disposition, entry in self._entries:
                if disposition == "cached":
                    verdict, ints, bools, reason = entry  # type: ignore[misc]
                    checker._bump(verdict, cache_hit=True, seconds=0.0, reason=reason)
                    results.append(
                        checker._materialize(formula, verdict, ints, bools, reason)
                    )
                    continue
                data = solved.get(formula)
                if data is None:
                    future = self._futures[formula]
                    data = None
                    if future is not None:
                        data = self._await_with_retry(formula, future)
                    if data is None:
                        # Last line of defence: the pool never existed or
                        # retries were exhausted — solve on this thread so
                        # the stream still completes.
                        if future is not None:
                            checker._count("pool_local_solves")
                        tracer = checker.tracer
                        recorder = None
                        with tracer.span("solver.query", cached=False, local=True) as qspan:
                            if tracer.enabled:
                                recorder = tracer.recorder(qspan.context())
                            data = solve_formula(
                                formula,
                                max_conflicts=checker.solver_max_conflicts,
                                use_cube=checker.use_cube_and_conquer,
                                timeout=checker.query_timeout(),
                                recorder=recorder,
                                family=self._families.get(formula),
                            )
                            qspan.set("verdict", data[0])
                        if recorder is not None:
                            tracer.ingest(recorder.records)
                    solved[formula] = data
                    if cache is not None:
                        verdict, ints, bools, _seconds, reason = data
                        cache.store(formula, (verdict, ints, bools, reason))
                verdict, ints, bools, seconds, reason = data
                occ = occurrences.get(formula, 0)
                occurrences[formula] = occ + 1
                hit: Optional[bool] = occ > 0 if cache is not None else None
                checker._bump(
                    verdict,
                    cache_hit=hit,
                    seconds=seconds if occ == 0 else 0.0,
                    reason=reason,
                )
                results.append(
                    checker._materialize(formula, verdict, ints, bools, reason)
                )
        finally:
            self.close()
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    @property
    def pending(self) -> int:
        return len(self._entries)
