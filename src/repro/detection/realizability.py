"""Realizability checking of value-flow paths (paper §5.2).

For a candidate source→sink path, assemble

    Φ_all(π) = Φ_guards(π) ∧ Φ_ls(π) ∧ Φ_po(π) ∧ Φ_extra

(Eq. 5 plus the checker-specific constraints such as ``O_free < O_use``)
and decide it with the SMT solver.  SAT means the path corresponds to a
feasible sequentially-consistent interleaving and the bug is reported,
together with a *witness order* extracted from the model.

Per the paper, path queries are mutually independent, so batches can be
solved in parallel.  Two backends implement that:

* ``'process'`` — formulas are assembled in the parent, deduplicated,
  and shipped to a ``ProcessPoolExecutor`` (terms pickle structurally
  and re-intern in the worker; results come back as plain dicts).  This
  is the only backend that actually scales the pure-Python solver past
  the GIL.
* ``'thread'`` — a ``ThreadPoolExecutor`` fallback for environments
  where spawning processes is unavailable or the batch is tiny.

Either way, verdicts are memoized in a :class:`VerdictCache` keyed on
the canonicalized Φ_all (interning makes structural equality identity,
so the formula object itself is the key), shared across all checkers of
one ``Canary`` run.  Statistics are accumulated under a lock and merged
from workers, so counters are exact under any backend.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir.instructions import Instruction
from ..smt.solver import SAT, UNKNOWN, UNSAT, Solver, solve_formula
from ..smt.terms import TRUE, BoolTerm, and_
from ..vfg.builder import VFGBundle
from .partial_order import OrderConstraintBuilder, order_var
from .search import ValueFlowPath

__all__ = [
    "PathQuery",
    "RealizabilityChecker",
    "RealizabilityResult",
    "StreamingSolver",
    "VerdictCache",
]

#: backends accepted by check_many / AnalysisConfig.solver_backend
BACKENDS = ("thread", "process")


@dataclass
class PathQuery:
    """One candidate bug: a path plus its endpoint statements.

    ``alias_guard`` carries non-order side conditions (e.g. the freed
    object's pointed-to-by guard); ``extra_constraints`` carry the
    checker's order requirements (e.g. ``O_free < O_use``).  The split
    lets :meth:`RealizabilityChecker.explain_refutation` attribute an
    UNSAT verdict to guards vs. ordering.
    """

    path: ValueFlowPath
    source_inst: Optional[Instruction]
    sink_inst: Optional[Instruction]
    extra_constraints: Tuple[BoolTerm, ...] = ()
    alias_guard: BoolTerm = TRUE


@dataclass
class RealizabilityResult:
    realizable: bool
    verdict: str  # 'sat' | 'unsat' | 'unknown'
    formula: BoolTerm = TRUE
    witness_order: Dict[str, int] = field(default_factory=dict)
    #: the model's non-order assignments, for witness replay:
    #: {'ints': extern-name -> int, 'bools': atom-name -> bool}
    witness_env: Dict[str, Dict] = field(default_factory=dict)


#: a cached verdict: (verdict, int assignment, bool-atom assignment)
_CacheEntry = Tuple[str, Dict[str, int], Dict[str, bool]]


class VerdictCache:
    """Structural Φ_all → verdict memo, shared across checkers of a run.

    Keys are the formula terms themselves: the term DSL hash-conses, so
    two structurally identical Φ_all are the same object and repeated
    queries (the common case when many paths share guards and order
    skeletons, cf. DFI's reuse of solved sub-queries) hit the cache.
    Entries store only plain data — safe to materialize into fresh
    :class:`RealizabilityResult`\\ s and to populate from any backend.
    Thread-safe; hit/miss counters are exact.
    """

    def __init__(self) -> None:
        self._entries: Dict[BoolTerm, _CacheEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def peek(self, formula: BoolTerm) -> Optional[_CacheEntry]:
        """Look up without touching the hit/miss counters (callers count
        via :meth:`record` once they commit to using the answer)."""
        with self._lock:
            return self._entries.get(formula)

    def record(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def store(self, formula: BoolTerm, entry: _CacheEntry) -> None:
        with self._lock:
            self._entries[formula] = entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _solve_payload(payload) -> Tuple[str, Dict[str, int], Dict[str, bool], float]:
    """Module-level process-pool target (must be picklable by name)."""
    formula, max_conflicts, use_cube = payload
    return solve_formula(formula, max_conflicts=max_conflicts, use_cube=use_cube)


class RealizabilityChecker:
    """Assembles Φ_all and decides it."""

    def __init__(
        self,
        bundle: VFGBundle,
        use_cube_and_conquer: bool = False,
        solver_max_conflicts: Optional[int] = 100_000,
        order_constraints: bool = True,
        lock_analysis=None,
        memory_model: str = "sc",
        backend: str = "thread",
        cache: Optional[VerdictCache] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown solver backend {backend!r} (want one of {BACKENDS})")
        self.bundle = bundle
        self.orders = OrderConstraintBuilder(
            bundle, lock_analysis=lock_analysis, memory_model=memory_model
        )
        self.use_cube_and_conquer = use_cube_and_conquer
        self.solver_max_conflicts = solver_max_conflicts
        self.order_constraints = order_constraints
        self.backend = backend
        self.cache = cache
        self._stats_lock = threading.Lock()
        self.statistics = {
            "queries": 0,
            "sat": 0,
            "unsat": 0,
            "unknown": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "solve_seconds": 0.0,
        }

    # ----- formula assembly -------------------------------------------------

    def formula_for(self, query: PathQuery) -> BoolTerm:
        parts: List[BoolTerm] = []
        # Φ_guards: the aggregated guards along the path (Eq. 5) plus the
        # endpoint statements' own path conditions.
        mentioned: List[Instruction] = []
        for edge in query.path.edges:
            parts.append(edge.guard)
            if edge.kind == "load" and self.order_constraints:
                parts.append(self.orders.load_store_order(edge))  # Φ_ls
                mentioned.extend(self.orders.interfering_stores(edge))
        if query.source_inst is not None:
            parts.append(query.source_inst.guard)
        if query.sink_inst is not None:
            parts.append(query.sink_inst.guard)
        if self.order_constraints:
            # Φ_po over every statement involved (Eq. 4).
            statements = query.path.statements(self.bundle)
            for endpoint in (query.source_inst, query.sink_inst):
                if endpoint is not None:
                    statements.append(endpoint)
            parts.append(self.orders.program_order(statements))
            # Lock/unlock extension: mutual exclusion over everything the
            # formula mentions (path, endpoints, interfering stores).
            parts.append(self.orders.mutex_exclusion(statements + mentioned))
        parts.append(query.alias_guard)
        parts.extend(query.extra_constraints)
        return and_(*parts)

    def guards_only_formula(self, query: PathQuery) -> BoolTerm:
        """Only Φ_guards (edge guards + endpoint path conditions + alias
        guard) — no Φ_ls, no Φ_po, no checker order constraints."""
        parts: List[BoolTerm] = [query.alias_guard]
        for edge in query.path.edges:
            parts.append(edge.guard)
        if query.source_inst is not None:
            parts.append(query.source_inst.guard)
        if query.sink_inst is not None:
            parts.append(query.sink_inst.guard)
        return and_(*parts)

    def explain_refutation(self, query: PathQuery) -> str:
        """Why was an unrealizable candidate refuted?

        * ``'guard-contradiction'`` — the aggregated branch/alias guards
          alone are UNSAT (the Fig. 2 class);
        * ``'order-violation'`` — the guards are consistent but no total
          order satisfies Φ_ls ∧ Φ_po plus the checker's requirements
          (the Fig. 5(b) / fork-join class).
        """
        solver = Solver(max_conflicts=self.solver_max_conflicts)
        solver.add(self.guards_only_formula(query))
        if solver.check() is UNSAT:
            return "guard-contradiction"
        return "order-violation"

    # ----- deciding ---------------------------------------------------------

    def _bump(self, verdict: str, cache_hit: Optional[bool], seconds: float) -> None:
        """Merge one query's counters (thread-safe; exact under any pool)."""
        with self._stats_lock:
            s = self.statistics
            s["queries"] += 1
            s[verdict] += 1
            if cache_hit is not None:
                s["cache_hits" if cache_hit else "cache_misses"] += 1
            s["solve_seconds"] += seconds
        if self.cache is not None and cache_hit is not None:
            self.cache.record(cache_hit)

    def _materialize(
        self,
        formula: BoolTerm,
        verdict: str,
        ints: Dict[str, int],
        bools: Dict[str, bool],
    ) -> RealizabilityResult:
        """Rebuild a result from plain (picklable / cacheable) solve data."""
        if verdict != SAT:
            # Budget exhausted (UNKNOWN): soundy choice — do not report
            # (low FP bias).  UNSAT: refuted.
            return RealizabilityResult(False, verdict, formula)
        witness: Dict[str, int] = {}
        witness_env: Dict[str, Dict] = {"ints": {}, "bools": dict(bools)}
        for name, value in ints.items():
            if name.startswith("O") and name[1:].isdigit():
                # Statement order variables O<label>.
                witness[name] = value
            else:
                witness_env["ints"][name] = value
        return RealizabilityResult(True, SAT, formula, witness, witness_env)

    def check(self, query: PathQuery) -> RealizabilityResult:
        return self.check_formula(self.formula_for(query))

    def check_formula(self, formula: BoolTerm) -> RealizabilityResult:
        """Decide one assembled Φ_all, consulting the verdict cache."""
        if self.cache is not None:
            entry = self.cache.peek(formula)
            if entry is not None:
                verdict, ints, bools = entry
                self._bump(verdict, cache_hit=True, seconds=0.0)
                return self._materialize(formula, verdict, ints, bools)
        verdict, ints, bools, seconds = solve_formula(
            formula,
            max_conflicts=self.solver_max_conflicts,
            use_cube=self.use_cube_and_conquer,
        )
        if self.cache is not None:
            self.cache.store(formula, (verdict, ints, bools))
            self._bump(verdict, cache_hit=False, seconds=seconds)
        else:
            self._bump(verdict, cache_hit=None, seconds=seconds)
        return self._materialize(formula, verdict, ints, bools)

    def check_many(
        self,
        queries: Sequence[PathQuery],
        parallel: bool = False,
        max_workers: int = 4,
        backend: Optional[str] = None,
    ) -> List[RealizabilityResult]:
        """Decide many independent path queries (§5.2: parallelizable).

        ``backend`` overrides the checker's default: ``'process'`` ships
        formulas to a process pool (real parallelism for the pure-Python
        solver), ``'thread'`` uses the in-process pool.  Falls back to
        threads automatically if the process pool cannot be created.
        """
        if not parallel or len(queries) < 2:
            return [self.check(q) for q in queries]
        backend = backend or self.backend
        max_workers = max(1, max_workers)
        # Formula assembly touches the VFG bundle and order builder, so it
        # stays in the parent; only pure terms cross the pool boundary.
        formulas = [self.formula_for(q) for q in queries]
        if backend == "process":
            try:
                return self._check_formulas_process(formulas, max_workers)
            except (OSError, RuntimeError, ImportError):
                pass  # e.g. sandboxed fork — degrade to the thread pool
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(self.check_formula, formulas))

    def open_stream(
        self,
        max_workers: int = 4,
        backend: Optional[str] = None,
        max_inflight: Optional[int] = None,
    ) -> "StreamingSolver":
        """A bounded enumerate→solve pipeline: submit path queries as the
        searcher discovers them; verdicts come back in submission order
        from :meth:`StreamingSolver.finish`."""
        return StreamingSolver(
            self,
            max_workers=max_workers,
            backend=backend or self.backend,
            max_inflight=max_inflight,
        )

    def _check_formulas_process(
        self, formulas: Sequence[BoolTerm], max_workers: int
    ) -> List[RealizabilityResult]:
        cache = self.cache
        results: List[Optional[RealizabilityResult]] = [None] * len(formulas)
        cached: List[Tuple[int, BoolTerm, _CacheEntry]] = []
        todo: Dict[BoolTerm, List[int]] = {}
        for i, formula in enumerate(formulas):
            entry = cache.peek(formula) if cache is not None else None
            if entry is not None:
                cached.append((i, formula, entry))
            else:
                # Duplicate formulas are solved once (interning makes the
                # dict collapse them) and fanned back out below.
                todo.setdefault(formula, []).append(i)
        unique = list(todo)
        solved = []
        if unique:
            payloads = [
                (f, self.solver_max_conflicts, self.use_cube_and_conquer)
                for f in unique
            ]
            chunksize = max(1, len(payloads) // (4 * max_workers))
            # Raising here (before any statistics commit) lets check_many
            # fall back to the thread pool with exact counters.
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                solved = list(pool.map(_solve_payload, payloads, chunksize=chunksize))
        for i, formula, (verdict, ints, bools) in cached:
            self._bump(verdict, cache_hit=True, seconds=0.0)
            results[i] = self._materialize(formula, verdict, ints, bools)
        for formula, (verdict, ints, bools, seconds) in zip(unique, solved):
            if cache is not None:
                cache.store(formula, (verdict, ints, bools))
            for occurrence, i in enumerate(todo[formula]):
                # The first occurrence paid for the solve; further
                # occurrences of the same formula are in-batch reuse.
                hit: Optional[bool] = occurrence > 0 if cache is not None else None
                self._bump(verdict, cache_hit=hit, seconds=seconds if occurrence == 0 else 0.0)
                results[i] = self._materialize(formula, verdict, ints, bools)
        return results  # type: ignore[return-value]


class StreamingSolver:
    """Overlaps path enumeration with SMT solving (the streaming half of
    the sink-directed enumeration engine).

    The PR 1 batch engine enumerated *all* paths, then solved the batch —
    a barrier that leaves the solver pool idle during enumeration and the
    enumerator idle during solving.  This class removes the barrier:
    :meth:`submit` assembles Φ_all for one query (formula assembly stays
    on the caller's thread — term interning is not thread-safe, so the
    checker routes all submissions through its coordinator thread) and
    immediately ships unique, uncached formulas to the worker pool, while
    the DFS keeps producing.

    Backpressure: at most ``max_inflight`` unique formulas are in flight;
    further submissions block, bounding memory no matter how fast the
    enumerator runs.  Duplicates (interning makes structural equality
    identity) and verdict-cache hits never occupy a slot.

    :meth:`finish` returns verdicts in submission order with statistics
    accounted exactly like the batch path: the first occurrence of a
    formula pays the solve time and the cache miss, later occurrences
    are in-batch reuse, pre-cached formulas are hits.  If the process
    pool cannot be created (or dies mid-run), affected formulas are
    re-solved in-process, so a stream always completes.
    """

    def __init__(
        self,
        checker: RealizabilityChecker,
        max_workers: int = 4,
        backend: str = "process",
        max_inflight: Optional[int] = None,
    ) -> None:
        self.checker = checker
        self.max_workers = max(1, max_workers)
        self.backend = backend
        self.max_inflight = max_inflight or 4 * self.max_workers
        self._sem = threading.Semaphore(self.max_inflight)
        self._pool = None
        self._pool_failed = False
        #: per submission: (formula, disposition, cached-entry-or-None)
        self._entries: List[Tuple[BoolTerm, str, Optional[_CacheEntry]]] = []
        self._futures: Dict[BoolTerm, Future] = {}
        self._finished = False

    # ----- producing ---------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is not None or self._pool_failed:
            return self._pool
        if self.backend == "process":
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            except (OSError, RuntimeError, ImportError):
                self._pool = None  # sandboxed fork etc. — degrade to threads
        if self._pool is None:
            try:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            except (OSError, RuntimeError):
                self._pool_failed = True
        return self._pool

    def submit(self, query: PathQuery) -> int:
        """Assemble and enqueue one query; returns its submission ordinal."""
        if self._finished:
            raise RuntimeError("stream already finished")
        formula = self.checker.formula_for(query)
        return self.submit_formula(formula)

    def submit_formula(self, formula: BoolTerm) -> int:
        cache = self.checker.cache
        entry = cache.peek(formula) if cache is not None else None
        if entry is not None:
            self._entries.append((formula, "cached", entry))
            return len(self._entries) - 1
        if formula in self._futures:
            self._entries.append((formula, "dup", None))
            return len(self._entries) - 1
        pool = self._ensure_pool()
        future: Optional[Future] = None
        if pool is not None:
            payload = (
                formula,
                self.checker.solver_max_conflicts,
                self.checker.use_cube_and_conquer,
            )
            self._sem.acquire()  # backpressure: bounded in-flight window
            try:
                future = pool.submit(_solve_payload, payload)
            except (OSError, RuntimeError):
                self._sem.release()
                future = None
            else:
                future.add_done_callback(lambda _f: self._sem.release())
        if future is not None:
            self._futures[formula] = future
            self._entries.append((formula, "first", None))
        else:
            # No pool at all: mark for in-process solving at finish time.
            self._futures.setdefault(formula, None)  # type: ignore[arg-type]
            self._entries.append((formula, "first", None))
        return len(self._entries) - 1

    # ----- draining ----------------------------------------------------------

    def finish(self) -> List[RealizabilityResult]:
        """Wait for all verdicts; results are in submission order."""
        self._finished = True
        checker = self.checker
        cache = checker.cache
        results: List[RealizabilityResult] = []
        solved: Dict[BoolTerm, Tuple[str, Dict, Dict, float]] = {}
        occurrences: Dict[BoolTerm, int] = {}
        try:
            for formula, disposition, entry in self._entries:
                if disposition == "cached":
                    verdict, ints, bools = entry  # type: ignore[misc]
                    checker._bump(verdict, cache_hit=True, seconds=0.0)
                    results.append(
                        checker._materialize(formula, verdict, ints, bools)
                    )
                    continue
                data = solved.get(formula)
                if data is None:
                    future = self._futures[formula]
                    data = None
                    if future is not None:
                        try:
                            data = future.result()
                        except Exception:
                            data = None  # pool died — re-solve locally
                    if data is None:
                        data = solve_formula(
                            formula,
                            max_conflicts=checker.solver_max_conflicts,
                            use_cube=checker.use_cube_and_conquer,
                        )
                    solved[formula] = data
                    if cache is not None:
                        cache.store(formula, data[:3])
                verdict, ints, bools, seconds = data
                occ = occurrences.get(formula, 0)
                occurrences[formula] = occ + 1
                hit: Optional[bool] = occ > 0 if cache is not None else None
                checker._bump(
                    verdict, cache_hit=hit, seconds=seconds if occ == 0 else 0.0
                )
                results.append(checker._materialize(formula, verdict, ints, bools))
        finally:
            self.close()
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    @property
    def pending(self) -> int:
        return len(self._entries)
