"""Source→sink value-flow path search over the guarded VFG (paper §5.1).

Depth-first enumeration of value-flow paths from a source node, following
data-dependence and interference-dependence edges.  Intra-thread
context-sensitivity is kept by matching call/return edges against a
context stack bounded by the configured nesting depth (the paper uses
clone-based summaries with depth 6; CFL-style matching over one shared
graph is the equivalent search-time formulation).

The searcher is property-agnostic: checkers supply a ``visit`` callback
that inspects each reached node (with the path so far) and decides
whether a sink has been hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import Instruction
from ..ir.values import Variable
from ..vfg.builder import VFGBundle
from ..vfg.graph import DefNode, NullNode, ObjNode, StoreNode, VFGEdge, VFGNode

__all__ = ["ValueFlowPath", "PathSearcher", "SearchLimits"]


@dataclass(frozen=True)
class SearchLimits:
    """Bounds keeping the enumeration tractable (soundy, like the paper's
    bounded unrolling and context depth)."""

    max_depth: int = 40
    max_paths_per_source: int = 512
    max_visits: int = 200_000
    context_depth: int = 6


@dataclass
class ValueFlowPath:
    """A path ⟨v1@ℓ1, ..., vk@ℓk⟩: the edges traversed, in order."""

    origin: VFGNode
    edges: List[VFGEdge] = field(default_factory=list)

    def nodes(self) -> List[VFGNode]:
        out = [self.origin]
        out.extend(e.dst for e in self.edges)
        return out

    def statements(self, bundle: VFGBundle) -> List[Instruction]:
        """The program statements along the path (for Φ_po)."""
        out: List[Instruction] = []
        for node in self.nodes():
            inst = node_statement(bundle, node)
            if inst is not None:
                out.append(inst)
        return out

    def has_interference(self) -> bool:
        return any(e.interthread for e in self.edges)

    def describe(self, bundle: VFGBundle) -> str:
        parts = [f"{self.origin!r}"]
        for edge in self.edges:
            arrow = "⇢" if edge.interthread else "→"
            parts.append(f"{arrow} {edge.dst!r}")
        return " ".join(parts)


#: def-site index: maps variables to their defining instruction
def build_def_index(bundle: VFGBundle) -> Dict[Variable, Instruction]:
    index: Dict[Variable, Instruction] = {}
    for inst in bundle.module.all_instructions():
        var = inst.defined_var()
        if var is not None:
            index[var] = inst
    return index


def node_statement(bundle: VFGBundle, node: VFGNode) -> Optional[Instruction]:
    if isinstance(node, StoreNode):
        return node.inst
    if isinstance(node, NullNode):
        return node.inst
    if isinstance(node, DefNode):
        return bundle.def_index.get(node.var)
    return None


class PathSearcher:
    """DFS path enumeration with context-stack matching."""

    def __init__(self, bundle: VFGBundle, limits: SearchLimits = SearchLimits()) -> None:
        self.bundle = bundle
        self.limits = limits
        self.visits = 0
        self.paths_emitted = 0

    def search(
        self,
        origin: VFGNode,
        on_node: Callable[[VFGNode, ValueFlowPath], None],
    ) -> None:
        """DFS from ``origin``; ``on_node`` fires for every node reached
        (including the origin with an empty path)."""
        self.visits = 0
        self.paths_emitted = 0
        path = ValueFlowPath(origin=origin)
        on_node(origin, path)
        self._dfs(origin, path, on_path_nodes={origin}, context=(), on_node=on_node)

    def _dfs(
        self,
        node: VFGNode,
        path: ValueFlowPath,
        on_path_nodes: Set[VFGNode],
        context: Tuple[int, ...],
        on_node: Callable[[VFGNode, ValueFlowPath], None],
    ) -> None:
        if len(path.edges) >= self.limits.max_depth:
            return
        if self.visits >= self.limits.max_visits:
            return
        for edge in self.bundle.vfg.out_edges(node):
            if edge.dst in on_path_nodes:
                continue
            new_context = self._step_context(edge, context)
            if new_context is None:
                continue
            self.visits += 1
            path.edges.append(edge)
            on_path_nodes.add(edge.dst)
            on_node(edge.dst, path)
            self._dfs(edge.dst, path, on_path_nodes, new_context, on_node)
            on_path_nodes.discard(edge.dst)
            path.edges.pop()

    _FORK_MARKER = -1

    def _step_context(
        self, edge: VFGEdge, context: Tuple[int, ...]
    ) -> Optional[Tuple[int, ...]]:
        """CFL-style context update; None = edge not admissible here."""
        if edge.kind == "call":
            if len(context) >= self.limits.context_depth:
                return None
            return context + (edge.callsite,)
        if edge.kind == "forkarg":
            if len(context) >= self.limits.context_depth:
                return None
            return context + (self._FORK_MARKER,)
        if edge.kind == "ret":
            if not context:
                return ()  # unbalanced-up: returning out of the start scope
            top = context[-1]
            if top == self._FORK_MARKER:
                return None  # a thread never returns into its forker
            if top != edge.callsite:
                return None  # mismatched call/return parenthesis
            return context[:-1]
        return context
