"""Source→sink value-flow path search over the guarded VFG (paper §5.1).

Depth-first enumeration of value-flow paths from a source node, following
data-dependence and interference-dependence edges.  Intra-thread
context-sensitivity is kept by matching call/return edges against a
context stack bounded by the configured nesting depth (the paper uses
clone-based summaries with depth 6; CFL-style matching over one shared
graph is the equivalent search-time formulation).

The searcher is property-agnostic: checkers supply a ``visit`` callback
that inspects each reached node (with the path so far) and decides
whether a sink has been hit.  The callback may return the number of
candidates it emitted at that node; the searcher uses the count to
enforce ``max_paths_per_source``.

Three demand-driven prunes keep the DFS out of useless subtrees — all
three are *exact* with respect to the reported bug keys (they only skip
work whose candidates the solver would refute, or subtrees that contain
no sink node at all):

* **sink reachability** — a
  :class:`~repro.detection.reachability.SinkReachabilityIndex` refuses
  edges into nodes that cannot reach any sink under the current context
  polarity;
* **incremental guard pruning** — a
  :class:`~repro.smt.simplify.GuardPrefix` folds each edge guard into a
  running difference-bound store; a definitely-unsat prefix cuts the
  subtree, since every extension's Φ_all conjoins a superset of it;
* **dead-state memo** — a ``(node, context, guard-fingerprint)`` state
  whose subtree was fully explored (no truncation, no on-path cycle
  block) without touching a sink node is dead for the rest of this
  source's search and is never re-explored.

Hitting a search bound is no longer silent: per-limit truncation
counters are kept and surfaced as soundness warnings by the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import Instruction
from ..ir.values import Variable
from ..smt.simplify import GuardPrefix
from ..smt.terms import TRUE, BoolTerm
from ..vfg.builder import VFGBundle
from ..vfg.graph import DefNode, NullNode, ObjNode, StoreNode, VFGEdge, VFGNode
from .reachability import INFINITE_AVAIL, SinkReachabilityIndex

__all__ = [
    "ValueFlowPath",
    "PathSearcher",
    "SearchLimits",
    "SearchStatistics",
    "TruncationEvent",
    "partition_sink_labels",
]


@dataclass(frozen=True)
class SearchLimits:
    """Bounds keeping the enumeration tractable (soundy, like the paper's
    bounded unrolling and context depth)."""

    max_depth: int = 40
    max_paths_per_source: int = 512
    max_visits: int = 200_000
    context_depth: int = 6


@dataclass
class SearchStatistics:
    """Enumeration counters, merged across the sources of one checker."""

    visits: int = 0
    candidates: int = 0
    pruned_unreachable: int = 0
    pruned_guard: int = 0
    memo_hits: int = 0
    memo_dead_states: int = 0
    truncated_depth: int = 0
    truncated_visits: int = 0
    truncated_paths: int = 0

    def merge(self, other: "SearchStatistics") -> None:
        self.visits += other.visits
        self.candidates += other.candidates
        self.pruned_unreachable += other.pruned_unreachable
        self.pruned_guard += other.pruned_guard
        self.memo_hits += other.memo_hits
        self.memo_dead_states += other.memo_dead_states
        self.truncated_depth += other.truncated_depth
        self.truncated_visits += other.truncated_visits
        self.truncated_paths += other.truncated_paths

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    @property
    def truncated(self) -> bool:
        return bool(
            self.truncated_depth or self.truncated_visits or self.truncated_paths
        )


@dataclass(frozen=True)
class TruncationEvent:
    """One search bound fired while enumerating from ``origin`` — the
    enumeration (and thus the report set) may be incomplete there."""

    origin: str
    limit: str  # 'max_depth' | 'max_visits' | 'max_paths_per_source'
    count: int

    def describe(self) -> str:
        return (
            f"search from {self.origin} hit {self.limit}"
            f" ({self.count}x) — enumeration truncated, results may be incomplete"
        )


@dataclass
class ValueFlowPath:
    """A path ⟨v1@ℓ1, ..., vk@ℓk⟩: the edges traversed, in order."""

    origin: VFGNode
    edges: List[VFGEdge] = field(default_factory=list)

    def nodes(self) -> List[VFGNode]:
        out = [self.origin]
        out.extend(e.dst for e in self.edges)
        return out

    def statements(self, bundle: VFGBundle) -> List[Instruction]:
        """The program statements along the path (for Φ_po)."""
        out: List[Instruction] = []
        for node in self.nodes():
            inst = node_statement(bundle, node)
            if inst is not None:
                out.append(inst)
        return out

    def has_interference(self) -> bool:
        return any(e.interthread for e in self.edges)

    def describe(self, bundle: VFGBundle) -> str:
        parts = [f"{self.origin!r}"]
        for edge in self.edges:
            arrow = "⇢" if edge.interthread else "→"
            parts.append(f"{arrow} {edge.dst!r}")
        return " ".join(parts)


# ----- per-sink detection sharding ------------------------------------------
#
# The detection phase shards across processes by *sink family*: the sorted
# universe of potential sink labels is partitioned round-robin, and each
# worker runs the full enumerate+solve pipeline restricted to emitting only
# candidates whose sink label falls in its shard.  The DFS itself is NOT
# restricted — every worker walks exactly the serial search region with the
# serial truncation accounting — so the union of the shard candidate sets
# equals the serial candidate set even when enumeration budgets fire, and
# each candidate carries its true serial (source-index, sequence) ordinal.
# The parent merges rows sorted by that ordinal and replays the serial
# reporting policy, which makes the reported bug keys byte-identical to a
# serial run at every worker count.  Keeping whole sink families on one
# worker also preserves the warm per-sink incremental-solver locality.


def partition_sink_labels(labels, shards: int) -> List[Tuple[int, ...]]:
    """Round-robin partition of the sorted sink-label universe.

    Empty buckets are dropped, so the result has ``min(shards, len(labels))``
    entries.  Deterministic: equal inputs give equal partitions in any
    process.
    """
    buckets: List[List[int]] = [[] for _ in range(max(1, shards))]
    for i, label in enumerate(sorted(set(labels))):
        buckets[i % len(buckets)].append(label)
    return [tuple(b) for b in buckets if b]


#: worker-process globals for detection sharding, set once per worker by
#: :func:`_init_detect_worker` (the payload ships through the executor's
#: ``initargs`` exactly once per worker, not once per shard task)
_SHARD_STATE: Dict[str, object] = {}


def _init_detect_worker(payload: dict) -> None:
    _SHARD_STATE["payload"] = payload


def _detect_shard(shard: Tuple[int, ...]) -> dict:
    """Pool target: run one checker over one sink-label shard.

    Rebuilds the checker (and a worker-local realizability stack) from the
    portable payload installed by the initializer, then delegates to
    :meth:`repro.checkers.base.SourceSinkChecker.shard_rows`.
    """
    from ..testing.faults import fault_point

    fault_point("worker:detect")
    payload = _SHARD_STATE["payload"]
    bundle = payload["bundle"]
    solver_cfg = payload["solver"]
    # Imported lazily: checkers import this module at import time.
    from ..checkers import ALL_CHECKERS
    from .realizability import RealizabilityChecker, VerdictCache

    lock_analysis = None
    if solver_cfg["model_locks"]:
        from ..threads.locks import LockAnalysis

        lock_analysis = LockAnalysis(bundle.module)
    realizability = RealizabilityChecker(
        bundle,
        use_cube_and_conquer=solver_cfg["use_cube_and_conquer"],
        solver_max_conflicts=solver_cfg["solver_max_conflicts"],
        order_constraints=solver_cfg["order_constraints"],
        lock_analysis=lock_analysis,
        memory_model=solver_cfg["memory_model"],
        backend="thread",
        cache=VerdictCache(),
        solver_timeout=solver_cfg["solver_timeout"],
        incremental_smt=solver_cfg["incremental_smt"],
    )
    kwargs = payload["checker_kwargs"]
    checker = ALL_CHECKERS[payload["kind"]](
        bundle,
        limits=payload["limits"],
        realizability=realizability,
        inter_thread_only=kwargs["inter_thread_only"],
        max_reports_per_source=kwargs["max_reports_per_source"],
        parallel_solving=False,
        sink_reachability=kwargs["sink_reachability"],
        guard_pruning=kwargs["guard_pruning"],
        dead_memo=kwargs["dead_memo"],
        streaming=False,
        enumeration_workers=1,
    )
    return checker.shard_rows(shard)


#: def-site index: maps variables to their defining instruction
def build_def_index(bundle: VFGBundle) -> Dict[Variable, Instruction]:
    index: Dict[Variable, Instruction] = {}
    for inst in bundle.module.all_instructions():
        var = inst.defined_var()
        if var is not None:
            index[var] = inst
    return index


def node_statement(bundle: VFGBundle, node: VFGNode) -> Optional[Instruction]:
    if isinstance(node, StoreNode):
        return node.inst
    if isinstance(node, NullNode):
        return node.inst
    if isinstance(node, DefNode):
        return bundle.def_index.get(node.var)
    return None


class PathSearcher:
    """DFS path enumeration with context-stack matching and pruning."""

    def __init__(
        self,
        bundle: VFGBundle,
        limits: SearchLimits = SearchLimits(),
        *,
        reach_index: Optional[SinkReachabilityIndex] = None,
        guard_pruning: bool = False,
        dead_memo: bool = False,
        sink_nodes: Optional[Set[VFGNode]] = None,
    ) -> None:
        self.bundle = bundle
        #: forward adjacency — the summary layer's demand-loading view
        #: when the run built one (identical lists, loaded per function
        #: span as the DFS reaches them), else the VFG itself
        self.graph = bundle.graph_view()
        self.limits = limits
        self.reach_index = reach_index
        self.guard_pruning = guard_pruning
        # The dead-state memo needs the sink set to decide deadness; a
        # property-agnostic search (no sink set) runs unmemoized.
        self.dead_memo = dead_memo and sink_nodes is not None
        self.sink_nodes = sink_nodes
        self.visits = 0
        self.paths_emitted = 0
        self.stats = SearchStatistics()
        self.truncations: Dict[str, int] = {}

    def search(
        self,
        origin: VFGNode,
        on_node: Callable[[VFGNode, ValueFlowPath], Optional[int]],
        alias_guard: Optional[BoolTerm] = None,
    ) -> SearchStatistics:
        """DFS from ``origin``; ``on_node`` fires for every node reached
        (including the origin with an empty path) and may return how many
        candidates it emitted there.  ``alias_guard`` seeds the guard
        prefix (e.g. the freed object's pointed-to-by condition)."""
        self.visits = 0
        self.paths_emitted = 0
        self.stats = SearchStatistics()
        self.truncations = {}
        path = ValueFlowPath(origin=origin)
        emitted = on_node(origin, path) or 0
        self.paths_emitted += emitted
        self.stats.candidates += emitted
        prefix: Optional[GuardPrefix] = None
        if self.guard_pruning:
            prefix = GuardPrefix()
            if alias_guard is not None and prefix.push(alias_guard):
                # The source's own side condition is already refutable:
                # no extension can be realizable, so nothing to search.
                self.stats.pruned_guard += 1
                return self.stats
        memo: Optional[Set[Tuple]] = set() if self.dead_memo else None
        self._dfs(
            origin,
            path,
            on_path_nodes={origin},
            context=(),
            avail=INFINITE_AVAIL,
            prefix=prefix,
            memo=memo,
            on_node=on_node,
        )
        self.stats.visits = self.visits
        if memo is not None:
            self.stats.memo_dead_states = len(memo)
        return self.stats

    def _truncate(self, limit: str) -> None:
        if limit != "max_depth" and limit in self.truncations:
            # Global budgets (visits, paths) stay exhausted while the
            # DFS unwinds: record them once per search, not per frame.
            return
        self.truncations[limit] = self.truncations.get(limit, 0) + 1
        if limit == "max_depth":
            self.stats.truncated_depth += 1
        elif limit == "max_visits":
            self.stats.truncated_visits += 1
        else:
            self.stats.truncated_paths += 1

    def _dfs(
        self,
        node: VFGNode,
        path: ValueFlowPath,
        on_path_nodes: Set[VFGNode],
        context: Tuple[int, ...],
        avail: int,
        prefix: Optional[GuardPrefix],
        memo: Optional[Set[Tuple]],
        on_node: Callable[[VFGNode, ValueFlowPath], Optional[int]],
    ) -> Tuple[bool, bool]:
        """Explore below ``node``; returns ``(clean, saw_sink)``.

        ``clean`` means the subtree was fully explored without hitting a
        limit or an on-path cycle block, so its (path-independent)
        outcome may be memoized; ``saw_sink`` means some node of the
        subtree belongs to the sink set.
        """
        out_edges = self.graph.out_edges(node)
        if not out_edges:
            return True, False
        if len(path.edges) >= self.limits.max_depth:
            self._truncate("max_depth")
            return False, False
        clean = True
        saw_sink = False
        sink_nodes = self.sink_nodes
        # hoisted out of the per-edge loop: this is the enumeration hot
        # path (one iteration per VFG edge visited)
        stats = self.stats
        limits = self.limits
        max_visits = limits.max_visits
        max_paths = limits.max_paths_per_source
        reach_index = self.reach_index
        for edge in out_edges:
            if self.visits >= max_visits:
                self._truncate("max_visits")
                return False, saw_sink
            if self.paths_emitted >= max_paths:
                self._truncate("max_paths_per_source")
                return False, saw_sink
            dst = edge.dst
            if dst in on_path_nodes:
                # Cycle block: the outcome depends on the current path,
                # so the subtree must not be memoized as dead.
                clean = False
                continue
            new_context = self._step_context(edge, context)
            if new_context is None:
                continue
            new_avail = self._step_avail(edge, avail)
            if reach_index is not None and not reach_index.can_enter(
                dst, new_avail
            ):
                stats.pruned_unreachable += 1
                continue
            pushed = False
            if prefix is not None and edge.guard is not TRUE:
                # The prefix grows/shrinks in strict DFS (stack) order —
                # the same discipline the incremental SMT layer uses for
                # its assumption scopes, so sibling paths diverging late
                # share both their quick-check state here and their
                # warm-solver clauses downstream.
                pushed = True
                if prefix.push(edge.guard):
                    # Prefix definitely unsat ⇒ every completed path
                    # through this edge has an unsat Φ_guards ⇒ the
                    # solver would refute all of them anyway.
                    stats.pruned_guard += 1
                    prefix.pop()
                    continue
            if memo is not None:
                state = (dst, new_context, prefix.fingerprint() if prefix else None)
                if state in memo:
                    stats.memo_hits += 1
                    if pushed:
                        prefix.pop()
                    continue
            self.visits += 1
            path.edges.append(edge)
            on_path_nodes.add(dst)
            emitted = on_node(dst, path) or 0
            self.paths_emitted += emitted
            stats.candidates += emitted
            child_clean, child_sink = self._dfs(
                dst, path, on_path_nodes, new_context, new_avail, prefix, memo, on_node
            )
            sub_sink = child_sink or (sink_nodes is not None and dst in sink_nodes)
            if memo is not None and child_clean and not sub_sink:
                memo.add(state)
            clean = clean and child_clean
            saw_sink = saw_sink or sub_sink
            on_path_nodes.discard(dst)
            path.edges.pop()
            if pushed:
                prefix.pop()
        return clean, saw_sink

    _FORK_MARKER = -1

    def _step_context(
        self, edge: VFGEdge, context: Tuple[int, ...]
    ) -> Optional[Tuple[int, ...]]:
        """CFL-style context update; None = edge not admissible here."""
        if edge.kind == "call":
            if len(context) >= self.limits.context_depth:
                return None
            return context + (edge.callsite,)
        if edge.kind == "forkarg":
            if len(context) >= self.limits.context_depth:
                return None
            return context + (self._FORK_MARKER,)
        if edge.kind == "ret":
            if not context:
                return ()  # unbalanced-up: returning out of the start scope
            top = context[-1]
            if top == self._FORK_MARKER:
                return None  # a thread never returns into its forker
            if top != edge.callsite:
                return None  # mismatched call/return parenthesis
            return context[:-1]
        return context

    def _step_avail(self, edge: VFGEdge, avail: int) -> int:
        """Base-level returns still admissible after taking ``edge`` —
        the number of context entries above the topmost fork marker
        (``INFINITE_AVAIL`` when no marker is on the stack)."""
        if edge.kind == "call":
            return avail if avail >= INFINITE_AVAIL else avail + 1
        if edge.kind == "forkarg":
            return 0
        if edge.kind == "ret":
            # avail == 0 with a marker on top was rejected by
            # _step_context; popping the empty stack keeps avail infinite.
            return avail if avail >= INFINITE_AVAIL else avail - 1
        return avail
