"""Least-squares linear fitting with R² (the paper's Fig. 8 analysis).

The paper fits ``time = a·KLoC + b`` and ``memory = a·KLoC + b`` over the
subjects and reports the coefficients of determination (R² ≈ 0.83 and
0.78) as evidence of near-linear scaling.  Pure-Python implementation —
no numpy needed for a 20-point fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["LinearFit", "linear_fit"]


@dataclass(frozen=True)
class LinearFit:
    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    def equation(self, xname: str = "x", yname: str = "y") -> str:
        return (
            f"{yname} = {self.slope:.4g}·{xname} + {self.intercept:.4g}"
            f"  (R² = {self.r_squared:.4f})"
        )


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares y = a·x + b with R²."""
    n = len(xs)
    if n != len(ys):
        raise ValueError("xs and ys must have equal length")
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate fit: all x values identical")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)
