"""Benchmark substrate: workload generation, subjects, metering, tables.

Run the full evaluation from the command line::

    python -m repro.bench                 # quick profile
    REPRO_BENCH_PROFILE=paper python -m repro.bench

or via pytest-benchmark targets in ``benchmarks/``.
"""

from .artifacts import ascii_time_chart, fig7_csv, fig8_csv, table1_csv, write_artifacts
from .baseline import load_bench_results, write_bench_results
from .codegen import GroundTruth, ProjectSpec, generate_project
from .curvefit import LinearFit, linear_fit
from .metering import Measurement, measure
from .runner import SubjectRun, ToolRun, prepare_subject, run_all, run_subject
from .subjects import PROFILES, SUBJECTS, Subject, active_profile, project_spec
from .tables import (
    fig8_fits,
    render_fig7_memory,
    render_fig7_time,
    render_fig8,
    render_table1,
)

__all__ = [
    "ascii_time_chart",
    "fig7_csv",
    "fig8_csv",
    "table1_csv",
    "write_artifacts",
    "load_bench_results",
    "write_bench_results",
    "GroundTruth",
    "ProjectSpec",
    "generate_project",
    "LinearFit",
    "linear_fit",
    "Measurement",
    "measure",
    "SubjectRun",
    "ToolRun",
    "prepare_subject",
    "run_all",
    "run_subject",
    "PROFILES",
    "SUBJECTS",
    "Subject",
    "active_profile",
    "project_spec",
    "fig8_fits",
    "render_fig7_memory",
    "render_fig7_time",
    "render_fig8",
    "render_table1",
]
