"""Benchmark engine: run Canary and the baselines over the subjects.

One :class:`SubjectRun` per subject collects everything the paper's
figures and table need: per-tool VFG-construction time and memory
(Fig. 7), end-to-end Canary time/memory (Fig. 8), and per-tool report
counts with ground-truth classification (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import AnalysisConfig, Canary
from ..baselines import FsamBaseline, SaberBaseline
from ..frontend import parse_program
from ..lowering import lower_program
from .codegen import GroundTruth, generate_project
from .metering import measure
from .subjects import SUBJECTS, BenchProfile, Subject, project_spec

__all__ = ["ToolRun", "SubjectRun", "run_subject", "run_all", "prepare_subject"]


@dataclass
class ToolRun:
    """One tool's outcome on one subject."""

    tool: str
    seconds: Optional[float] = None  # None = NA (budget exceeded)
    peak_mb: Optional[float] = None
    reports: Optional[int] = None
    true_positives: int = 0
    false_positives: int = 0
    timed_out: bool = False

    @property
    def fp_rate(self) -> Optional[float]:
        if not self.reports:
            return None
        return 100.0 * self.false_positives / self.reports


@dataclass
class SubjectRun:
    subject: Subject
    lines: int
    tools: Dict[str, ToolRun] = field(default_factory=dict)


_module_cache: Dict[Tuple[str, str], tuple] = {}


def prepare_subject(subject: Subject, profile: BenchProfile):
    """Generate + lower one subject (cached per profile)."""
    key = (profile.name, subject.name)
    cached = _module_cache.get(key)
    if cached is not None:
        return cached
    spec = project_spec(subject, profile)
    source, truth = generate_project(spec)
    module = lower_program(parse_program(source, f"{subject.name}.mcc"))
    lines = source.count("\n")
    _module_cache[key] = (module, truth, lines)
    return module, truth, lines


def _classify(reports, module, truth: GroundTruth) -> Tuple[int, int]:
    tps = fps = 0
    for report in reports:
        func = module.function_of(report.source)
        if truth.classify_free_site(func) == "tp":
            tps += 1
        else:
            fps += 1
    return tps, fps


def run_subject(
    subject: Subject,
    profile: BenchProfile,
    tools: Tuple[str, ...] = ("canary", "saber", "fsam"),
    track_memory: bool = True,
    canary_timeout_seconds: Optional[float] = None,
) -> SubjectRun:
    module, truth, lines = prepare_subject(subject, profile)
    run = SubjectRun(subject=subject, lines=lines)

    if "canary" in tools:
        # Caching off: the driver's cross-run artifact/verdict caches would
        # otherwise make repeated measurements of one subject meaningless.
        # ``canary_timeout_seconds`` (None = unlimited, the default) maps
        # to the run's wall budget; an expired run comes back as a partial
        # report flagged timed_out and is recorded NA like the baselines.
        canary = Canary(
            AnalysisConfig(use_cache=False, timeout_seconds=canary_timeout_seconds)
        )

        meas = measure(
            lambda: canary.analyze_module(module), track_memory=track_memory
        )
        report = meas.result
        if report.timed_out:
            run.tools["canary"] = ToolRun(tool="canary", timed_out=True)
        else:
            tps, fps = _classify(report.bugs, module, truth)
            run.tools["canary"] = ToolRun(
                tool="canary",
                seconds=meas.seconds,
                peak_mb=meas.peak_mb,
                reports=report.num_reports,
                true_positives=tps,
                false_positives=fps,
            )

    budget = profile.baseline_budget_seconds
    if "saber" in tools:
        saber = SaberBaseline(time_budget=budget)
        meas = measure(lambda: saber.detect_uaf(module), track_memory=track_memory)
        result = meas.result
        if result.timed_out or meas.seconds > budget:
            run.tools["saber"] = ToolRun(tool="saber", timed_out=True)
        else:
            tps, fps = _classify(result.reports, module, truth)
            run.tools["saber"] = ToolRun(
                tool="saber",
                seconds=meas.seconds,
                peak_mb=meas.peak_mb,
                reports=len(result.reports),
                true_positives=tps,
                false_positives=fps,
            )

    if "fsam" in tools:
        fsam = FsamBaseline(time_budget=budget)
        meas = measure(lambda: fsam.detect_uaf(module), track_memory=track_memory)
        result = meas.result
        if result.timed_out or meas.seconds > budget:
            run.tools["fsam"] = ToolRun(tool="fsam", timed_out=True)
        else:
            tps, fps = _classify(result.reports, module, truth)
            run.tools["fsam"] = ToolRun(
                tool="fsam",
                seconds=meas.seconds,
                peak_mb=meas.peak_mb,
                reports=len(result.reports),
                true_positives=tps,
                false_positives=fps,
            )
    return run


def run_all(
    profile: BenchProfile,
    tools: Tuple[str, ...] = ("canary", "saber", "fsam"),
    subjects: Optional[List[Subject]] = None,
    track_memory: bool = True,
) -> List[SubjectRun]:
    return [
        run_subject(s, profile, tools, track_memory)
        for s in (subjects if subjects is not None else SUBJECTS)
    ]
