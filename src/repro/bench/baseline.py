"""Benchmark baseline files: the ``BENCH_*.json`` writer and loader.

Every benchmark artifact shares one on-disk shape::

    {
      "meta":  {...},          # provenance block from repro.obs.run_meta()
      "<benchmark>": {...},    # one object of recorded numbers per benchmark
      ...
    }

``write_bench_results`` stamps the ``meta`` block so artifacts produced
by different CI matrix entries (python version, runner, commit) stay
distinguishable; ``load_bench_results`` strips it again so comparison
code only ever sees the measurements.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Tuple

from ..obs import run_meta

__all__ = ["write_bench_results", "load_bench_results"]


def write_bench_results(path, results: Dict[str, Dict[str, Any]], **meta_extra) -> None:
    """Write a ``BENCH_*.json`` document: measurements plus ``meta``."""
    doc: Dict[str, Any] = {"meta": run_meta(**meta_extra)}
    for name, data in results.items():
        if name == "meta":
            raise ValueError("benchmark name 'meta' is reserved")
        doc[name] = data
    pathlib.Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_bench_results(path) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """Read a ``BENCH_*.json`` document; returns ``(meta, results)``.

    Pre-observability baselines without a ``meta`` block load with an
    empty meta dict, so the regression gate keeps working across the
    format transition.
    """
    doc = json.loads(pathlib.Path(path).read_text())
    meta = doc.pop("meta", {})
    return meta, doc
