"""Renderers that print the paper's figures/tables from benchmark runs."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .curvefit import LinearFit, linear_fit
from .runner import SubjectRun

__all__ = [
    "render_fig7_time",
    "render_fig7_memory",
    "render_fig8",
    "render_table1",
    "fig8_fits",
]


def _fmt(value: Optional[float], unit: str = "", na: str = "NA") -> str:
    if value is None:
        return na
    return f"{value:.3f}{unit}"


def render_fig7_time(runs: Sequence[SubjectRun]) -> str:
    """Fig. 7a: per-subject VFG/analysis time, Saber vs Fsam vs Canary."""
    lines = [
        "Fig. 7a — analysis time per subject (seconds; NA = budget exceeded)",
        f"{'#':>2} {'subject':<14} {'lines':>7} {'Saber':>10} {'Fsam':>10} {'Canary':>10}",
    ]
    for run in runs:
        saber = run.tools.get("saber")
        fsam = run.tools.get("fsam")
        canary = run.tools.get("canary")
        lines.append(
            f"{run.subject.index:>2} {run.subject.name:<14} {run.lines:>7} "
            f"{_fmt(saber.seconds if saber and not saber.timed_out else None):>10} "
            f"{_fmt(fsam.seconds if fsam and not fsam.timed_out else None):>10} "
            f"{_fmt(canary.seconds if canary else None):>10}"
        )
    return "\n".join(lines)


def render_fig7_memory(runs: Sequence[SubjectRun]) -> str:
    """Fig. 7b: per-subject peak memory, Saber vs Fsam vs Canary."""
    lines = [
        "Fig. 7b — peak analysis memory per subject (MB; NA = budget exceeded)",
        f"{'#':>2} {'subject':<14} {'lines':>7} {'Saber':>10} {'Fsam':>10} {'Canary':>10}",
    ]
    for run in runs:
        saber = run.tools.get("saber")
        fsam = run.tools.get("fsam")
        canary = run.tools.get("canary")
        lines.append(
            f"{run.subject.index:>2} {run.subject.name:<14} {run.lines:>7} "
            f"{_fmt(saber.peak_mb if saber and not saber.timed_out else None):>10} "
            f"{_fmt(fsam.peak_mb if fsam and not fsam.timed_out else None):>10} "
            f"{_fmt(canary.peak_mb if canary else None):>10}"
        )
    return "\n".join(lines)


def fig8_fits(runs: Sequence[SubjectRun]) -> Tuple[LinearFit, LinearFit]:
    """Linear fits of Canary time and memory against subject size."""
    pts = [
        (run.lines / 1000.0, run.tools["canary"])
        for run in runs
        if "canary" in run.tools
    ]
    xs = [x for x, _t in pts]
    time_fit = linear_fit(xs, [t.seconds for _x, t in pts])
    mem_fit = linear_fit(xs, [t.peak_mb or 0.0 for _x, t in pts])
    return time_fit, mem_fit


def render_fig8(runs: Sequence[SubjectRun]) -> str:
    """Fig. 8: Canary scalability — time/memory vs size, with R² fits."""
    fits = None
    if sum(1 for r in runs if "canary" in r.tools) >= 2:
        fits = fig8_fits(runs)
    lines = [
        "Fig. 8 — Canary end-to-end scalability",
        f"{'#':>2} {'subject':<14} {'KLoC(gen)':>10} {'time(s)':>10} {'mem(MB)':>10}",
    ]
    for run in sorted(runs, key=lambda r: r.lines):
        canary = run.tools.get("canary")
        if canary is None:
            continue
        lines.append(
            f"{run.subject.index:>2} {run.subject.name:<14} "
            f"{run.lines / 1000.0:>10.2f} {canary.seconds:>10.3f} "
            f"{(canary.peak_mb or 0.0):>10.2f}"
        )
    if fits is not None:
        time_fit, mem_fit = fits
        lines.append("fit: " + time_fit.equation("KLoC", "time"))
        lines.append("fit: " + mem_fit.equation("KLoC", "memory"))
    return "\n".join(lines)


def render_table1(runs: Sequence[SubjectRun]) -> str:
    """Table 1: bug-hunting results — reports and FP rates per tool."""
    header = (
        f"{'#':>2} {'project':<14} {'lines':>7} "
        f"{'Saber FP%':>10} {'Saber #R':>9} "
        f"{'Fsam FP%':>9} {'Fsam #R':>8} "
        f"{'Canary #FP':>11} {'Canary #R':>10}"
    )
    lines = ["Table 1 — results of bug hunting (NA = budget exceeded)", header]
    totals = {"canary_r": 0, "canary_fp": 0, "saber_r": 0, "fsam_r": 0}
    for run in runs:
        saber = run.tools.get("saber")
        fsam = run.tools.get("fsam")
        canary = run.tools.get("canary")

        def cell_rate(tool):
            if tool is None or tool.timed_out:
                return "NA"
            rate = tool.fp_rate
            return "—" if rate is None else f"{rate:.2f}%"

        def cell_count(tool):
            if tool is None or tool.timed_out:
                return "NA"
            return str(tool.reports)

        if canary:
            totals["canary_r"] += canary.reports or 0
            totals["canary_fp"] += canary.false_positives
        if saber and not saber.timed_out:
            totals["saber_r"] += saber.reports or 0
        if fsam and not fsam.timed_out:
            totals["fsam_r"] += fsam.reports or 0
        lines.append(
            f"{run.subject.index:>2} {run.subject.name:<14} {run.lines:>7} "
            f"{cell_rate(saber):>10} {cell_count(saber):>9} "
            f"{cell_rate(fsam):>9} {cell_count(fsam):>8} "
            f"{(str(canary.false_positives) if canary else 'NA'):>11} "
            f"{cell_count(canary):>10}"
        )
    canary_rate = (
        100.0 * totals["canary_fp"] / totals["canary_r"] if totals["canary_r"] else 0.0
    )
    lines.append(
        f"totals: Canary {totals['canary_r']} reports, {totals['canary_fp']} FPs "
        f"({canary_rate:.2f}% FP rate); Saber {totals['saber_r']} reports; "
        f"Fsam {totals['fsam_r']} reports (completed subjects only)"
    )
    return "\n".join(lines)
