"""Compare two benchmark artifact sets (CI regression detection).

``python -m repro.bench.compare old/table1.csv new/table1.csv`` (or the
library call) diffs two Table-1 CSVs: changed report counts are verdict
regressions (the precision contract), while time changes beyond a
threshold are performance regressions (checked against fig7.csv).
"""

from __future__ import annotations

import csv
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Regression", "compare_table1", "compare_fig7", "main"]


@dataclass
class Regression:
    subject: str
    kind: str  # 'verdict' | 'time'
    detail: str

    def __repr__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


def _load_csv(path) -> Dict[str, Dict[str, str]]:
    rows: Dict[str, Dict[str, str]] = {}
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            if row.get("subject"):
                rows[row["subject"]] = row
    return rows


def compare_table1(old_path, new_path) -> List[Regression]:
    """Verdict regressions: any change in Canary's per-subject report,
    FP or TP counts between two runs."""
    old, new = _load_csv(old_path), _load_csv(new_path)
    out: List[Regression] = []
    for subject, old_row in old.items():
        new_row = new.get(subject)
        if new_row is None:
            out.append(Regression(subject, "verdict", "subject missing in new run"))
            continue
        for column in ("canary_reports", "canary_fps", "canary_tps"):
            if old_row.get(column, "") != new_row.get(column, ""):
                out.append(
                    Regression(
                        subject,
                        "verdict",
                        f"{column}: {old_row.get(column)} -> {new_row.get(column)}",
                    )
                )
    return out


def compare_fig7(
    old_path, new_path, slowdown_threshold: float = 1.5
) -> List[Regression]:
    """Time regressions: Canary slower than ``threshold×`` the old run,
    or a previously-completed tool now timing out."""
    old, new = _load_csv(old_path), _load_csv(new_path)
    out: List[Regression] = []
    for subject, old_row in old.items():
        new_row = new.get(subject)
        if new_row is None:
            continue
        for tool in ("canary", "saber", "fsam"):
            column = f"{tool}_seconds"
            old_v, new_v = old_row.get(column, "NA"), new_row.get(column, "NA")
            if old_v != "NA" and new_v == "NA":
                out.append(
                    Regression(subject, "time", f"{tool} newly exceeds the budget")
                )
            elif old_v != "NA" and new_v != "NA":
                old_s, new_s = float(old_v), float(new_v)
                if old_s > 0.05 and new_s > old_s * slowdown_threshold:
                    out.append(
                        Regression(
                            subject,
                            "time",
                            f"{tool} {old_s:.3f}s -> {new_s:.3f}s "
                            f"({new_s / old_s:.1f}×)",
                        )
                    )
    return out


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print("usage: python -m repro.bench.compare OLD_DIR NEW_DIR", file=sys.stderr)
        return 2
    old_dir, new_dir = (pathlib.Path(a) for a in argv)
    regressions: List[Regression] = []
    regressions += compare_table1(old_dir / "table1.csv", new_dir / "table1.csv")
    regressions += compare_fig7(old_dir / "fig7.csv", new_dir / "fig7.csv")
    if not regressions:
        print("no regressions")
        return 0
    for r in regressions:
        print(r)
    return 1


if __name__ == "__main__":
    sys.exit(main())
