"""Benchmark-regression gate: diff fresh ``BENCH_*.json`` against baselines.

CI regenerates ``BENCH_enumeration.json`` / ``BENCH_incremental.json``
and this module compares them against the committed baselines::

    python -m repro.bench.compare_baselines BASELINE FRESH [BASELINE FRESH ...] \
        [--tolerance 0.35]

Comparison rules, per metric key:

* ``meta`` blocks are provenance, never compared;
* **timing metrics** — keys ending in ``_s`` or containing ``seconds``
  — are noisy, so they only fail when the fresh value *regresses*
  (gets slower) by more than the relative tolerance; speedups pass at
  any magnitude.  ``speedup`` is the same check mirrored (higher is
  better, so only a drop beyond the tolerance fails);
* **everything else** (visit counts, query counts, pass lists, bug
  keys, reduction ratios) is deterministic and must match exactly;
* a metric present in the baseline but missing from the fresh run is a
  regression; a new metric only in the fresh run is reported but does
  not fail (baselines are refreshed by committing the new file).

The gate prints a delta table for every comparison and exits non-zero
iff at least one regression was found.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .baseline import load_bench_results

__all__ = ["Delta", "compare_documents", "render_deltas", "main"]

#: default relative tolerance for timing metrics (±35 %)
DEFAULT_TOLERANCE = 0.35


def is_timing_key(key: str) -> bool:
    """Wall-clock-derived metrics: compared with a relative tolerance."""
    return key.endswith("_s") or "seconds" in key or key == "speedup"


def higher_is_better(key: str) -> bool:
    return key == "speedup"


@dataclass
class Delta:
    """One compared metric: its values and the verdict."""

    benchmark: str
    key: str
    baseline: Any
    fresh: Any
    status: str  # "ok" | "exact" | "new" | "REGRESSION"
    note: str = ""

    @property
    def regressed(self) -> bool:
        return self.status == "REGRESSION"


def _relative_change(baseline: float, fresh: float) -> Optional[float]:
    if baseline == 0:
        return None if fresh == 0 else float("inf")
    return (fresh - baseline) / abs(baseline)


def _compare_timing(benchmark: str, key: str, base: float, fresh: float, tolerance: float) -> Delta:
    change = _relative_change(base, fresh)
    if change is None:
        return Delta(benchmark, key, base, fresh, "ok", "both zero")
    note = f"{change:+.1%}"
    if higher_is_better(key):
        regressed = change < -tolerance
    else:
        regressed = change > tolerance
    if regressed:
        return Delta(
            benchmark, key, base, fresh, "REGRESSION", f"{note} (tolerance ±{tolerance:.0%})"
        )
    return Delta(benchmark, key, base, fresh, "ok", note)


def _compare_exact(benchmark: str, key: str, base: Any, fresh: Any) -> Delta:
    if base == fresh:
        return Delta(benchmark, key, base, fresh, "exact")
    return Delta(benchmark, key, base, fresh, "REGRESSION", "exact-match metric changed")


def compare_documents(
    baseline: Dict[str, Dict[str, Any]],
    fresh: Dict[str, Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Delta]:
    """Compare two loaded BENCH documents (``meta`` already stripped)."""
    deltas: List[Delta] = []
    for bench_name, base_metrics in baseline.items():
        fresh_metrics = fresh.get(bench_name)
        if fresh_metrics is None:
            deltas.append(
                Delta(bench_name, "*", "present", "missing", "REGRESSION", "benchmark not run")
            )
            continue
        for key, base_value in base_metrics.items():
            if key not in fresh_metrics:
                deltas.append(
                    Delta(bench_name, key, base_value, None, "REGRESSION", "metric missing")
                )
                continue
            fresh_value = fresh_metrics[key]
            numeric = isinstance(base_value, (int, float)) and isinstance(
                fresh_value, (int, float)
            )
            if is_timing_key(key) and numeric:
                deltas.append(
                    _compare_timing(bench_name, key, base_value, fresh_value, tolerance)
                )
            else:
                deltas.append(_compare_exact(bench_name, key, base_value, fresh_value))
        for key in fresh_metrics:
            if key not in base_metrics:
                deltas.append(
                    Delta(bench_name, key, None, fresh_metrics[key], "new", "not in baseline")
                )
    for bench_name in fresh:
        if bench_name not in baseline:
            deltas.append(Delta(bench_name, "*", None, "present", "new", "new benchmark"))
    return deltas


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    text = str(value)
    return text if len(text) <= 28 else text[:25] + "..."


def render_deltas(deltas: List[Delta]) -> str:
    """A readable fixed-width delta table."""
    headers = ("benchmark", "metric", "baseline", "fresh", "status", "")
    rows = [
        (d.benchmark, d.key, _fmt(d.baseline), _fmt(d.fresh), d.status, d.note)
        for d in deltas
    ]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip())
    return "\n".join(lines)


def compare_files(baseline_path, fresh_path, tolerance: float) -> List[Delta]:
    _, baseline = load_bench_results(baseline_path)
    _, fresh = load_bench_results(fresh_path)
    return compare_documents(baseline, fresh, tolerance=tolerance)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare_baselines",
        description="Fail when a fresh BENCH_*.json regresses against its baseline.",
    )
    parser.add_argument(
        "files",
        nargs="+",
        metavar="BASELINE FRESH",
        help="alternating baseline/fresh file pairs",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help="relative tolerance for timing metrics (default: %(default)s;"
        " raise for noisy shared CI runners)",
    )
    args = parser.parse_args(argv)
    if len(args.files) % 2 != 0:
        parser.error("expected an even number of files (baseline/fresh pairs)")

    regressions = 0
    for i in range(0, len(args.files), 2):
        baseline_path, fresh_path = args.files[i], args.files[i + 1]
        for path in (baseline_path, fresh_path):
            if not pathlib.Path(path).is_file():
                print(f"error: no such file: {path}", file=sys.stderr)
                return 2
        deltas = compare_files(baseline_path, fresh_path, tolerance=args.tolerance)
        print(f"== {fresh_path} vs baseline {baseline_path}")
        print(render_deltas(deltas))
        bad = sum(1 for d in deltas if d.regressed)
        regressions += bad
        print(
            f"{bad} regression(s), "
            f"{sum(1 for d in deltas if d.status == 'ok')} within tolerance, "
            f"{sum(1 for d in deltas if d.status == 'exact')} exact, "
            f"{sum(1 for d in deltas if d.status == 'new')} new"
        )
        print()
    if regressions:
        print(f"FAIL: {regressions} benchmark regression(s)", file=sys.stderr)
        return 1
    print("OK: no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
