"""Time/memory metering for the benchmark harness.

The paper measures wall-clock time and peak resident memory per tool
(Fig. 7, Fig. 8); here we use ``time.perf_counter`` and ``tracemalloc``
peak (Python-heap peak — a consistent, reproducible proxy for RSS).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

__all__ = ["Measurement", "measure"]


@dataclass
class Measurement:
    result: Any
    seconds: float
    peak_mb: float
    timed_out: bool = False


def measure(
    fn: Callable[[], Any],
    track_memory: bool = True,
    budget_seconds: Optional[float] = None,
) -> Measurement:
    """Run ``fn`` measuring wall time and Python-heap peak.

    ``budget_seconds`` marks the measurement as timed out when the run
    exceeds it (cooperative: the called analyses take their own budget
    parameter to stop early; this flag catches overshoot).
    """
    if track_memory:
        tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        seconds = time.perf_counter() - start
        peak = 0
        if track_memory:
            _cur, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
    timed_out = budget_seconds is not None and seconds > budget_seconds
    return Measurement(
        result=result,
        seconds=seconds,
        peak_mb=peak / (1024 * 1024),
        timed_out=timed_out,
    )
