"""Deterministic synthetic-project generator.

The paper evaluates on twenty open-source C/C++ projects.  Those trees
(and their concurrency-bug ground truth) are not available here, so the
benchmarks substitute *generated MiniCC projects* that exercise the same
analysis code paths:

* **filler units** — call chains, pointer shuffles, heap boxes and loops
  that never escape a thread: they cost an exhaustive points-to analysis
  (Saber/FSAM) dearly but are skipped by Canary's escape-guided
  interference reasoning;
* **real inter-thread UAF bugs** (``real_uaf_*``) — a worker publishes a
  pointer through a shared slot and frees it while the parent may still
  dereference (the paper's transmission/firefox bug shape);
* **Canary false-positive patterns** (``cfp_uaf_*``) — free and use
  guarded by *independent* opaque conditions that are correlated at
  runtime in ways no static tool can see (the paper's 26.67% FP rate
  comes from exactly such unmodeled correlations);
* **guard-infeasible baits** (``bait_guard_*``) — the Fig. 2 pattern:
  contradictory branch conditions on a shared ``extern`` config;
* **order-infeasible baits** (``bait_order_*``) — flows forbidden by
  fork/join order (use-before-fork and join-protected overwrites).

Canary should report exactly the real bugs plus the cfp patterns;
the unguarded baselines additionally report every bait (plus aliasing
noise), reproducing the Table 1 asymmetry.

Generation is deterministic given the spec (seeded PRNG), so benchmark
runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

__all__ = ["ProjectSpec", "generate_project", "GroundTruth"]


@dataclass(frozen=True)
class ProjectSpec:
    """Parameters of one synthetic subject."""

    name: str
    target_lines: int
    real_bugs: int = 1
    canary_fps: int = 0
    guard_baits: int = 1
    order_baits: int = 1
    seed: int = 0

    #: lines consumed by one filler utility function, its share of the
    #: dispatch handlers, and the call-site lines in main (approximate)
    FILLER_LINES: int = 21


@dataclass
class GroundTruth:
    """What the generator injected (for report classification)."""

    real_bug_functions: List[str] = field(default_factory=list)
    canary_fp_functions: List[str] = field(default_factory=list)
    bait_functions: List[str] = field(default_factory=list)

    def classify_free_site(self, function_name: str) -> str:
        """'tp' | 'fp' for a report whose free is in ``function_name``."""
        if function_name in self.real_bug_functions:
            return "tp"
        return "fp"


def generate_project(spec: ProjectSpec) -> tuple[str, GroundTruth]:
    """Emit MiniCC source of roughly ``spec.target_lines`` lines."""
    rng = random.Random(spec.seed or hash(spec.name) & 0xFFFF)
    truth = GroundTruth()
    parts: List[str] = []
    main_body: List[str] = []
    thread_counter = [0]

    n_externs = max(4, spec.guard_baits + 2)
    for i in range(n_externs):
        parts.append(f"extern int cfg{i};")
    parts.append("")

    def fresh_thread() -> str:
        thread_counter[0] += 1
        return f"t{thread_counter[0]}"

    # ----- injected patterns ------------------------------------------------

    for i in range(spec.real_bugs):
        fn = f"real_uaf_worker_{i}"
        truth.real_bug_functions.append(fn)
        parts.append(
            f"void {fn}(int** slot) {{\n"
            f"    int* fresh = malloc();\n"
            f"    *slot = fresh;\n"
            f"    free(fresh);\n"
            f"}}"
        )
        t = fresh_thread()
        main_body += [
            f"    int** rslot{i} = malloc();",
            f"    int* rinit{i} = malloc();",
            f"    *rslot{i} = rinit{i};",
            f"    fork({t}, {fn}, rslot{i});",
            f"    int* rv{i} = *rslot{i};",
            f"    print(*rv{i});",
        ]

    for i in range(spec.canary_fps):
        fn = f"cfp_uaf_worker_{i}"
        truth.canary_fp_functions.append(fn)
        # The free runs only on an error path; the use only on the success
        # path.  At runtime the two opaque conditions are exclusive, but no
        # static tool can know that: Canary reports it (a false positive,
        # like the paper's 4/15).
        parts.append(
            f"void {fn}(int** slot) {{\n"
            f"    int* fresh = malloc();\n"
            f"    *slot = fresh;\n"
            f"    int failed = nondet();\n"
            f"    if (failed) {{\n"
            f"        free(fresh);\n"
            f"    }}\n"
            f"}}"
        )
        t = fresh_thread()
        main_body += [
            f"    int** cslot{i} = malloc();",
            f"    int* cinit{i} = malloc();",
            f"    *cslot{i} = cinit{i};",
            f"    fork({t}, {fn}, cslot{i});",
            f"    int ok{i} = nondet();",
            f"    if (ok{i}) {{",
            f"        int* cv{i} = *cslot{i};",
            f"        print(*cv{i});",
            f"    }}",
        ]

    for i in range(spec.guard_baits):
        fn = f"bait_guard_worker_{i}"
        truth.bait_functions.append(fn)
        cfg = f"cfg{i % n_externs}"
        # Arithmetic complements (cfg < 2 vs cfg >= 2): contradictory, but
        # not syntactically complementary literals — the semi-decision
        # filter (or, with pruning off, the SMT solver) must refute them.
        parts.append(
            f"void {fn}(int** slot) {{\n"
            f"    int* fresh = malloc();\n"
            f"    if ({cfg} < 2) {{\n"
            f"        *slot = fresh;\n"
            f"        free(fresh);\n"
            f"    }}\n"
            f"}}"
        )
        t = fresh_thread()
        main_body += [
            f"    int** gslot{i} = malloc();",
            f"    int* ginit{i} = malloc();",
            f"    *gslot{i} = ginit{i};",
            f"    fork({t}, {fn}, gslot{i});",
            f"    if ({cfg} >= 2) {{",
            f"        int* gv{i} = *gslot{i};",
            f"        print(*gv{i});",
            f"    }}",
        ]

    for i in range(spec.order_baits):
        fn = f"bait_order_worker_{i}"
        truth.bait_functions.append(fn)
        parts.append(
            f"void {fn}(int** slot) {{\n"
            f"    int* old = *slot;\n"
            f"    int* fresh = malloc();\n"
            f"    *slot = fresh;\n"
            f"    free(old);\n"
            f"}}"
        )
        t = fresh_thread()
        # Join-protected: after join the slot holds 'fresh'; the freed
        # 'old' can no longer be loaded (Φ_ls + Φ_po refute it).
        main_body += [
            f"    int** oslot{i} = malloc();",
            f"    int* oinit{i} = malloc();",
            f"    *oslot{i} = oinit{i};",
            f"    fork({t}, {fn}, oslot{i});",
            f"    join({t});",
            f"    int* ov{i} = *oslot{i};",
            f"    print(*ov{i});",
        ]

    # ----- filler ------------------------------------------------------------

    committed = sum(p.count("\n") + 1 for p in parts) + len(main_body) + 8
    filler_needed = max(0, spec.target_lines - committed)
    n_filler = filler_needed // spec.FILLER_LINES

    # Dispatch-table pattern: each handler is address-taken and invoked
    # through its own function-pointer variable.  Unification-based
    # resolution (Canary's thread call graph) keeps the targets separate;
    # an inclusion-based exhaustive analysis conservatively couples every
    # address-taken handler at every indirect site — a classic source of
    # superlinear blow-up for the Saber family.
    n_dispatch = max(1, n_filler // 3)
    for d in range(n_dispatch):
        parts.append(
            f"int* handler_{d}(int* a0) {{\n"
            f"    int** cell = malloc();\n"
            f"    *cell = a0;\n"
            f"    int* r = *cell;\n"
            f"    return r;\n"
            f"}}"
        )

    # Every utility churns the same pass-through *work box*: it stores a
    # fresh object and immediately reloads.  Flow-sensitively (Canary,
    # Alg. 1) the strong update keeps the box's content a single entry, so
    # the VFG stays sparse and linear.  A flow-insensitive exhaustive
    # analysis accumulates *every* utility's object in the one abstract
    # cell, so the store×load pairing is quadratic in the number of
    # utilities — the Saber/FSAM scalability wall of Fig. 7.  The box
    # never reaches a fork, so Canary's escape analysis skips it entirely.
    main_body.insert(0, "    int** workbox = malloc();")
    for u in range(n_filler):
        fn = f"util_{u}"
        cfg = f"cfg{rng.randrange(n_externs)}"
        threshold = rng.randrange(8)
        parts.append(
            f"int* {fn}(int* a0, int* b0, int** box) {{\n"
            f"    int* t0 = a0;\n"
            f"    int* t1 = t0;\n"
            f"    int* fresh = malloc();\n"
            f"    *box = fresh;\n"
            f"    int* got = *box;\n"
            f"    int* out = got;\n"
            f"    if ({cfg} > {threshold}) {{\n"
            f"        out = b0;\n"
            f"    }}\n"
            f"    int n = 0;\n"
            f"    while (n < 2) {{\n"
            f"        n = n + 1;\n"
            f"    }}\n"
            f"    return out;\n"
            f"}}"
        )
        if u % 3 == 0:
            main_body.append(f"    int* u{u} = util_{u}(fp0, fp1, workbox);")
        elif u % 3 == 1:
            main_body.append(f"    u{u - 1} = util_{u}(u{u - 1}, fp0, workbox);")
        else:
            main_body.append(f"    int* u{u} = util_{u}(u{u - 1}, u{u - 2}, workbox);")
        if u % 4 == 0:
            d = rng.randrange(n_dispatch)
            main_body.append(f"    int* h{u} = handler_{d};")
            main_body.append(f"    int* hv{u} = h{u}(fp0);")

    header = [
        "void main() {",
        "    int* fp0 = malloc();",
        "    int* fp1 = malloc();",
    ]
    parts.append("\n".join(header + main_body + ["}"]))
    source = "\n\n".join(parts) + "\n"
    return source, truth
