"""The twenty evaluation subjects of the paper's Table 1.

Each entry records the project's real size (KLoC, from Table 1) and the
ground-truth injection counts derived from the paper's reported results:

* ``canary_reports``/``canary_fps`` come straight from Table 1's Canary
  columns (15 reports, 4 FPs, 26.67% FP rate overall);
* real bugs = reports − FPs for that subject;
* bait counts scale with project size, standing in for the code mass
  that makes the unguarded baselines report hundreds-to-thousands of
  warnings per subject.

Synthetic size: ``lines = 250 + lines_per_kloc × KLoC`` (capped), so the
relative ordering of subject sizes matches the paper.  Two profiles:

* ``quick``  — small sizes for CI / pytest-benchmark runs;
* ``paper``  — the full scaled sizes used for EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

from .codegen import ProjectSpec

__all__ = ["Subject", "SUBJECTS", "project_spec", "active_profile", "PROFILES"]


@dataclass(frozen=True)
class Subject:
    """One Table-1 row."""

    index: int
    name: str
    kloc: int
    #: Canary columns of Table 1
    canary_reports: int
    canary_fps: int
    #: paper-reported baseline results (for EXPERIMENTS.md comparison)
    saber_reports: object  # int | None (NA)
    saber_fp_rate: object  # float | None
    fsam_reports: object
    fsam_fp_rate: object

    @property
    def real_bugs(self) -> int:
        return self.canary_reports - self.canary_fps


#: Table 1, verbatim.  None = NA (timed out in the paper's 12h budget).
SUBJECTS: List[Subject] = [
    Subject(1, "lrzip", 16, 2, 0, 63, 96.82, 32, 93.75),
    Subject(2, "lwan", 20, 1, 0, 89, 98.87, 44, 100.0),
    Subject(3, "leveldb", 21, 1, 1, 0, 100.0, 0, 100.0),
    Subject(4, "darknet", 29, 0, 0, 3636, 100.0, 144, 100.0),
    Subject(5, "coturn", 39, 2, 0, 1477, 100.0, 368, 100.0),
    Subject(6, "httrack", 49, 1, 1, 134, 100.0, None, None),
    Subject(7, "finedb", 51, 1, 0, 421, 100.0, None, None),
    Subject(8, "tcpdump", 85, 0, 0, 0, 100.0, None, None),
    Subject(9, "transmission", 88, 2, 0, 299, 99.33, None, None),
    Subject(10, "celix", 107, 0, 0, 3782, 100.0, None, None),
    Subject(11, "redis", 219, 0, 0, 0, 100.0, None, None),
    Subject(12, "git", 239, 0, 0, None, None, None, None),
    Subject(13, "zfs", 367, 1, 0, None, None, None, None),
    Subject(14, "HP-Socket", 426, 0, 0, None, None, None, None),
    Subject(15, "openssl", 451, 1, 1, None, None, None, None),
    Subject(16, "poco", 705, 0, 0, None, None, None, None),
    Subject(17, "mariadb", 1751, 1, 0, None, None, None, None),
    Subject(18, "ffmpeg", 2003, 0, 0, None, None, None, None),
    Subject(19, "mysql", 3118, 0, 0, None, None, None, None),
    Subject(20, "firefox", 8938, 2, 1, None, None, None, None),
]


@dataclass(frozen=True)
class BenchProfile:
    """Size/budget knobs for one benchmark configuration."""

    name: str
    lines_per_kloc: float
    max_lines: int
    base_lines: int
    #: wall-clock budget per baseline VFG construction ("NA" beyond it) —
    #: the scaled stand-in for the paper's 12-hour timeout
    baseline_budget_seconds: float


PROFILES: Dict[str, BenchProfile] = {
    "quick": BenchProfile(
        name="quick",
        lines_per_kloc=2.0,
        max_lines=8_000,
        base_lines=200,
        baseline_budget_seconds=0.6,
    ),
    "paper": BenchProfile(
        name="paper",
        lines_per_kloc=20.0,
        max_lines=65_000,
        base_lines=250,
        baseline_budget_seconds=1.5,
    ),
}


def active_profile() -> BenchProfile:
    """Profile selected by REPRO_BENCH_PROFILE (default: quick)."""
    return PROFILES[os.environ.get("REPRO_BENCH_PROFILE", "quick")]


def project_spec(subject: Subject, profile: BenchProfile) -> ProjectSpec:
    """The generator spec for one subject under one profile."""
    lines = min(
        profile.max_lines,
        int(profile.base_lines + profile.lines_per_kloc * subject.kloc),
    )
    # Bait density stands in for the concurrency-heavy code mass that
    # makes the baselines report hundreds of warnings on real projects.
    guard_baits = max(5, min(40, subject.kloc // 25 + 1))
    order_baits = max(5, min(40, subject.kloc // 25 + 1))
    return ProjectSpec(
        name=subject.name,
        target_lines=lines,
        real_bugs=subject.real_bugs,
        canary_fps=subject.canary_fps,
        guard_baits=guard_baits,
        order_baits=order_baits,
        seed=subject.index * 1009,
    )
