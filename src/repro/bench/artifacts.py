"""Benchmark artifacts: CSV dumps and ASCII charts.

``python -m repro.bench --artifacts DIR`` writes machine-readable CSVs
(one per table/figure) alongside the printed tables, and the ASCII chart
gives the Fig. 7a "log-scale time, subjects ordered by size" picture in
a terminal.
"""

from __future__ import annotations

import csv
import io
import math
import pathlib
from typing import Dict, List, Optional, Sequence

from .runner import SubjectRun
from .tables import fig8_fits

__all__ = ["fig7_csv", "table1_csv", "fig8_csv", "ascii_time_chart", "write_artifacts"]


def fig7_csv(runs: Sequence[SubjectRun]) -> str:
    """Fig. 7 data: per-subject time and memory for each tool."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        [
            "index",
            "subject",
            "lines",
            "saber_seconds",
            "saber_mb",
            "fsam_seconds",
            "fsam_mb",
            "canary_seconds",
            "canary_mb",
        ]
    )
    for run in runs:
        row: List[object] = [run.subject.index, run.subject.name, run.lines]
        for tool_name in ("saber", "fsam", "canary"):
            tool = run.tools.get(tool_name)
            if tool is None or tool.timed_out:
                row += ["NA", "NA"]
            else:
                row += [f"{tool.seconds:.6f}", f"{tool.peak_mb:.3f}"]
        writer.writerow(row)
    return out.getvalue()


def table1_csv(runs: Sequence[SubjectRun]) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        [
            "index",
            "subject",
            "lines",
            "saber_reports",
            "saber_fp_rate",
            "fsam_reports",
            "fsam_fp_rate",
            "canary_reports",
            "canary_fps",
            "canary_tps",
        ]
    )
    for run in runs:
        saber = run.tools.get("saber")
        fsam = run.tools.get("fsam")
        canary = run.tools.get("canary")

        def fmt(tool, attr):
            if tool is None or tool.timed_out:
                return "NA"
            value = getattr(tool, attr)
            if value is None:
                return ""
            return f"{value:.2f}" if isinstance(value, float) else str(value)

        writer.writerow(
            [
                run.subject.index,
                run.subject.name,
                run.lines,
                fmt(saber, "reports"),
                fmt(saber, "fp_rate"),
                fmt(fsam, "reports"),
                fmt(fsam, "fp_rate"),
                fmt(canary, "reports"),
                fmt(canary, "false_positives"),
                fmt(canary, "true_positives"),
            ]
        )
    return out.getvalue()


def fig8_csv(runs: Sequence[SubjectRun]) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["subject", "kloc_generated", "canary_seconds", "canary_mb"])
    for run in sorted(runs, key=lambda r: r.lines):
        canary = run.tools.get("canary")
        if canary is None:
            continue
        writer.writerow(
            [
                run.subject.name,
                f"{run.lines / 1000.0:.3f}",
                f"{canary.seconds:.6f}",
                f"{(canary.peak_mb or 0.0):.3f}",
            ]
        )
    if sum(1 for r in runs if "canary" in r.tools) >= 2:
        time_fit, mem_fit = fig8_fits(runs)
        writer.writerow([])
        writer.writerow(["fit_time", time_fit.slope, time_fit.intercept, time_fit.r_squared])
        writer.writerow(["fit_memory", mem_fit.slope, mem_fit.intercept, mem_fit.r_squared])
    return out.getvalue()


def ascii_time_chart(runs: Sequence[SubjectRun], width: int = 60) -> str:
    """Fig. 7a as an ASCII chart: log-scale time bars per subject/tool."""
    rows: List[str] = [
        "Fig. 7a (ASCII) — time, log scale; S=Saber F=Fsam C=Canary; x = NA"
    ]
    samples = []
    for run in runs:
        for tool_name in ("saber", "fsam", "canary"):
            tool = run.tools.get(tool_name)
            if tool is not None and not tool.timed_out and tool.seconds:
                samples.append(tool.seconds)
    if not samples:
        return rows[0] + "\n(no data)"
    lo = math.log10(max(1e-4, min(samples)))
    hi = math.log10(max(samples))
    span = max(1e-9, hi - lo)

    def bar(seconds: Optional[float], marker: str) -> str:
        if seconds is None:
            return "x"
        pos = int((math.log10(max(1e-4, seconds)) - lo) / span * (width - 1))
        return "·" * pos + marker

    for run in runs:
        rows.append(f"{run.subject.index:>2} {run.subject.name:<13} ({run.lines} lines)")
        for tool_name, marker in (("saber", "S"), ("fsam", "F"), ("canary", "C")):
            tool = run.tools.get(tool_name)
            seconds = (
                tool.seconds if tool is not None and not tool.timed_out else None
            )
            rows.append(f"    {bar(seconds, marker)}")
    return "\n".join(rows)


def write_artifacts(runs: Sequence[SubjectRun], directory) -> List[str]:
    """Write all CSVs + the ASCII chart to ``directory``; returns paths.

    A ``meta.json`` provenance stamp (git sha, python, timestamp) rides
    along so artifact bundles from different CI matrix entries stay
    distinguishable.
    """
    import json

    from ..obs import run_meta

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, content in (
        ("fig7.csv", fig7_csv(runs)),
        ("table1.csv", table1_csv(runs)),
        ("fig8.csv", fig8_csv(runs)),
        ("fig7a_ascii.txt", ascii_time_chart(runs)),
        ("meta.json", json.dumps(run_meta(), indent=2, sort_keys=True) + "\n"),
    ):
        path = directory / name
        path.write_text(content)
        written.append(str(path))
    return written
