"""CLI entry point: regenerate every table and figure of the evaluation.

Usage::

    python -m repro.bench [--profile quick|paper] [--tools canary,saber,fsam]
"""

from __future__ import annotations

import argparse
import sys

from .runner import run_all
from .subjects import PROFILES, SUBJECTS
from .tables import render_fig7_memory, render_fig7_time, render_fig8, render_table1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Canary reproduction benchmarks")
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    parser.add_argument(
        "--tools", default="canary,saber,fsam", help="comma-separated tool list"
    )
    parser.add_argument(
        "--subjects",
        default="",
        help="comma-separated subject names (default: all twenty)",
    )
    parser.add_argument(
        "--artifacts",
        default="",
        help="directory to write CSV/ASCII artifacts into",
    )
    args = parser.parse_args(argv)
    profile = PROFILES[args.profile]
    tools = tuple(t.strip() for t in args.tools.split(",") if t.strip())
    subjects = None
    if args.subjects:
        wanted = {s.strip() for s in args.subjects.split(",")}
        subjects = [s for s in SUBJECTS if s.name in wanted]

    print(f"profile={profile.name}  tools={','.join(tools)}", flush=True)
    runs = run_all(profile, tools=tools, subjects=subjects)
    print()
    print(render_fig7_time(runs))
    print()
    print(render_fig7_memory(runs))
    print()
    print(render_fig8(runs))
    print()
    print(render_table1(runs))
    if args.artifacts:
        from .artifacts import write_artifacts

        for path in write_artifacts(runs, args.artifacts):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
