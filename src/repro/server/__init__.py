"""Analysis-as-a-service: a long-lived daemon over the resident engine.

The one-shot CLI pays a cold Python process — parse, lower, analyze,
exit — for every invocation.  The server keeps the warm state the
engine has accumulated since PR 3 alive across requests: the in-memory
:class:`~repro.analysis.artifacts.ArtifactStore`, the Φ_all→verdict
cache, the LRU reachability-index cache and the disk summary namespace.
A request that re-submits an edited file rides the function-level
incremental path and re-analyzes in milliseconds.

Three layers:

* :mod:`repro.server.registry` — report records and their lifecycle
  (``queued → running → done | failed``), bounded retention;
* :mod:`repro.server.service` — the bounded worker pool around a shared
  store, request-scoped config isolation, per-request budgets, the
  server metrics registry;
* :mod:`repro.server.app` — the stdlib ``ThreadingHTTPServer`` HTTP/JSON
  face (``POST /analyze``, ``GET /reports/<id>``, ``GET /metrics``,
  ``GET /healthz``) and the ``repro serve`` entry point.

Correctness bar (same as every prior PR): a daemon-served report is
bug-key- and witness-identical to what a cold CLI one-shot on the same
source and config would produce.
"""

from .registry import ReportRecord, ReportRegistry
from .service import AnalysisService

__all__ = ["AnalysisService", "ReportRecord", "ReportRegistry"]
