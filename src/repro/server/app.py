"""HTTP/JSON face of the analysis daemon (stdlib-only).

Endpoints:

* ``POST /analyze`` — body ``{"source": "...", "filename": "f.mcc",
  "config": {...}, "wait": false}``; returns ``202`` with the report id
  (or ``200`` with the finished record when ``wait`` is true).
  Re-submitting an edited source under the same filename is the watch
  mode: the run rides the function-level incremental path against the
  resident store;
* ``GET /reports/<id>`` — poll one report (``queued``/``running``/
  ``done``/``failed``; ``done`` carries the portable result and the
  run's metrics snapshot);
* ``GET /reports`` — list records (without result payloads);
* ``DELETE /reports/<id>`` (or ``POST /reports/<id>/cancel``) — cancel
  an in-flight run;
* ``GET /metrics`` — the server's aggregate metrics registry plus live
  store statistics, as flat JSON;
* ``GET /healthz`` — liveness.

``serve_main`` is the ``repro serve`` subcommand: it builds the
:class:`~repro.server.service.AnalysisService` from CLI flags and runs
a ``ThreadingHTTPServer`` until interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..analysis.config import AnalysisConfig
from ..checkers import ALL_CHECKERS, resolve_checker_names
from .service import AnalysisService, ConfigError

__all__ = ["make_server", "serve_main"]

#: request body cap — analysis sources are small; a daemon must bound
#: what it buffers per request
MAX_BODY_BYTES = 8 * 1024 * 1024


class CanaryRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request; the service lives on the server object."""

    server_version = "canary-analysisd/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    # quiet by default; the daemon's own log line per request suffices
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            sys.stderr.write("%s - %s\n" % (self.address_string(), format % args))

    # ----- helpers ----------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized request body"})
            return None
        try:
            data = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "request body is not valid JSON"})
            return None
        if not isinstance(data, dict):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return None
        return data

    def _route(self) -> Tuple[str, ...]:
        return tuple(p for p in self.path.split("?")[0].split("/") if p)

    # ----- verbs ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        route = self._route()
        if route == ("healthz",):
            self._send_json(200, self.service.health())
        elif route == ("metrics",):
            self._send_json(200, self.service.metrics_snapshot())
        elif route == ("reports",):
            self._send_json(200, {"reports": self.service.registry.list()})
        elif len(route) == 2 and route[0] == "reports":
            record = self.service.registry.get(route[1])
            if record is None:
                self._send_json(404, {"error": f"no such report: {route[1]}"})
            else:
                self._send_json(200, record.as_dict())
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        route = self._route()
        if route == ("analyze",):
            self._post_analyze()
        elif len(route) == 3 and route[0] == "reports" and route[2] == "cancel":
            self._cancel(route[1])
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_DELETE(self) -> None:  # noqa: N802
        route = self._route()
        if len(route) == 2 and route[0] == "reports":
            self._cancel(route[1])
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    # ----- endpoint bodies --------------------------------------------------

    def _post_analyze(self) -> None:
        data = self._read_json_body()
        if data is None:
            return
        source = data.get("source")
        if not isinstance(source, str) or not source.strip():
            self._send_json(400, {"error": "'source' must be a non-empty string"})
            return
        filename = data.get("filename", "<input>")
        if not isinstance(filename, str) or not filename:
            self._send_json(400, {"error": "'filename' must be a non-empty string"})
            return
        overrides = data.get("config")
        if overrides is not None and not isinstance(overrides, dict):
            self._send_json(400, {"error": "'config' must be a JSON object"})
            return
        try:
            record = self.service.submit(source, filename, overrides)
        except ConfigError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except RuntimeError as exc:
            self._send_json(503, {"error": str(exc)})
            return
        if data.get("wait"):
            timeout = data.get("wait_timeout_seconds")
            finished = self.service.registry.wait(
                record.id, timeout=float(timeout) if timeout is not None else None
            )
            if finished is not None:
                self._send_json(200, finished.as_dict())
                return
        self._send_json(
            202, {"report_id": record.id, "status": record.status}
        )

    def _cancel(self, report_id: str) -> None:
        record = self.service.registry.get(report_id)
        if record is None:
            self._send_json(404, {"error": f"no such report: {report_id}"})
            return
        cancelled = self.service.cancel(report_id)
        self._send_json(
            200 if cancelled else 409,
            {"report_id": report_id, "cancelled": cancelled, "status": record.status},
        )


def make_server(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-run HTTP server bound to ``host:port`` (0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), CanaryRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def serve_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Canary analysis daemon: a long-lived HTTP/JSON service"
        " over the resident analysis engine",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8777, help="0 = ephemeral")
    parser.add_argument(
        "--server-workers",
        type=int,
        default=2,
        metavar="N",
        help="analysis worker threads (bounds concurrent runs)",
    )
    parser.add_argument(
        "--max-reports",
        type=int,
        default=256,
        metavar="N",
        help="finished reports retained for polling (oldest evicted first)",
    )
    parser.add_argument(
        "--max-store-entries",
        type=int,
        default=4096,
        metavar="N",
        help="LRU bound on the resident in-memory artifact store",
    )
    parser.add_argument(
        "--checkers",
        default="use-after-free",
        help="default checker list for requests that do not override it"
        f" (available: {', '.join(sorted(ALL_CHECKERS))})",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request wall-clock budget (requests may tighten it)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist whole-run reports under DIR (shared by all requests)",
    )
    parser.add_argument(
        "--summary-cache",
        default=None,
        metavar="DIR",
        help="persist the portable per-function summary namespace under DIR",
    )
    parser.add_argument("--verbose", action="store_true", help="log every request")
    args = parser.parse_args(argv)

    try:
        checkers = resolve_checker_names(
            c.strip() for c in args.checkers.split(",") if c.strip()
        )
    except ValueError as exc:
        parser.error(str(exc))
    config = AnalysisConfig(
        checkers=checkers,
        timeout_seconds=args.timeout,
        cache_dir=args.cache_dir,
        summary_cache_dir=args.summary_cache,
    )
    service = AnalysisService(
        config,
        workers=args.server_workers,
        max_reports=args.max_reports,
        max_memory_entries=args.max_store_entries,
    )
    server = make_server(service, args.host, args.port)
    server.verbose = args.verbose  # type: ignore[attr-defined]
    host, port = server.server_address[:2]
    print(f"canary-analysisd listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry
    sys.exit(serve_main())
