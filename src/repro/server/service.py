"""The analysis service: a bounded worker pool over one resident store.

One :class:`AnalysisService` owns the daemon's warm state — the shared
:class:`~repro.analysis.artifacts.ArtifactStore` (memory layer, verdict
cache, LRU reachability indexes, optional disk namespaces) — and a pool
of worker threads draining a submission queue.  Each request is
isolated in three ways:

* **config** — the request's knob overrides are folded into a fresh
  immutable :class:`~repro.analysis.config.AnalysisConfig`; content
  keys embed the config hash, so differently-configured requests never
  alias artifacts.  Cache-plumbing knobs (``cache_dir`` and friends)
  are server-owned and rejected;
* **budget** — every run gets its own
  :class:`~repro.analysis.budget.Budget` (the request may tighten the
  server's default ``timeout_seconds``); :meth:`cancel` flips it so the
  run winds down cooperatively at the next observation point.  A
  bounded pool plus per-request budgets is the multi-tenant fairness
  story: no request can monopolize the daemon;
* **metrics** — each run writes its own
  :class:`~repro.obs.metrics.MetricsRegistry`; on completion the run
  registry is folded into the server aggregate under the ``runs.``
  prefix (:meth:`MetricsRegistry.merge`), so ``/metrics`` shows
  cumulative traffic while per-report snapshots stay request-scoped.

Same-file requests additionally serialize on the store's per-lineage
lock (inside the pipeline), which is what makes re-submission of an
edited file a *watch mode*: the second run replays the journal prefix
and re-executes only the passes downstream of the edit.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Any, Dict, List, Optional

from ..analysis.artifacts import ArtifactStore
from ..analysis.budget import Budget, BudgetExceededError
from ..analysis.config import CACHE_ONLY_FIELDS, AnalysisConfig
from ..analysis.fingerprint import report_to_portable
from ..analysis.passes import AnalysisPipeline
from ..checkers import resolve_checker_names
from ..frontend import FrontendError
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .registry import ReportRecord, ReportRegistry

__all__ = ["AnalysisService", "ConfigError"]

#: knobs a request may not touch: where artifacts live is the server's
#: call, and letting a tenant re-point the disk cache would leak state
_SERVER_OWNED_FIELDS = frozenset(CACHE_ONLY_FIELDS)


class ConfigError(ValueError):
    """A request carried an unknown or server-owned config knob."""


class AnalysisService:
    """The daemon's core: shared store + bounded workers + report registry."""

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        workers: int = 2,
        max_reports: int = 256,
        max_memory_entries: Optional[int] = 4096,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config if config is not None else AnalysisConfig()
        self.store = ArtifactStore(
            cache_dir=self.config.cache_dir if self.config.use_cache else None,
            summary_cache_dir=(
                self.config.summary_cache_dir if self.config.use_cache else None
            ),
            max_memory_entries=max_memory_entries,
            max_events=10_000,
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = ReportRegistry(max_reports=max_reports)
        #: the server's aggregate registry (the ``/metrics`` payload)
        self.metrics = MetricsRegistry()
        self.started_at = time.time()
        self.num_workers = max(1, workers)
        self._queue: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self._budgets: Dict[str, Budget] = {}
        self._lock = threading.Lock()
        self._shutdown = False
        self._threads: List[threading.Thread] = [
            threading.Thread(target=self._worker, name=f"canary-worker-{i}", daemon=True)
            for i in range(self.num_workers)
        ]
        for thread in self._threads:
            thread.start()
        self.metrics.gauge("server.workers").set(self.num_workers)

    # ----- request-scoped config -------------------------------------------

    def request_config(self, overrides: Optional[Dict[str, Any]] = None) -> AnalysisConfig:
        """The server default config with a request's knob overrides
        folded in.  Unknown names and server-owned (cache-plumbing)
        names raise :class:`ConfigError` — a client typo must become a
        400, not a silently-default knob."""
        if not overrides:
            return self.config
        known = {f.name for f in dataclasses.fields(AnalysisConfig)}
        clean: Dict[str, Any] = {}
        for name, value in overrides.items():
            if name not in known:
                raise ConfigError(f"unknown config knob: {name!r}")
            if name in _SERVER_OWNED_FIELDS:
                raise ConfigError(f"server-owned config knob: {name!r}")
            if name == "checkers":
                if isinstance(value, str):
                    value = [c.strip() for c in value.split(",") if c.strip()]
                try:
                    value = resolve_checker_names(tuple(value))
                except ValueError as exc:
                    raise ConfigError(str(exc)) from exc
            clean[name] = value
        try:
            return dataclasses.replace(self.config, **clean)
        except (TypeError, ValueError) as exc:
            raise ConfigError(str(exc)) from exc

    # ----- submission -------------------------------------------------------

    def submit(
        self,
        source: str,
        filename: str = "<input>",
        overrides: Optional[Dict[str, Any]] = None,
    ) -> ReportRecord:
        """Enqueue one analysis request; returns the queued record."""
        if self._shutdown:
            raise RuntimeError("service is shut down")
        config = self.request_config(overrides)
        record = self.registry.create(filename, config.cache_key())
        self.metrics.inc("server.requests")
        self.metrics.gauge("server.queue_depth").set(self._queue.qsize() + 1)
        self._queue.put((record.id, source, filename, config))
        return record

    def analyze(
        self,
        source: str,
        filename: str = "<input>",
        overrides: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> ReportRecord:
        """Submit and block until the report finishes (test/CLI sugar)."""
        record = self.submit(source, filename, overrides)
        finished = self.registry.wait(record.id, timeout=timeout)
        return finished if finished is not None else record

    def cancel(self, report_id: str, reason: str = "cancelled by client") -> bool:
        """Cancel an in-flight run: its budget reads expired from the
        next cooperative check on, and the run winds down with a partial
        (``timed_out``) result.  Queued-but-unstarted requests cannot be
        cancelled yet and return ``False``."""
        with self._lock:
            budget = self._budgets.get(report_id)
        if budget is None:
            return False
        budget.cancel(reason)
        self.metrics.inc("server.cancelled")
        return True

    # ----- worker loop ------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            report_id, source, filename, config = item
            self.metrics.gauge("server.queue_depth").set(self._queue.qsize())
            self.registry.set_running(report_id)
            t0 = time.perf_counter()
            pipeline = AnalysisPipeline(config, self.store, tracer=self.tracer)
            with self._lock:
                self._budgets[report_id] = pipeline.budget
            try:
                report = pipeline.analyze_source(source, filename=filename)
            except FrontendError as exc:
                self.registry.set_failed(report_id, f"frontend error: {exc}")
                self.metrics.inc("server.failed")
                continue
            except BudgetExceededError as exc:
                self.registry.set_failed(report_id, f"budget exceeded: {exc}")
                self.metrics.inc("server.failed")
                continue
            except Exception as exc:  # a crashed run must not kill the worker
                self.registry.set_failed(
                    report_id, f"internal error: {type(exc).__name__}: {exc}"
                )
                self.metrics.inc("server.failed")
                continue
            finally:
                with self._lock:
                    self._budgets.pop(report_id, None)
                self._queue.task_done()
            seconds = time.perf_counter() - t0
            result = report_to_portable(report)
            result["num_reports"] = report.num_reports
            result["pass_statistics"] = report.pass_statistics
            result["passes_run"] = report.passes_run()
            result["cache_statistics"] = report.cache_statistics
            self.registry.set_done(report_id, result, metrics=report.metrics.snapshot())
            self.metrics.inc("server.completed")
            self.metrics.observe("server.analyze_seconds", seconds)
            self.metrics.merge(report.metrics, prefix="runs.")

    # ----- introspection ----------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload: server aggregate + live store state."""
        snapshot = self.metrics.snapshot()
        snapshot["server.uptime_seconds"] = time.time() - self.started_at
        for key, value in self.registry.counts().items():
            snapshot[f"server.reports_{key}"] = value
        for key, value in self.store.statistics().items():
            snapshot[f"store.{key}"] = value
        snapshot["store.verdict_cache_entries"] = len(self.store.verdict_cache)
        snapshot["store.verdict_cache_hits"] = self.store.verdict_cache.hits
        for key, value in self.store.index_cache.statistics().items():
            snapshot[f"store.index_cache_{key}"] = value
        return snapshot

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok" if not self._shutdown else "stopping",
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.num_workers,
            "queue_depth": self._queue.qsize(),
            "reports": len(self.registry),
        }

    # ----- lifecycle --------------------------------------------------------

    def shutdown(self, wait: bool = True, cancel_inflight: bool = True) -> None:
        self._shutdown = True
        if cancel_inflight:
            with self._lock:
                budgets = list(self._budgets.values())
            for budget in budgets:
                budget.cancel("server shutdown")
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
