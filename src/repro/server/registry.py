"""Report records and their lifecycle for the analysis daemon.

A submission creates a :class:`ReportRecord` in state ``queued``; a
worker moves it to ``running`` and finally ``done`` (with the portable,
label-keyed result dict — the same codec the disk cache uses) or
``failed`` (with the error string).  The registry is the daemon's only
session state: it is bounded (``max_reports``), evicting the oldest
*finished* records first so in-flight work is never dropped.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["ReportRecord", "ReportRegistry"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: states a record can be evicted in (never in-flight work)
_FINISHED = (DONE, FAILED)


@dataclass
class ReportRecord:
    """One submitted analysis request and (eventually) its result."""

    id: str
    filename: str
    config_digest: str
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: portable result payload (bugs, statistics, pass table) when done
    result: Optional[Dict[str, Any]] = None
    #: error rendering when failed
    error: Optional[str] = None
    #: the run's flattened metrics registry snapshot when done
    metrics: Optional[Dict[str, Any]] = None

    def as_dict(self, include_result: bool = True) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.id,
            "filename": self.filename,
            "config_digest": self.config_digest,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            data["error"] = self.error
        if include_result and self.result is not None:
            data["result"] = self.result
            data["metrics"] = self.metrics
        return data


class ReportRegistry:
    """Thread-safe id → :class:`ReportRecord` map with bounded retention."""

    def __init__(self, max_reports: int = 256) -> None:
        self.max_reports = max(1, max_reports)
        self._records: Dict[str, ReportRecord] = {}
        self._order: List[str] = []  # submission order, oldest first
        self._lock = threading.Lock()
        self._next = 0
        self._condition = threading.Condition(self._lock)
        self.evicted = 0

    def create(self, filename: str, config_digest: str) -> ReportRecord:
        with self._lock:
            self._next += 1
            record = ReportRecord(
                id=f"r{self._next:06d}",
                filename=filename,
                config_digest=config_digest,
            )
            self._records[record.id] = record
            self._order.append(record.id)
            self._evict_over_cap()
            return record

    def _evict_over_cap(self) -> None:
        # caller holds self._lock; finished records age out oldest-first
        while len(self._records) > self.max_reports:
            victim = next(
                (rid for rid in self._order if self._records[rid].status in _FINISHED),
                None,
            )
            if victim is None:
                return  # everything is in flight; retention grows temporarily
            self._order.remove(victim)
            del self._records[victim]
            self.evicted += 1

    def get(self, report_id: str) -> Optional[ReportRecord]:
        with self._lock:
            return self._records.get(report_id)

    def list(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                self._records[rid].as_dict(include_result=False)
                for rid in self._order
            ]

    # ----- lifecycle transitions (workers) ---------------------------------

    def set_running(self, report_id: str) -> None:
        with self._condition:
            record = self._records.get(report_id)
            if record is not None:
                record.status = RUNNING
                record.started_at = time.time()

    def set_done(
        self,
        report_id: str,
        result: Dict[str, Any],
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        with self._condition:
            record = self._records.get(report_id)
            if record is not None:
                record.status = DONE
                record.finished_at = time.time()
                record.result = result
                record.metrics = metrics
            self._condition.notify_all()

    def set_failed(self, report_id: str, error: str) -> None:
        with self._condition:
            record = self._records.get(report_id)
            if record is not None:
                record.status = FAILED
                record.finished_at = time.time()
                record.error = error
            self._condition.notify_all()

    # ----- waiting ----------------------------------------------------------

    def wait(self, report_id: str, timeout: Optional[float] = None) -> Optional[ReportRecord]:
        """Block until the report finishes (or ``timeout`` elapses);
        returns the record either way (``None`` for an unknown id)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                record = self._records.get(report_id)
                if record is None or record.status in _FINISHED:
                    return record
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return record
                self._condition.wait(remaining)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for record in self._records.values():
                out[record.status] = out.get(record.status, 0) + 1
            out["evicted"] = self.evicted
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
