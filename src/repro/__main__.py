"""Command-line interface: ``python -m repro [options] file.mcc ...``

Analyzes MiniCC source files with Canary and prints the bug reports.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import AnalysisConfig, Canary
from .checkers import ALL_CHECKERS, resolve_checker_names
from .frontend import FrontendError
from .obs import Tracer, write_chrome_trace, write_metrics_json, write_trace_ndjson


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        # ``repro serve``: the long-lived analysis daemon.  Dispatched
        # before the batch parser so the positional-files grammar of the
        # one-shot CLI stays untouched.
        from .server.app import serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Canary (PLDI 2021) reproduction — inter-thread value-flow bug detector",
    )
    parser.add_argument("files", nargs="+", help="MiniCC source files")
    parser.add_argument(
        "--checkers",
        default="use-after-free",
        help="comma-separated checker list (available: "
        f"{', '.join(sorted(ALL_CHECKERS))}; short aliases: race, atomicity,"
        " order, uaf, doublefree, nullderef, leak)",
    )
    parser.add_argument(
        "--all-threads",
        action="store_true",
        help="also report intra-thread findings (default: inter-thread only)",
    )
    parser.add_argument(
        "--model-locks",
        action="store_true",
        help="model lock/unlock critical sections: mutual-exclusion order"
        " constraints plus the data-race checker's lock-set filter",
    )
    parser.add_argument(
        "--memory-model",
        choices=["sc", "tso", "pso"],
        default="sc",
        help="memory model for Φ_po: sc keeps full program order, tso"
        " relaxes store→load, pso additionally relaxes store→store"
        " (exercised by the order-violation checker)",
    )
    parser.add_argument("--unroll", type=int, default=2, help="loop unroll depth")
    parser.add_argument(
        "--context-depth", type=int, default=6, help="calling-context nesting depth"
    )
    parser.add_argument(
        "--show-vfg", action="store_true", help="dump the guarded value-flow graph"
    )
    parser.add_argument("--parallel", action="store_true", help="parallel path solving")
    parser.add_argument(
        "--workers", type=int, default=4, help="worker count for --parallel solving"
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="process",
        help="batch-solving backend for --parallel (process = real parallelism,"
        " thread = GIL-bound fallback)",
    )
    parser.add_argument(
        "--cube",
        action="store_true",
        help="decide path queries by cube-and-conquer splitting",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="path search depth bound (default: 40)",
    )
    parser.add_argument(
        "--max-paths",
        type=int,
        default=None,
        metavar="N",
        help="candidate paths enumerated per source (default: 512)",
    )
    parser.add_argument(
        "--max-visits",
        type=int,
        default=None,
        metavar="N",
        help="DFS node-visit budget per source (default: 200000)",
    )
    parser.add_argument(
        "--no-pruning",
        action="store_true",
        help="disable sink-reachability / guard-prefix / dead-state pruning"
        " (reference enumeration, for debugging and ablation)",
    )
    parser.add_argument(
        "--no-incremental-smt",
        action="store_true",
        help="solve every path query one-shot instead of through the warm"
        " per-sink incremental solvers (debugging and ablation; bug"
        " reports are identical either way)",
    )
    parser.add_argument(
        "--summary-workers",
        type=int,
        default=1,
        metavar="N",
        help="shards for per-function summary computation (1 = serial;"
        " >1 uses the --backend pool with automatic fallback)",
    )
    parser.add_argument(
        "--detect-workers",
        type=int,
        default=1,
        metavar="N",
        help="shards for the detection phase: sink families are"
        " partitioned across --backend pool workers, each running the"
        " full enumerate+solve pipeline over its shard (1 = no sharding;"
        " reported bugs are identical at every worker count)",
    )
    parser.add_argument(
        "--summary-cache",
        default=None,
        metavar="DIR",
        help="persist per-function value-flow summaries under DIR:"
        " a later invocation reuses the summaries of unchanged functions"
        " across process restarts (defaults to --cache-dir when set)",
    )
    parser.add_argument(
        "--no-summaries",
        action="store_true",
        help="run interference/detection over the whole VFG instead of"
        " the per-function summary layer (debugging and ablation; bug"
        " reports are identical either way)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per file; on expiry a partial report is"
        " printed and flagged as timed out (default: unlimited)",
    )
    parser.add_argument(
        "--pass-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="soft per-pass budget: overruns are reported as degradation"
        " warnings, the pass itself is not interrupted",
    )
    parser.add_argument(
        "--solver-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-SMT-query deadline; an expired query counts as unknown"
        " (the candidate is not reported) instead of stalling the run",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-file timings, solver counters and cache hit rate",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist whole-run analysis reports under DIR: re-analyzing"
        " an unchanged file in a later invocation skips every analysis pass",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact cache (every pass always re-executes)",
    )
    parser.add_argument(
        "--explain-cache",
        action="store_true",
        help="print the per-pass table and artifact hit/miss events",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the run's trace spans as newline-delimited JSON"
        " (one span per line, first line is the provenance meta record)",
    )
    parser.add_argument(
        "--trace-chrome",
        default=None,
        metavar="FILE",
        help="write the run's trace in Chrome trace-event format"
        " (loadable in chrome://tracing and Perfetto)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write every analyzed file's metrics registry as flat JSON"
        " ({meta, files: {path: {metric: value}}})",
    )
    args = parser.parse_args(argv)

    try:
        checkers = resolve_checker_names(
            c.strip() for c in args.checkers.split(",") if c.strip()
        )
    except ValueError as exc:
        parser.error(str(exc))

    defaults = AnalysisConfig()
    config = AnalysisConfig(
        checkers=checkers,
        inter_thread_only=not args.all_threads,
        model_locks=args.model_locks,
        memory_model=args.memory_model,
        unroll_depth=args.unroll,
        context_depth=args.context_depth,
        parallel_solving=args.parallel,
        solver_workers=args.workers,
        solver_backend=args.backend,
        cube_and_conquer=args.cube,
        incremental_smt=not args.no_incremental_smt,
        summaries=not args.no_summaries,
        summary_workers=args.summary_workers,
        detect_workers=args.detect_workers,
        max_path_depth=args.max_depth
        if args.max_depth is not None
        else defaults.max_path_depth,
        max_paths_per_source=args.max_paths
        if args.max_paths is not None
        else defaults.max_paths_per_source,
        max_search_visits=args.max_visits
        if args.max_visits is not None
        else defaults.max_search_visits,
        sink_reachability=not args.no_pruning,
        incremental_guard_pruning=not args.no_pruning,
        dead_state_memo=not args.no_pruning,
        timeout_seconds=args.timeout,
        pass_timeout_seconds=args.pass_timeout,
        solver_timeout_seconds=args.solver_timeout,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        summary_cache_dir=args.summary_cache,
        explain_cache=args.explain_cache,
    )
    tracing = args.trace_out is not None or args.trace_chrome is not None
    tracer = Tracer(enabled=True) if tracing else None
    canary = Canary(config, tracer=tracer)
    file_metrics = {}
    total = 0
    for path in args.files:
        try:
            with open(path) as fh:
                source = fh.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            report = canary.analyze_source(source, filename=path)
        except FrontendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.metrics_out is not None:
            file_metrics[path] = report.metrics.snapshot()
        total += report.num_reports
        status = " (timed out — partial results)" if report.timed_out else ""
        print(f"{path}: {report.num_reports} finding(s){status}")
        for warning in report.degradation_warnings:
            print(f"warning: {warning}", file=sys.stderr)
        for bug in report.bugs:
            print(bug.describe())
            print()
        if args.stats:
            print(report.describe_statistics())
            print()
        if args.explain_cache:
            print(report.describe_passes())
            for event in report.cache_events:
                print(f"cache: {event}")
            print()
        if args.show_vfg and report.bundle is not None:
            print(report.bundle.vfg.pretty())
    if tracer is not None:
        if args.trace_out is not None:
            count = write_trace_ndjson(tracer.finished, args.trace_out)
            print(f"trace: {count} span(s) -> {args.trace_out}", file=sys.stderr)
        if args.trace_chrome is not None:
            count = write_chrome_trace(tracer.finished, args.trace_chrome)
            print(
                f"trace: {count} event(s) -> {args.trace_chrome}", file=sys.stderr
            )
    if args.metrics_out is not None:
        write_metrics_json(
            args.metrics_out, files=file_metrics, config_digest=config.cache_key()
        )
        print(f"metrics: {len(file_metrics)} file(s) -> {args.metrics_out}", file=sys.stderr)
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
