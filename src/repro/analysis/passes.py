"""The staged pass pipeline behind :class:`~repro.analysis.driver.Canary`.

Each phase of the paper's Fig. 1 — parse, bound/lower, IR verification,
pointer analysis, thread call graph, MHP, Alg. 1 data dependence,
Alg. 2 interference, per-checker detection — is a named *pass* run by a
:class:`PassManager` that records a uniform (status, seconds, detail)
row per pass.  The :class:`AnalysisPipeline` threads content-addressed
artifacts from the :class:`~repro.analysis.artifacts.ArtifactStore`
between passes, so a pass whose input hashes are unchanged is skipped
(status ``cached``) instead of re-executed:

* **run key** (source text + filename + config hash) — a warm re-run of
  identical input returns the memoized report without executing any
  analysis pass; with ``cache_dir`` the portable report also survives
  process restarts;
* **per-function AST fingerprints** — unchanged functions reuse their
  lowered IR objects (label blocks keep all labels stable);
* **dataflow journal** — Alg. 1 replays the recorded VFG mutations for
  the unchanged prefix of the bottom-up function order;
* **module skeleton** — the pointer/thread-structure triple
  (Steensgaard, thread call graph, MHP) is reused whenever the label
  layout, opcodes and call/fork/join/lock structure are unchanged;
* **detection region fingerprint** — a checker re-runs only when the
  backward-reachable VFG region of its sinks (plus its sources and the
  store index feeding Φ_ls) changed.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..checkers import ALL_CHECKERS, BugReport
from ..detection.reachability import ReachabilityIndexCache
from ..detection.realizability import RealizabilityChecker, VerdictCache
from ..detection.search import SearchLimits
from ..frontend import parse_program
from ..frontend.ast_nodes import Program
from ..ir.module import IRModule
from ..ir.verifier import verify_module
from ..lowering import LoweringCache, lower_program_incremental
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from ..pointer.steensgaard import steensgaard
from ..smt.solver import warm_solver_counters
from ..threads.callgraph import build_thread_call_graph
from ..threads.mhp import MhpAnalysis
from ..vfg.builder import VFGBundle
from ..vfg.dataflow import DataDependenceAnalysis, DataflowJournal
from ..vfg.graph import ObjNode, VFGNode
from ..vfg.interference import InterferenceAnalysis
from ..vfg.summaries import SummaryIndex, compute_summaries
from ..frontend import FrontendError
from ..testing.faults import fault_point
from .artifacts import ArtifactStore
from .budget import Budget, BudgetExceededError
from .config import AnalysisConfig
from .driver import AnalysisReport
from .fingerprint import (
    module_skeleton,
    report_from_portable,
    report_to_portable,
    run_digest,
)

__all__ = ["AnalysisPipeline", "PassManager", "PassRecord"]


@dataclass
class PassRecord:
    """One row of the pipeline's uniform pass accounting."""

    name: str
    status: str  # 'run' | 'cached' | 'failed'
    seconds: float = 0.0
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "seconds": self.seconds,
            "detail": self.detail,
        }


class PassManager:
    """Runs named passes, timing each and recording a uniform row.

    Every pass is a fault-injection site (``pass:<name>``, see
    :mod:`repro.testing.faults`).  With a :class:`Budget` attached, a
    pass that overruns the *soft* per-pass budget gets a degradation
    warning (passes are not preemptible, so the overrun is informational
    only).  :meth:`attempt` additionally isolates a crashing pass:
    the exception is recorded as a ``failed`` row plus a warning, and
    the caller decides how much of the pipeline can still run.
    """

    def __init__(
        self, budget: Optional[Budget] = None, tracer: Optional[Tracer] = None
    ) -> None:
        self.records: List[PassRecord] = []
        self.budget = budget
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: graceful-degradation notes, surfaced on the final report
        self.warnings: List[str] = []

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def run(self, name: str, fn, detail: str = "") -> Any:
        """Run one pass; exceptions propagate (use :meth:`attempt` for
        passes the pipeline can survive losing)."""
        result, error = self.attempt(name, fn, detail, _warn_on_failure=False)
        if error is not None:
            raise error
        return result

    def attempt(
        self, name: str, fn, detail: str = "", _warn_on_failure: bool = True
    ) -> Tuple[Any, Optional[BaseException]]:
        """Run one pass, isolating failure: returns ``(result, None)`` on
        success or ``(None, exception)`` after recording a ``failed``
        row — the pipeline keeps going with whatever can still run."""
        t0 = time.perf_counter()
        try:
            with self.tracer.span(f"pass:{name}"):
                fault_point(f"pass:{name}")
                result = fn()
        except BudgetExceededError:
            # Hard budget expiry / cancellation is control flow, not a
            # pass crash: converting it into a ``failed`` row plus a
            # degradation warning would report a cancelled run as a
            # degraded-but-complete one.  (KeyboardInterrupt and friends
            # are BaseException and never matched here to begin with.)
            raise
        except Exception as exc:
            seconds = time.perf_counter() - t0
            self.records.append(
                PassRecord(name, "failed", seconds, f"{type(exc).__name__}: {exc}")
            )
            if _warn_on_failure:
                self.warn(f"pass {name} failed ({type(exc).__name__}: {exc})")
            return None, exc
        seconds = time.perf_counter() - t0
        self.records.append(PassRecord(name, "run", seconds, detail))
        if self.budget is not None and self.budget.over_pass_budget(seconds):
            self.warn(
                f"pass {name}: {seconds:.3f}s exceeded the soft per-pass"
                f" budget ({self.budget.pass_seconds:g}s)"
            )
        return result, None

    def cached(self, name: str, detail: str = "") -> None:
        self.records.append(PassRecord(name, "cached", 0.0, detail))

    def record(self, name: str, status: str, seconds: float, detail: str = "") -> None:
        self.records.append(PassRecord(name, status, seconds, detail))

    # ----- reporting --------------------------------------------------------

    def seconds_of(self, *names: str) -> float:
        """Total wall time of passes whose name matches or is a
        ``name:`` prefix (e.g. ``dataflow`` sums every ``dataflow:f``)."""
        total = 0.0
        for rec in self.records:
            if rec.name in names or any(
                rec.name.startswith(n + ":") for n in names
            ):
                total += rec.seconds
        return total

    def counts(self) -> Dict[str, int]:
        run = sum(1 for r in self.records if r.status == "run")
        failed = sum(1 for r in self.records if r.status == "failed")
        counts = {"run": run, "cached": len(self.records) - run - failed}
        if failed:
            counts["failed"] = failed
        return counts

    def statistics(self) -> List[Dict[str, Any]]:
        return [r.as_dict() for r in self.records]


class AnalysisPipeline:
    """One analysis run, staged over the artifact store."""

    def __init__(
        self,
        config: AnalysisConfig,
        store: ArtifactStore,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.store = store
        # The run's resource budget: the wall clock starts here (the
        # driver builds a fresh pipeline per analyze_* call).
        self.budget = Budget.from_config(config)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: the run's metrics registry — every statistic of this analysis
        #: (pass rows, solver/checker/search counters, cache counters,
        #: timings) lands here; the final report exposes it as
        #: ``report.metrics`` with the legacy accessors as views.
        self.registry = MetricsRegistry()
        self.pm = PassManager(budget=self.budget, tracer=self.tracer)

    # ----- entry points -----------------------------------------------------

    def analyze_source(
        self, source: str, filename: str = "<input>", track_memory: bool = False
    ) -> AnalysisReport:
        with self.tracer.span("analyze", file=filename, entry="source"):
            return self._analyze_source(source, filename, track_memory)

    def _analyze_source(
        self, source: str, filename: str, track_memory: bool
    ) -> AnalysisReport:
        caching = self.config.use_cache and not track_memory
        if caching and filename:
            # Serialize concurrent runs of the *same* lineage: the live
            # lineage-keyed artifacts (lowering cache, dataflow journal,
            # thread triple) are mutated in place, so a second request
            # for the file waits — and then rides the warm/incremental
            # path.  Distinct files analyze fully in parallel.
            with self.store.lineage_lock(filename):
                return self._analyze_source_inner(source, filename, track_memory)
        return self._analyze_source_inner(source, filename, track_memory)

    def _analyze_source_inner(
        self, source: str, filename: str, track_memory: bool
    ) -> AnalysisReport:
        cfg = self.config
        caching = cfg.use_cache and not track_memory
        self.store.begin_run()
        events_mark = len(self.store.events)
        digest = run_digest(source, filename, cfg.cache_key())
        if caching:
            hit = self.store.get("run", digest)
            if hit is not None:
                return self._replay_memoized_run(hit, events_mark)
        try:
            ast = self.pm.run("parse", lambda: parse_program(source, filename))
            module = self._lower(ast, filename, caching)
        except FrontendError:
            raise  # malformed input is the caller's problem, not degradation
        except BudgetExceededError:
            raise  # hard cancellation unwinds; it is not a frontend crash
        except Exception as exc:
            # An internal frontend crash (or an injected fault) still
            # yields a well-formed — empty, degraded — report.
            self.pm.warn(
                f"frontend failed unexpectedly ({type(exc).__name__}: {exc});"
                " no analysis was performed"
            )
            return self._degraded_empty_report(events_mark)
        if self._out_of_time("frontend"):
            return self._degraded_empty_report(events_mark)
        if caching and cfg.cache_dir:
            data = self.store.get_disk("run", digest)
            if data is not None:
                report = self._rehydrate_disk_run(data, module, events_mark)
                if report is not None:
                    self.store.put("run", digest, {"report": report, "module": module})
                    return report
        report = self._analyze_module(
            module, lineage=filename, track_memory=track_memory, caching=caching
        )
        report.set_timing("parse", self.pm.seconds_of("parse"))
        report.set_timing("lowering", self.pm.seconds_of("lower"))
        # Degraded runs (budget expiry, isolated failures) are partial by
        # definition: caching them would pin the degradation.
        if caching and not report.timed_out and not report.degradation_warnings:
            self.store.put("run", digest, {"report": report, "module": module})
            if cfg.cache_dir:
                portable = report_to_portable(report)
                portable["pass_statistics"] = report.pass_statistics
                self.store.put_disk("run", digest, portable)
        return report

    def analyze_ast(self, ast: Program, track_memory: bool = False) -> AnalysisReport:
        with self.tracer.span("analyze", entry="ast"):
            caching = self.config.use_cache and not track_memory
            self.store.begin_run()
            module = self._lower(ast, None, caching)
            report = self._analyze_module(
                module, lineage=None, track_memory=track_memory, caching=caching
            )
            report.set_timing("lowering", self.pm.seconds_of("lower"))
            return report

    def analyze_module(
        self, module: IRModule, track_memory: bool = False
    ) -> AnalysisReport:
        with self.tracer.span("analyze", entry="module"):
            self.store.begin_run()
            caching = self.config.use_cache and not track_memory
            return self._analyze_module(
                module, lineage=None, track_memory=track_memory, caching=caching
            )

    # ----- cached-run replay ------------------------------------------------

    def _replay_memoized_run(self, hit: dict, events_mark: int) -> AnalysisReport:
        """Whole-run memory hit: return a fresh report sharing the stored
        (still live) results — no pass executes."""
        stored: AnalysisReport = hit["report"]
        for row in stored.pass_statistics or ({"name": "pipeline"},):
            self.pm.cached(row["name"], detail="run cache")
        report = AnalysisReport(
            bugs=list(stored.bugs),
            suppressed=list(stored.suppressed),
            vfg_summary=dict(stored.vfg_summary),
            timings={k: 0.0 for k in ("parse", "lowering", "vfg", "checking", "solving")},
            solver_statistics=dict(stored.solver_statistics),
            checker_statistics={k: dict(v) for k, v in stored.checker_statistics.items()},
            search_statistics={k: dict(v) for k, v in stored.search_statistics.items()},
            truncation_warnings=list(stored.truncation_warnings),
            degradation_warnings=list(stored.degradation_warnings),
            timed_out=stored.timed_out,
            bundle=stored.bundle,
            metrics=self.registry,
        )
        self._finish_report(report, events_mark)
        return report

    def _rehydrate_disk_run(
        self, data: dict, module: IRModule, events_mark: int
    ) -> Optional[AnalysisReport]:
        """Disk hit: parse+lower ran live (labels are deterministic), the
        remaining passes rehydrate from the portable record."""
        try:
            report = report_from_portable(data, module, metrics=self.registry)
        except KeyError:
            self.store.note("stale disk:run")
            return None
        for row in data.get("pass_statistics", ()):
            if row["name"] not in ("parse", "lower"):
                self.pm.cached(row["name"], detail="disk run cache")
        report.timings = {
            "parse": self.pm.seconds_of("parse"),
            "lowering": self.pm.seconds_of("lower"),
            "vfg": 0.0,
            "checking": 0.0,
            "solving": 0.0,
        }
        self._finish_report(report, events_mark)
        return report

    # ----- phases -----------------------------------------------------------

    def _lower(
        self, ast: Program, lineage: Optional[str], caching: bool
    ) -> IRModule:
        cfg = self.config
        cache: Optional[LoweringCache] = None
        if caching and lineage is not None:
            cache = self.store.setdefault(
                "lowering", (lineage, cfg.unroll_depth), LoweringCache
            )
        module, reused = self.pm.run(
            "lower",
            lambda: lower_program_incremental(
                ast, unroll_depth=cfg.unroll_depth, cache=cache
            ),
        )
        self.pm.records[-1].detail = (
            f"reused {len(reused)}/{len(module.functions)} function(s)"
        )
        if reused:
            self.store.note(f"hit lowering:{','.join(reused)}")
        return module

    def _analyze_module(
        self,
        module: IRModule,
        lineage: Optional[str],
        track_memory: bool,
        caching: bool,
    ) -> AnalysisReport:
        cfg = self.config
        pm = self.pm
        budget = self.budget
        events_mark = len(self.store.events)
        if track_memory:
            tracemalloc.start()

        # Result accumulators: every early return below (budget expiry,
        # unsurvivable pass failure) still produces a complete report
        # from whatever has been computed so far.
        bugs: List[BugReport] = []
        suppressed: List = []
        checker_statistics: Dict[str, Dict[str, int]] = {}
        search_statistics: Dict[str, Dict[str, int]] = {}
        truncation_warnings: List[str] = []
        bundle: Optional[VFGBundle] = None
        realizability: Optional[RealizabilityChecker] = None
        summary_index: Optional[SummaryIndex] = None

        def finish() -> AnalysisReport:
            if summary_index is not None:
                for key, value in summary_index.view.statistics().items():
                    self.registry.gauge(f"summary.{key}").set(value)
            peak = 0
            if track_memory:
                _current, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
            solver_stats = (
                dict(realizability.statistics) if realizability is not None else {}
            )
            degradation = list(pm.warnings)
            if realizability is not None:
                degradation.extend(realizability.degradation_summary())
            report = AnalysisReport(
                bugs=bugs,
                suppressed=suppressed,
                vfg_summary=bundle.summary() if bundle is not None else {},
                timings={
                    "vfg": (bundle.build_seconds if bundle is not None else 0.0)
                    + pm.seconds_of("verify"),
                    "checking": pm.seconds_of("detect"),
                    "solving": solver_stats.get("solve_seconds", 0.0),
                },
                peak_memory_bytes=peak,
                # solver.* counters are NOT re-seeded: the realizability
                # checker shares this run's registry and wrote them live.
                checker_statistics=checker_statistics,
                search_statistics=search_statistics,
                truncation_warnings=truncation_warnings,
                degradation_warnings=degradation,
                timed_out=bool(budget.expirations),
                bundle=bundle,
                metrics=self.registry,
            )
            self._finish_report(report, events_mark)
            return report

        verification, error = pm.attempt(
            "verify", lambda: verify_module(module, strict=False)
        )
        if error is None:
            pm.records[-1].detail = (
                f"{len(verification.errors)} error(s),"
                f" {len(verification.warnings)} warning(s)"
            )
        # verification is advisory (strict=False): a crash degrades, the
        # analysis itself continues.
        if self._out_of_time("verify"):
            return finish()

        # -- pointer / thread structure (skeleton-keyed reuse) --------------
        skeleton = module_skeleton(module)
        triple = None
        tkey = (lineage, cfg.unroll_depth)
        if caching and lineage is not None:
            entry = self.store.get("threads", tkey)
            if entry is not None and entry["skeleton"] == skeleton:
                triple = entry
        if triple is not None:
            pointsto, tcg, mhp = triple["pointsto"], triple["tcg"], triple["mhp"]
            pm.cached("pointer", detail="skeleton unchanged")
            pm.cached("tcg", detail="skeleton unchanged")
            pm.cached("mhp", detail="skeleton unchanged")
        else:
            pointsto, error = pm.attempt("pointer", lambda: steensgaard(module))
            if error is None:
                tcg, error = pm.attempt(
                    "tcg", lambda: build_thread_call_graph(module, pointsto)
                )
            if error is None:
                mhp, error = pm.attempt("mhp", lambda: MhpAnalysis(tcg))
            if error is not None:
                # Everything downstream needs the thread structure; the
                # report stays empty but well-formed, with the failure
                # recorded in pass_statistics and degradation_warnings.
                pm.warn("thread-structure phase unavailable; no findings produced")
                return finish()
            if caching and lineage is not None:
                self.store.put(
                    "threads",
                    tkey,
                    {"skeleton": skeleton, "pointsto": pointsto, "tcg": tcg, "mhp": mhp},
                )
        if self._out_of_time("threads"):
            return finish()

        # -- Alg. 1 data dependence (journaled, per-function passes) --------
        journal: Optional[DataflowJournal] = None
        if caching and lineage is not None:
            journal = self.store.setdefault(
                "dataflow",
                (lineage, cfg.max_content_entries, cfg.prune_guards),
                DataflowJournal,
            )
        dataflow = DataDependenceAnalysis(
            module,
            tcg,
            max_content_entries=cfg.max_content_entries,
            prune_guards=cfg.prune_guards,
            tracer=self.tracer,
        )
        try:
            with self.tracer.span("pass:dataflow"):
                fault_point("pass:dataflow")
                dataflow.run(journal)
        except BudgetExceededError:
            raise  # hard cancellation unwinds; never a degradation warning
        except Exception as exc:
            pm.record("dataflow", "failed", 0.0, f"{type(exc).__name__}: {exc}")
            pm.warn(
                f"pass dataflow failed ({type(exc).__name__}: {exc});"
                " no findings produced"
            )
            return finish()
        for fname, status, seconds in dataflow.function_trace:
            pm.record(f"dataflow:{fname}", status, seconds)
        if self._out_of_time("dataflow"):
            return finish()

        # -- per-function value-flow summaries (sharded, content-keyed) -----
        if cfg.summaries:

            def run_summaries() -> SummaryIndex:
                return compute_summaries(
                    dataflow,
                    store=self.store if (caching and lineage is not None) else None,
                    lineage_key=f"{lineage}:{cfg.cache_key()}",
                    config_key=cfg.cache_key(),
                    workers=cfg.summary_workers,
                    backend=cfg.solver_backend,
                    metrics=self.registry,
                    tracer=self.tracer,
                )

            summary_index, error = pm.attempt("summaries", run_summaries)
            if error is not None:
                # The summary layer is an accelerator: losing it degrades
                # to the whole-VFG fixpoint, never the findings.
                pm.warn("summary layer unavailable; interference runs unsharded")
                summary_index = None
            else:
                computed = self.registry.counter("summary.computed").value
                reused = self.registry.counter("summary.cache_hits").value
                pm.records[-1].detail = (
                    f"{len(summary_index.summaries)} summaries"
                    f" ({computed} computed, {reused} reused)"
                )
            if self._out_of_time("summaries"):
                return finish()

        # -- Alg. 2 interference (always recomputed: global fixpoint) -------
        def run_interference() -> InterferenceAnalysis:
            analysis = InterferenceAnalysis(
                dataflow,
                mhp,
                max_rounds=cfg.max_interference_rounds,
                use_mhp=cfg.use_mhp,
                prune_guards=cfg.prune_guards,
                summary_index=summary_index,
                metrics=self.registry,
            )
            analysis.run()
            return analysis

        interference, error = pm.attempt("interference", run_interference)
        if error is not None:
            pm.warn("interference analysis unavailable; no findings produced")
            return finish()
        pm.records[-1].detail = (
            f"{interference.interference_edge_count} interference edge(s)"
        )
        if self._out_of_time("interference"):
            return finish()

        bundle = VFGBundle(
            module=module,
            vfg=dataflow.vfg,
            tcg=tcg,
            mhp=mhp,
            dataflow=dataflow,
            interference=interference,
            pointsto=pointsto,
            build_seconds=pm.seconds_of(
                "pointer", "tcg", "mhp", "dataflow", "summaries", "interference"
            ),
            summary_index=summary_index,
        )

        # -- detection ------------------------------------------------------
        lock_analysis = None
        if cfg.model_locks:
            from ..threads.locks import LockAnalysis

            lock_analysis = LockAnalysis(module)
        realizability = RealizabilityChecker(
            bundle,
            use_cube_and_conquer=cfg.cube_and_conquer,
            solver_max_conflicts=cfg.solver_max_conflicts,
            order_constraints=cfg.order_constraints,
            lock_analysis=lock_analysis,
            memory_model=cfg.memory_model,
            backend=cfg.solver_backend,
            cache=self._verdict_cache(caching),
            solver_timeout=cfg.solver_timeout_seconds,
            budget=budget,
            metrics=self.registry,
            tracer=self.tracer,
            incremental_smt=cfg.incremental_smt,
        )
        # Snapshot the in-process warm-solver counters so the detection
        # phase's delta lands in the run registry (worker-side counters
        # stay in their processes; serial/thread runs see the full story).
        warm_before = warm_solver_counters()
        limits = SearchLimits(
            max_depth=cfg.max_path_depth,
            max_paths_per_source=cfg.max_paths_per_source,
            max_visits=cfg.max_search_visits,
            context_depth=cfg.context_depth,
        )
        index_cache = (
            self.store.index_cache if caching else ReachabilityIndexCache()
        )
        for name in cfg.checkers:
            if self._out_of_time(f"detect:{name}"):
                return finish()
            checker = ALL_CHECKERS[name](
                bundle,
                limits=limits,
                realizability=realizability,
                inter_thread_only=cfg.inter_thread_only,
                max_reports_per_source=cfg.max_reports_per_source,
                collect_suppressed=cfg.collect_suppressed,
                parallel_solving=cfg.parallel_solving,
                solver_workers=cfg.solver_workers,
                solver_backend=cfg.solver_backend,
                sink_reachability=cfg.sink_reachability,
                guard_pruning=cfg.incremental_guard_pruning,
                dead_memo=cfg.dead_state_memo,
                index_cache=index_cache,
                streaming=cfg.streaming_solving,
                enumeration_workers=cfg.enumeration_workers,
                detect_workers=cfg.detect_workers,
                budget=budget,
                tracer=self.tracer,
            )
            fingerprint = None
            if caching and lineage is not None:
                fingerprint = self._detection_fingerprint(checker, bundle, skeleton)
                prev = self.store.get("detect", (lineage, name))
                if prev is not None and prev["fingerprint"] == fingerprint:
                    pm.cached(
                        f"detect:{name}",
                        detail=f"{len(prev['bugs'])} report(s), sink region unchanged",
                    )
                    bugs.extend(prev["bugs"])
                    suppressed.extend(prev["suppressed"])
                    checker_statistics[name] = dict(prev["checker_stats"])
                    search_statistics[name] = dict(prev["search_stats"])
                    truncation_warnings.extend(prev["truncations"])
                    continue
            found, error = pm.attempt(f"detect:{name}", checker.run)
            if error is not None:
                # One crashing checker never takes down the others.
                pm.warn(f"checker {name}: its findings are omitted")
                continue
            pm.records[-1].detail = f"{len(found)} report(s)"
            truncations = [
                f"{name}: {event.describe()}" for event in checker.truncation_events
            ]
            bugs.extend(found)
            suppressed.extend(checker.suppressed)
            checker_statistics[name] = dict(checker.statistics)
            search_statistics[name] = checker.search_stats.as_dict()
            truncation_warnings.extend(truncations)
            undecided = checker.statistics.get("undecided", 0)
            if undecided:
                pm.warn(
                    f"checker {name}: {undecided} candidate(s) undecided"
                    " (solver budget exhausted before a verdict)"
                )
            # Budget-starved verdicts (and runs that expired mid-checker)
            # are time-dependent; caching them would pin UNKNOWN-influenced
            # or partial results across runs.
            if fingerprint is not None and not undecided and not budget.expired():
                self.store.put(
                    "detect",
                    (lineage, name),
                    {
                        "fingerprint": fingerprint,
                        "bugs": list(found),
                        "suppressed": list(checker.suppressed),
                        "checker_stats": dict(checker.statistics),
                        "search_stats": checker.search_stats.as_dict(),
                        "truncations": truncations,
                    },
                )

        warm_after = warm_solver_counters()
        for key, value in warm_after.items():
            delta = value - warm_before.get(key, 0)
            if key == "warm_families":
                delta = value  # a gauge, not a monotonic counter
            if delta:
                self.registry.counter(f"solver.incremental_{key}").add(delta)
        return finish()

    # ----- helpers ----------------------------------------------------------

    def _out_of_time(self, where: str) -> bool:
        """Cooperative wall-budget check at a pass boundary; records the
        observation point on expiry so the report can say where the run
        wound down."""
        return self.budget.note_expired(where)

    def _degraded_empty_report(self, events_mark: int) -> AnalysisReport:
        """A well-formed empty report for runs that could not get past
        the frontend (crash or budget expiry before lowering finished)."""
        report = AnalysisReport(
            timings={
                "parse": self.pm.seconds_of("parse"),
                "lowering": self.pm.seconds_of("lower"),
            },
            degradation_warnings=list(self.pm.warnings),
            timed_out=bool(self.budget.expirations),
            metrics=self.registry,
        )
        self._finish_report(report, events_mark)
        return report

    def _verdict_cache(self, caching: bool) -> Optional[VerdictCache]:
        if not self.config.verdict_cache:
            return None
        # Terms are hash-consed, so Φ_all → verdict entries stay valid
        # across runs; share the store's cache for cross-run reuse.
        return self.store.verdict_cache if caching else VerdictCache()

    def _detection_fingerprint(
        self, checker, bundle: VFGBundle, skeleton: str
    ) -> Tuple:
        """Everything the checker's verdicts can depend on.

        With sink-directed pruning the DFS never leaves the backward-
        reachable region of the sink set, so the fingerprint covers that
        region's edges (plus its frontier — out-edges of region nodes
        drive enumeration order and prune counters), the checker's
        sources, and the Φ_ls store index of every object the region
        mentions.  Without pruning (or without a sink set) the search
        may roam the whole graph, so the whole edge set is the region.

        Node/guard/instruction components compare by identity (or by
        hash-consed structural identity for terms): unchanged functions
        keep their lowered objects, so an untouched region compares
        equal across runs while any relowered function in it forces a
        mismatch — conservative in exactly the right direction.
        """
        cfg = self.config
        vfg = bundle.vfg
        sinks = checker.sink_node_set()
        if sinks and cfg.sink_reachability:
            region: Set[VFGNode] = set(sinks)
            frontier = list(sinks)
            while frontier:
                node = frontier.pop()
                for edge in vfg.in_edges(node):
                    if edge.src not in region:
                        region.add(edge.src)
                        frontier.append(edge.src)
            edges = frozenset(
                e for e in vfg.edges() if e.src in region or e.dst in region
            )
        else:
            region = set(vfg.nodes())
            edges = frozenset(vfg.edges())
        sources: FrozenSet = frozenset(
            (origin, inst, guard) for origin, inst, guard in checker.sources()
        )
        objs = {e.obj for e in edges if e.obj is not None}
        objs.update(n.obj for n in region if isinstance(n, ObjNode))
        object_stores = frozenset(
            (obj, store, guard)
            for obj in objs
            for store, guard in bundle.object_stores.get(obj, ())
        )
        return (
            "fp1",
            cfg.cache_key(),
            skeleton,
            frozenset(sinks) if sinks else None,
            edges,
            sources,
            object_stores,
        )

    def _finish_report(self, report: AnalysisReport, events_mark: int) -> None:
        report.pass_statistics = self.pm.statistics()
        report.cache_statistics = {
            **self.store.statistics(),
            **self.pm.counts(),
        }
        if self.config.explain_cache:
            report.cache_events = list(self.store.events[events_mark:])
