"""The Canary driver: the full pipeline of the paper's Fig. 1.

``Canary.analyze_source`` runs parse → bound/lower → thread-modular VFG
construction (Alg. 1 + Alg. 2) → guarded source–sink checking, and
returns an :class:`AnalysisReport` with the confirmed bugs and the
phase-by-phase statistics used by the benchmarks.

Since PR 3 the driver is a facade over the staged pass pipeline
(:mod:`repro.analysis.passes`): each phase is a named pass, and a
content-addressed :class:`~repro.analysis.artifacts.ArtifactStore`
owned by the driver lets repeated runs skip passes whose input hashes
are unchanged — a warm re-run of identical input executes no analysis
pass at all, and after editing one function only the passes downstream
of the change re-execute.

Since PR 5 every run's statistics live in one
:class:`~repro.obs.metrics.MetricsRegistry` (``report.metrics``): the
solver counters, per-checker phase and enumeration counters, cache
counters, pass table and phase timings all share a single namespace the
exporters (``--metrics-out``) and the bench runner dump uniformly.  The
legacy accessors below (``solver_statistics``, ``checker_statistics``,
``search_statistics``, ``pass_statistics``, ``timings``, ...) are
*views* over that registry — they rebuild the historical dict shapes
exactly, so ``--stats`` output and every downstream consumer see
byte-identical data.  A driver can also carry a
:class:`~repro.obs.tracer.Tracer` (``--trace-out``/``--trace-chrome``)
for a per-span timeline of the same run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..checkers import BugReport
from ..frontend.ast_nodes import Program
from ..ir.module import IRModule
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from ..vfg.builder import VFGBundle
from .artifacts import ArtifactStore
from .config import AnalysisConfig

__all__ = ["Canary", "AnalysisReport"]

#: registry namespaces backing the legacy accessors
_NS_SOLVER = "solver"
_NS_CACHE = "cache"
_NS_TIME = "time"
_NS_VFG = "vfg"
_NS_CHECKER = "checker"
_NS_SEARCH = "search"
_SERIES_PASSES = "passes"


class AnalysisReport:
    """The result of one Canary run.

    All numeric statistics are stored in ``self.metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`); the keyword arguments
    and same-named accessors below exist for compatibility — they seed
    and re-derive the historical dict shapes from the registry.
    """

    def __init__(
        self,
        bugs: Optional[List[BugReport]] = None,
        suppressed: Optional[List] = None,
        vfg_summary: Optional[Dict[str, int]] = None,
        timings: Optional[Dict[str, float]] = None,
        peak_memory_bytes: int = 0,
        solver_statistics: Optional[Dict[str, int]] = None,
        checker_statistics: Optional[Dict[str, Dict[str, int]]] = None,
        search_statistics: Optional[Dict[str, Dict[str, int]]] = None,
        truncation_warnings: Optional[List[str]] = None,
        degradation_warnings: Optional[List[str]] = None,
        timed_out: bool = False,
        pass_statistics: Optional[List[Dict[str, Any]]] = None,
        cache_statistics: Optional[Dict[str, int]] = None,
        cache_events: Optional[List[str]] = None,
        bundle: Optional[VFGBundle] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        #: the single home of this run's statistics
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bugs: List[BugReport] = list(bugs) if bugs else []
        #: solver-refuted candidates with reasons (when collect_suppressed)
        self.suppressed: List = list(suppressed) if suppressed else []
        #: soundness warnings: searches that hit a bound (enumeration truncated)
        self.truncation_warnings: List[str] = (
            list(truncation_warnings) if truncation_warnings else []
        )
        #: graceful-degradation notes: isolated pass/checker failures, solver
        #: pool deaths, budget-starved queries.  A non-empty list means the
        #: report is complete but was produced on a degraded pipeline.
        self.degradation_warnings: List[str] = (
            list(degradation_warnings) if degradation_warnings else []
        )
        #: the run's wall-clock budget expired: the report is partial (the
        #: passes and checkers that ran are accounted in pass_statistics)
        self.timed_out = timed_out
        #: per-artifact hit/miss/store events (populated with explain_cache)
        self.cache_events: List[str] = list(cache_events) if cache_events else []
        self.bundle = bundle
        # Seed the registry from any legacy-shaped inputs (cache replay,
        # portable rehydration, tests).  The live pipeline passes the
        # already-populated run registry and no legacy dicts instead.
        if vfg_summary:
            for key, value in vfg_summary.items():
                self.metrics.set(f"{_NS_VFG}.{key}", value)
        if timings:
            self.timings = timings
        if peak_memory_bytes:
            self.peak_memory_bytes = peak_memory_bytes
        if solver_statistics:
            for key, value in solver_statistics.items():
                self.metrics.counter(f"{_NS_SOLVER}.{key}").add(value)
        if checker_statistics:
            for name, stats in checker_statistics.items():
                for key, value in stats.items():
                    self.metrics.counter(f"{_NS_CHECKER}.{key}", checker=name).add(value)
        if search_statistics:
            for name, stats in search_statistics.items():
                for key, value in stats.items():
                    self.metrics.counter(f"{_NS_SEARCH}.{key}", checker=name).add(value)
        if pass_statistics:
            self.pass_statistics = pass_statistics
        if cache_statistics:
            self.cache_statistics = cache_statistics

    # ----- registry-backed views (legacy accessors) -------------------------

    @property
    def vfg_summary(self) -> Dict[str, int]:
        return self.metrics.namespace(_NS_VFG)

    @property
    def timings(self) -> Dict[str, float]:
        return self.metrics.namespace(_NS_TIME)

    @timings.setter
    def timings(self, value: Dict[str, float]) -> None:
        self.metrics.clear_namespace(_NS_TIME)
        for key, seconds in value.items():
            self.metrics.set(f"{_NS_TIME}.{key}", seconds)

    def set_timing(self, phase: str, seconds: float) -> None:
        self.metrics.set(f"{_NS_TIME}.{phase}", seconds)

    @property
    def peak_memory_bytes(self) -> int:
        return self.metrics.value("process.peak_memory_bytes", default=0)

    @peak_memory_bytes.setter
    def peak_memory_bytes(self, value: int) -> None:
        self.metrics.set("process.peak_memory_bytes", value)

    @property
    def solver_statistics(self) -> Dict[str, int]:
        return self.metrics.namespace(_NS_SOLVER)

    def _labelled_stats(self, prefix: str) -> Dict[str, Dict[str, int]]:
        return {
            name: self.metrics.namespace(prefix, label=("checker", name))
            for name in self.metrics.label_values(prefix, "checker")
        }

    @property
    def checker_statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-checker phase counts: checker name -> {sources, candidates, reports}."""
        return self._labelled_stats(_NS_CHECKER)

    @property
    def search_statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-checker enumeration counters (visits, prunes, memo hits, ...)."""
        return self._labelled_stats(_NS_SEARCH)

    @property
    def pass_statistics(self) -> List[Dict[str, Any]]:
        """Uniform per-pass rows: {name, status ('run'|'cached'), seconds, detail}."""
        return [dict(row) for row in self.metrics.series(_SERIES_PASSES)]

    @pass_statistics.setter
    def pass_statistics(self, rows: List[Dict[str, Any]]) -> None:
        self.metrics.replace_series(_SERIES_PASSES, rows)

    @property
    def cache_statistics(self) -> Dict[str, int]:
        """Artifact-store hit/miss counters plus run/cached pass counts."""
        return self.metrics.namespace(_NS_CACHE)

    @cache_statistics.setter
    def cache_statistics(self, value: Dict[str, int]) -> None:
        self.metrics.clear_namespace(_NS_CACHE)
        for key, count in value.items():
            self.metrics.counter(f"{_NS_CACHE}.{key}").add(count)

    # ----- derived ----------------------------------------------------------

    @property
    def num_reports(self) -> int:
        return len(self.bugs)

    @property
    def cache_hit_rate(self) -> float:
        s = self.solver_statistics
        hits = s.get("cache_hits", 0)
        misses = s.get("cache_misses", 0)
        return hits / (hits + misses) if hits + misses else 0.0

    def passes_run(self) -> List[str]:
        """Names of the passes that actually executed (not cached)."""
        return [p["name"] for p in self.pass_statistics if p["status"] == "run"]

    def describe_statistics(self) -> str:
        """One-line solving summary for the CLI / logs."""
        s = self.solver_statistics
        timings = ", ".join(f"{k} {v:.3f}s" for k, v in sorted(self.timings.items()))
        phases = "; ".join(
            f"{name}: {st.get('sources', 0)} sources / {st.get('candidates', 0)}"
            f" candidates / {st.get('reports', 0)} reports"
            for name, st in sorted(self.checker_statistics.items())
        )
        lines = [
            f"timings: {timings}",
            f"solver: {s.get('queries', 0)} queries"
            f" (sat {s.get('sat', 0)} / unsat {s.get('unsat', 0)}"
            f" / unknown {s.get('unknown', 0)}),"
            f" {s.get('solve_seconds', 0.0):.3f}s solving,"
            f" cache {s.get('cache_hits', 0)}/{s.get('cache_hits', 0) + s.get('cache_misses', 0)}"
            f" hits ({100.0 * self.cache_hit_rate:.0f}%)",
        ]
        if self.pass_statistics:
            run = len(self.passes_run())
            lines.append(
                f"passes: {run} run / {len(self.pass_statistics) - run} cached"
            )
        if phases:
            lines.append(f"checkers: {phases}")
        totals: Dict[str, int] = {}
        for st in self.search_statistics.values():
            for key, value in st.items():
                totals[key] = totals.get(key, 0) + value
        if totals:
            lines.append(
                f"enumeration: {totals.get('visits', 0)} nodes visited,"
                f" pruned {totals.get('pruned_unreachable', 0)} unreachable"
                f" / {totals.get('pruned_guard', 0)} guard-unsat,"
                f" {totals.get('memo_hits', 0)} dead-state memo hit(s)"
            )
        for warning in self.truncation_warnings:
            lines.append(f"warning: {warning}")
        for warning in self.degradation_warnings:
            lines.append(f"degraded: {warning}")
        if self.timed_out:
            lines.append("warning: analysis budget expired — partial results")
        return "\n".join(lines)

    def describe_passes(self) -> str:
        """The per-pass table (name, status, seconds) for the CLI."""
        width = max((len(p["name"]) for p in self.pass_statistics), default=4)
        lines = [f"{'pass':<{width}}  status  seconds"]
        for p in self.pass_statistics:
            line = f"{p['name']:<{width}}  {p['status']:<6}  {p['seconds']:7.3f}"
            if p.get("detail"):
                line += f"  {p['detail']}"
            lines.append(line)
        return "\n".join(lines)

    def describe(self) -> str:
        lines = [
            f"Canary: {self.num_reports} report(s)"
            f" — VFG {self.vfg_summary.get('vfg_nodes', 0)} nodes /"
            f" {self.vfg_summary.get('vfg_edges', 0)} edges,"
            f" {self.vfg_summary.get('interference_edges', 0)} interference edge(s)",
        ]
        for bug in self.bugs:
            lines.append(bug.describe())
        return "\n\n".join(lines)


class Canary:
    """Facade over the whole analysis.

    The driver owns an :class:`ArtifactStore`: repeated ``analyze_*``
    calls on one instance reuse phase artifacts whose content hashes are
    unchanged (disable with ``AnalysisConfig(use_cache=False)``).  An
    optional :class:`~repro.obs.tracer.Tracer` collects the span
    timeline across all runs of the instance.
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        store: Optional[ArtifactStore] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        # A fresh config per instance: a shared default instance would
        # leak artifact state between unrelated drivers.
        self.config = config if config is not None else AnalysisConfig()
        if store is None:
            store = ArtifactStore(
                self.config.cache_dir if self.config.use_cache else None,
                summary_cache_dir=(
                    self.config.summary_cache_dir if self.config.use_cache else None
                ),
            )
        self.store = store
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _pipeline(self):
        from .passes import AnalysisPipeline

        return AnalysisPipeline(self.config, self.store, tracer=self.tracer)

    def with_config(self, config: AnalysisConfig) -> "Canary":
        """A sibling driver sharing this one's artifact store.

        The request-isolation primitive of the analysis daemon: each
        request gets its own (immutable) config — and thus its own
        budget, checkers and knobs — while every run digs into the same
        resident store.  Content keys embed the config hash, so two
        configs never alias each other's artifacts.  ``analyze_*`` calls
        are thread-safe across siblings: the store locks its layers and
        serializes same-file runs on a per-lineage lock.
        """
        return Canary(config, store=self.store, tracer=self.tracer)

    # ----- pipeline entry points ---------------------------------------------

    def analyze_source(
        self, source: str, filename: str = "<input>", track_memory: bool = False
    ) -> AnalysisReport:
        return self._pipeline().analyze_source(
            source, filename, track_memory=track_memory
        )

    def analyze_ast(self, ast: Program, track_memory: bool = False) -> AnalysisReport:
        return self._pipeline().analyze_ast(ast, track_memory=track_memory)

    def analyze_module(
        self, module: IRModule, track_memory: bool = False
    ) -> AnalysisReport:
        return self._pipeline().analyze_module(module, track_memory=track_memory)
