"""The Canary driver: the full pipeline of the paper's Fig. 1.

``Canary.analyze_source`` runs parse → bound/lower → thread-modular VFG
construction (Alg. 1 + Alg. 2) → guarded source–sink checking, and
returns an :class:`AnalysisReport` with the confirmed bugs and the
phase-by-phase statistics used by the benchmarks.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..checkers import ALL_CHECKERS, BugReport
from ..detection.reachability import ReachabilityIndexCache
from ..detection.realizability import RealizabilityChecker, VerdictCache
from ..detection.search import SearchLimits
from ..frontend import parse_program
from ..frontend.ast_nodes import Program
from ..ir.module import IRModule
from ..lowering import lower_program
from ..vfg.builder import VFGBundle, build_vfg
from .config import AnalysisConfig

__all__ = ["Canary", "AnalysisReport"]


@dataclass
class AnalysisReport:
    """The result of one Canary run."""

    bugs: List[BugReport] = field(default_factory=list)
    #: solver-refuted candidates with reasons (when collect_suppressed)
    suppressed: List = field(default_factory=list)
    vfg_summary: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    peak_memory_bytes: int = 0
    solver_statistics: Dict[str, int] = field(default_factory=dict)
    #: per-checker phase counts: checker name -> {sources, candidates, reports}
    checker_statistics: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: per-checker enumeration counters (visits, prunes, memo hits, ...)
    search_statistics: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: soundness warnings: searches that hit a bound (enumeration truncated)
    truncation_warnings: List[str] = field(default_factory=list)
    bundle: Optional[VFGBundle] = None

    @property
    def num_reports(self) -> int:
        return len(self.bugs)

    @property
    def cache_hit_rate(self) -> float:
        hits = self.solver_statistics.get("cache_hits", 0)
        misses = self.solver_statistics.get("cache_misses", 0)
        return hits / (hits + misses) if hits + misses else 0.0

    def describe_statistics(self) -> str:
        """One-line solving summary for the CLI / logs."""
        s = self.solver_statistics
        timings = ", ".join(f"{k} {v:.3f}s" for k, v in sorted(self.timings.items()))
        phases = "; ".join(
            f"{name}: {st.get('sources', 0)} sources / {st.get('candidates', 0)}"
            f" candidates / {st.get('reports', 0)} reports"
            for name, st in sorted(self.checker_statistics.items())
        )
        lines = [
            f"timings: {timings}",
            f"solver: {s.get('queries', 0)} queries"
            f" (sat {s.get('sat', 0)} / unsat {s.get('unsat', 0)}"
            f" / unknown {s.get('unknown', 0)}),"
            f" {s.get('solve_seconds', 0.0):.3f}s solving,"
            f" cache {s.get('cache_hits', 0)}/{s.get('cache_hits', 0) + s.get('cache_misses', 0)}"
            f" hits ({100.0 * self.cache_hit_rate:.0f}%)",
        ]
        if phases:
            lines.append(f"checkers: {phases}")
        totals: Dict[str, int] = {}
        for st in self.search_statistics.values():
            for key, value in st.items():
                totals[key] = totals.get(key, 0) + value
        if totals:
            lines.append(
                f"enumeration: {totals.get('visits', 0)} nodes visited,"
                f" pruned {totals.get('pruned_unreachable', 0)} unreachable"
                f" / {totals.get('pruned_guard', 0)} guard-unsat,"
                f" {totals.get('memo_hits', 0)} dead-state memo hit(s)"
            )
        for warning in self.truncation_warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)

    def describe(self) -> str:
        lines = [
            f"Canary: {self.num_reports} report(s)"
            f" — VFG {self.vfg_summary.get('vfg_nodes', 0)} nodes /"
            f" {self.vfg_summary.get('vfg_edges', 0)} edges,"
            f" {self.vfg_summary.get('interference_edges', 0)} interference edge(s)",
        ]
        for bug in self.bugs:
            lines.append(bug.describe())
        return "\n\n".join(lines)


class Canary:
    """Facade over the whole analysis.  Thread-safe for separate inputs."""

    def __init__(self, config: AnalysisConfig = AnalysisConfig()) -> None:
        self.config = config

    # ----- pipeline entry points ---------------------------------------------

    def analyze_source(
        self, source: str, filename: str = "<input>", track_memory: bool = False
    ) -> AnalysisReport:
        t0 = time.perf_counter()
        ast = parse_program(source, filename)
        parse_seconds = time.perf_counter() - t0
        report = self.analyze_ast(ast, track_memory=track_memory)
        report.timings["parse"] = parse_seconds
        return report

    def analyze_ast(self, ast: Program, track_memory: bool = False) -> AnalysisReport:
        t0 = time.perf_counter()
        module = lower_program(ast, unroll_depth=self.config.unroll_depth)
        lower_seconds = time.perf_counter() - t0
        report = self.analyze_module(module, track_memory=track_memory)
        report.timings["lowering"] = lower_seconds
        return report

    def analyze_module(
        self, module: IRModule, track_memory: bool = False
    ) -> AnalysisReport:
        cfg = self.config
        if track_memory:
            tracemalloc.start()
        t0 = time.perf_counter()
        bundle = build_vfg(
            module,
            max_content_entries=cfg.max_content_entries,
            max_interference_rounds=cfg.max_interference_rounds,
            prune_guards=cfg.prune_guards,
            use_mhp=cfg.use_mhp,
        )
        vfg_seconds = time.perf_counter() - t0

        t1 = time.perf_counter()
        lock_analysis = None
        if cfg.model_locks:
            from ..threads.locks import LockAnalysis

            lock_analysis = LockAnalysis(module)
        realizability = RealizabilityChecker(
            bundle,
            use_cube_and_conquer=cfg.cube_and_conquer,
            solver_max_conflicts=cfg.solver_max_conflicts,
            order_constraints=cfg.order_constraints,
            lock_analysis=lock_analysis,
            memory_model=cfg.memory_model,
            backend=cfg.solver_backend,
            cache=VerdictCache() if cfg.verdict_cache else None,
        )
        limits = SearchLimits(
            max_depth=cfg.max_path_depth,
            max_paths_per_source=cfg.max_paths_per_source,
            max_visits=cfg.max_search_visits,
            context_depth=cfg.context_depth,
        )
        # One cache per run: checkers sharing a sink class (e.g. the
        # dereference sinks of use-after-free and null-deref) share the
        # backward reachability index instead of rebuilding it.
        index_cache = ReachabilityIndexCache()
        bugs: List[BugReport] = []
        suppressed: List = []
        checker_statistics: Dict[str, Dict[str, int]] = {}
        search_statistics: Dict[str, Dict[str, int]] = {}
        truncation_warnings: List[str] = []
        for name in cfg.checkers:
            checker_cls = ALL_CHECKERS[name]
            checker = checker_cls(
                bundle,
                limits=limits,
                realizability=realizability,
                inter_thread_only=cfg.inter_thread_only,
                max_reports_per_source=cfg.max_reports_per_source,
                collect_suppressed=cfg.collect_suppressed,
                parallel_solving=cfg.parallel_solving,
                solver_workers=cfg.solver_workers,
                solver_backend=cfg.solver_backend,
                sink_reachability=cfg.sink_reachability,
                guard_pruning=cfg.incremental_guard_pruning,
                dead_memo=cfg.dead_state_memo,
                index_cache=index_cache,
                streaming=cfg.streaming_solving,
                enumeration_workers=cfg.enumeration_workers,
            )
            bugs.extend(checker.run())
            suppressed.extend(checker.suppressed)
            checker_statistics[name] = dict(checker.statistics)
            search_statistics[name] = checker.search_stats.as_dict()
            truncation_warnings.extend(
                f"{name}: {event.describe()}" for event in checker.truncation_events
            )
        check_seconds = time.perf_counter() - t1

        peak = 0
        if track_memory:
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

        return AnalysisReport(
            bugs=bugs,
            suppressed=suppressed,
            vfg_summary=bundle.summary(),
            timings={
                "vfg": vfg_seconds,
                "checking": check_seconds,
                "solving": realizability.statistics.get("solve_seconds", 0.0),
            },
            peak_memory_bytes=peak,
            solver_statistics=dict(realizability.statistics),
            checker_statistics=checker_statistics,
            search_statistics=search_statistics,
            truncation_warnings=truncation_warnings,
            bundle=bundle,
        )
