"""The Canary driver: the full pipeline of the paper's Fig. 1.

``Canary.analyze_source`` runs parse → bound/lower → thread-modular VFG
construction (Alg. 1 + Alg. 2) → guarded source–sink checking, and
returns an :class:`AnalysisReport` with the confirmed bugs and the
phase-by-phase statistics used by the benchmarks.

Since PR 3 the driver is a facade over the staged pass pipeline
(:mod:`repro.analysis.passes`): each phase is a named pass, and a
content-addressed :class:`~repro.analysis.artifacts.ArtifactStore`
owned by the driver lets repeated runs skip passes whose input hashes
are unchanged — a warm re-run of identical input executes no analysis
pass at all, and after editing one function only the passes downstream
of the change re-execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..checkers import BugReport
from ..frontend.ast_nodes import Program
from ..ir.module import IRModule
from ..vfg.builder import VFGBundle
from .artifacts import ArtifactStore
from .config import AnalysisConfig

__all__ = ["Canary", "AnalysisReport"]


@dataclass
class AnalysisReport:
    """The result of one Canary run."""

    bugs: List[BugReport] = field(default_factory=list)
    #: solver-refuted candidates with reasons (when collect_suppressed)
    suppressed: List = field(default_factory=list)
    vfg_summary: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    peak_memory_bytes: int = 0
    solver_statistics: Dict[str, int] = field(default_factory=dict)
    #: per-checker phase counts: checker name -> {sources, candidates, reports}
    checker_statistics: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: per-checker enumeration counters (visits, prunes, memo hits, ...)
    search_statistics: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: soundness warnings: searches that hit a bound (enumeration truncated)
    truncation_warnings: List[str] = field(default_factory=list)
    #: graceful-degradation notes: isolated pass/checker failures, solver
    #: pool deaths, budget-starved queries.  A non-empty list means the
    #: report is complete but was produced on a degraded pipeline.
    degradation_warnings: List[str] = field(default_factory=list)
    #: the run's wall-clock budget expired: the report is partial (the
    #: passes and checkers that ran are accounted in pass_statistics)
    timed_out: bool = False
    #: uniform per-pass rows: {name, status ('run'|'cached'), seconds, detail}
    pass_statistics: List[Dict[str, Any]] = field(default_factory=list)
    #: artifact-store hit/miss counters plus run/cached pass counts
    cache_statistics: Dict[str, int] = field(default_factory=dict)
    #: per-artifact hit/miss/store events (populated with explain_cache)
    cache_events: List[str] = field(default_factory=list)
    bundle: Optional[VFGBundle] = None

    @property
    def num_reports(self) -> int:
        return len(self.bugs)

    @property
    def cache_hit_rate(self) -> float:
        hits = self.solver_statistics.get("cache_hits", 0)
        misses = self.solver_statistics.get("cache_misses", 0)
        return hits / (hits + misses) if hits + misses else 0.0

    def passes_run(self) -> List[str]:
        """Names of the passes that actually executed (not cached)."""
        return [p["name"] for p in self.pass_statistics if p["status"] == "run"]

    def describe_statistics(self) -> str:
        """One-line solving summary for the CLI / logs."""
        s = self.solver_statistics
        timings = ", ".join(f"{k} {v:.3f}s" for k, v in sorted(self.timings.items()))
        phases = "; ".join(
            f"{name}: {st.get('sources', 0)} sources / {st.get('candidates', 0)}"
            f" candidates / {st.get('reports', 0)} reports"
            for name, st in sorted(self.checker_statistics.items())
        )
        lines = [
            f"timings: {timings}",
            f"solver: {s.get('queries', 0)} queries"
            f" (sat {s.get('sat', 0)} / unsat {s.get('unsat', 0)}"
            f" / unknown {s.get('unknown', 0)}),"
            f" {s.get('solve_seconds', 0.0):.3f}s solving,"
            f" cache {s.get('cache_hits', 0)}/{s.get('cache_hits', 0) + s.get('cache_misses', 0)}"
            f" hits ({100.0 * self.cache_hit_rate:.0f}%)",
        ]
        if self.pass_statistics:
            run = len(self.passes_run())
            lines.append(
                f"passes: {run} run / {len(self.pass_statistics) - run} cached"
            )
        if phases:
            lines.append(f"checkers: {phases}")
        totals: Dict[str, int] = {}
        for st in self.search_statistics.values():
            for key, value in st.items():
                totals[key] = totals.get(key, 0) + value
        if totals:
            lines.append(
                f"enumeration: {totals.get('visits', 0)} nodes visited,"
                f" pruned {totals.get('pruned_unreachable', 0)} unreachable"
                f" / {totals.get('pruned_guard', 0)} guard-unsat,"
                f" {totals.get('memo_hits', 0)} dead-state memo hit(s)"
            )
        for warning in self.truncation_warnings:
            lines.append(f"warning: {warning}")
        for warning in self.degradation_warnings:
            lines.append(f"degraded: {warning}")
        if self.timed_out:
            lines.append("warning: analysis budget expired — partial results")
        return "\n".join(lines)

    def describe_passes(self) -> str:
        """The per-pass table (name, status, seconds) for the CLI."""
        width = max((len(p["name"]) for p in self.pass_statistics), default=4)
        lines = [f"{'pass':<{width}}  status  seconds"]
        for p in self.pass_statistics:
            line = f"{p['name']:<{width}}  {p['status']:<6}  {p['seconds']:7.3f}"
            if p.get("detail"):
                line += f"  {p['detail']}"
            lines.append(line)
        return "\n".join(lines)

    def describe(self) -> str:
        lines = [
            f"Canary: {self.num_reports} report(s)"
            f" — VFG {self.vfg_summary.get('vfg_nodes', 0)} nodes /"
            f" {self.vfg_summary.get('vfg_edges', 0)} edges,"
            f" {self.vfg_summary.get('interference_edges', 0)} interference edge(s)",
        ]
        for bug in self.bugs:
            lines.append(bug.describe())
        return "\n\n".join(lines)


class Canary:
    """Facade over the whole analysis.

    The driver owns an :class:`ArtifactStore`: repeated ``analyze_*``
    calls on one instance reuse phase artifacts whose content hashes are
    unchanged (disable with ``AnalysisConfig(use_cache=False)``).
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        # A fresh config per instance: a shared default instance would
        # leak artifact state between unrelated drivers.
        self.config = config if config is not None else AnalysisConfig()
        if store is None:
            store = ArtifactStore(
                self.config.cache_dir if self.config.use_cache else None
            )
        self.store = store

    def _pipeline(self):
        from .passes import AnalysisPipeline

        return AnalysisPipeline(self.config, self.store)

    # ----- pipeline entry points ---------------------------------------------

    def analyze_source(
        self, source: str, filename: str = "<input>", track_memory: bool = False
    ) -> AnalysisReport:
        return self._pipeline().analyze_source(
            source, filename, track_memory=track_memory
        )

    def analyze_ast(self, ast: Program, track_memory: bool = False) -> AnalysisReport:
        return self._pipeline().analyze_ast(ast, track_memory=track_memory)

    def analyze_module(
        self, module: IRModule, track_memory: bool = False
    ) -> AnalysisReport:
        return self._pipeline().analyze_module(module, track_memory=track_memory)
