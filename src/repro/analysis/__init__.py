"""Public analysis facade: :class:`Canary`, its config and report types."""

from .budget import Budget
from .config import AnalysisConfig

# driver first: its import chain reaches repro.pointer before
# repro.threads, which is the only safe initialization order for that
# (pre-existing) import cycle.  artifacts/passes hit threads first.
from .driver import AnalysisReport, Canary
from .artifacts import ArtifactStore
from .passes import AnalysisPipeline, PassManager, PassRecord

__all__ = [
    "AnalysisConfig",
    "AnalysisPipeline",
    "AnalysisReport",
    "ArtifactStore",
    "Budget",
    "Canary",
    "PassManager",
    "PassRecord",
]
