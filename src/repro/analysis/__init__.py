"""Public analysis facade: :class:`Canary`, its config and report types."""

from .config import AnalysisConfig
from .driver import AnalysisReport, Canary

__all__ = ["AnalysisConfig", "AnalysisReport", "Canary"]
