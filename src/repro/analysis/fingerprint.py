"""IR-level fingerprints and the portable report codec.

``module_skeleton`` hashes exactly the slice of a lowered module that the
pointer/thread-structure phases (Steensgaard → thread call graph → MHP)
depend on: the label layout, instruction opcodes, direct call/fork
targets, thread and mutex names.  Two modules with equal skeletons have
identical thread structure and — absent function pointers — identical
call resolution, so those phase artifacts can be reused even though
variable names (and hence most value-level content) differ between runs.

``report_to_portable`` / ``report_from_portable`` translate an
:class:`~repro.analysis.driver.AnalysisReport` to/from a JSON-safe dict
keyed entirely by instruction labels, which are deterministic per source
text (per-function label blocks): a fresh process can re-lower the same
source and rehydrate a cached report against its own module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..frontend.fingerprint import stable_digest
from ..ir.instructions import (
    CallInst,
    ForkInst,
    JoinInst,
    LockInst,
    SignalInst,
    UnlockInst,
    WaitInst,
)
from ..ir.module import IRModule
from ..ir.values import FunctionRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .driver import AnalysisReport

__all__ = [
    "module_skeleton",
    "report_from_portable",
    "report_to_portable",
    "run_digest",
    "summary_identity_keys",
]

PORTABLE_VERSION = 1

#: schema tag of the on-disk ``vfs`` (FunctionVFSummary) namespace; bump
#: on any change to the entry layout or to the identity-key recipe
SUMMARY_SCHEMA = "vfs1"


def summary_identity_keys(dataflow, config_key: str) -> dict:
    """Portable per-function identity keys for the disk summary namespace.

    The key must equal across two processes exactly when the function's
    Alg. 1 pass is guaranteed to produce byte-identical edges and sites.
    A pass reads (a) the function's own lowered body — covered by its
    unrolled-AST ``content_key`` — (b) the module environment (globals,
    externs) and the per-site callee resolutions, and (c) *global* state
    written by every earlier pass in the reverse-topological order
    (points-to facts of shared callees in particular — the same reason
    journal replay is prefix-only).  So keys chain Merkle-style: each
    function folds in its predecessor's key, and an edit invalidates the
    edited function plus everything after it in pass order — the
    unchanged prefix stays warm.  Requires the deterministic
    content-derived SSA naming (``VariableNamer``); with it, equal keys
    imply equal summary fingerprints in any process.
    """
    module = dataflow.module
    env = [
        SUMMARY_SCHEMA,
        config_key,
        "globals:" + ",".join(sorted(module.globals)),
        "externs:" + ",".join(sorted(module.externs)),
    ]
    keys: dict = {}
    prev_key = ""
    for position, name in enumerate(dataflow.function_extents):
        func = module.functions[name]
        if not func.content_key:
            # Hand-built function (no lowering stamp): its body has no
            # portable identity, so neither it nor anything after it in
            # pass order may hit the disk layer.
            break
        rows = env + [f"pos={position}", f"fn={name}", func.content_key, prev_key]
        for inst in func.body:
            if isinstance(inst, (CallInst, ForkInst)):
                callees = ",".join(sorted(dataflow.tcg.callees_at(inst)))
                rows.append(f"site:{inst.label}:{callees}")
        prev_key = stable_digest(rows)
        keys[name] = prev_key
    return keys


def run_digest(source: str, filename: str, config_key: str) -> str:
    """The whole-run cache key: source text + filename + config hash."""
    return stable_digest(["run", filename, config_key, source])


def module_skeleton(module: IRModule) -> str:
    """Hash of the pointer/thread-structure-relevant slice of a module."""
    parts = [
        f"entry={module.entry}",
        "globals:" + ",".join(sorted(module.globals)),
        "externs:" + ",".join(sorted(module.externs)),
    ]
    indirect = False
    for name, func in module.functions.items():
        parts.append(f"fn:{name}/{len(func.params)}")
        for inst in func.body:
            enc = f"{inst.label}:{type(inst).__name__}"
            if isinstance(inst, (CallInst, ForkInst)):
                callee = inst.callee
                if isinstance(callee, FunctionRef):
                    enc += f":{callee.name}"
                else:
                    enc += ":?"
                    indirect = True
                if isinstance(inst, ForkInst):
                    enc += f":{inst.thread}"
            elif isinstance(inst, JoinInst):
                enc += f":{inst.thread}"
            elif isinstance(inst, (LockInst, UnlockInst)):
                enc += f":{inst.mutex}"
            elif isinstance(inst, (SignalInst, WaitInst)):
                enc += f":{inst.cond}"
            parts.append(enc)
    if indirect:
        # Function-pointer targets come from whole-module points-to facts,
        # and those facts are keyed by per-lowering Variable objects: the
        # cached triple answers queries correctly only for the exact same
        # lowered function objects.  Folding in their identities makes any
        # relowered function force the pointer phases to re-run.
        for name, func in module.functions.items():
            parts.append(f"obj:{name}:{id(func)}")
    return stable_digest(parts)


def report_to_portable(report: "AnalysisReport") -> dict:
    """Encode a report as a JSON-safe, label-keyed dict."""
    bugs = [
        {
            "kind": b.kind,
            "source": b.source.label,
            "sink": b.sink.label,
            "path": b.path,
            "inter_thread": b.inter_thread,
            "witness_order": dict(b.witness_order),
            "witness_env": {k: dict(v) for k, v in b.witness_env.items()},
            "statements": [s.label for s in b.statements],
        }
        for b in report.bugs
    ]
    suppressed = [
        {
            "kind": s.kind,
            "source": s.source.label,
            "sink": s.sink.label,
            "reason": s.reason,
        }
        for s in report.suppressed
    ]
    return {
        "version": PORTABLE_VERSION,
        "bugs": bugs,
        "suppressed": suppressed,
        "vfg_summary": dict(report.vfg_summary),
        "solver_statistics": dict(report.solver_statistics),
        "checker_statistics": {
            k: dict(v) for k, v in report.checker_statistics.items()
        },
        "search_statistics": {
            k: dict(v) for k, v in report.search_statistics.items()
        },
        "truncation_warnings": list(report.truncation_warnings),
        "degradation_warnings": list(report.degradation_warnings),
        "timed_out": report.timed_out,
    }


def report_from_portable(
    data: dict, module: IRModule, metrics=None
) -> "AnalysisReport":
    """Rehydrate a portable report against a freshly lowered module.

    Raises ``KeyError`` when a recorded label no longer exists (stale
    cache entry) — callers treat that as a miss and re-analyze.
    """
    from ..checkers.base import BugReport, SuppressedCandidate
    from .driver import AnalysisReport

    if data.get("version") != PORTABLE_VERSION:
        raise KeyError("portable report version mismatch")
    bugs: List[BugReport] = [
        BugReport(
            kind=b["kind"],
            source=module.instruction_at(b["source"]),
            sink=module.instruction_at(b["sink"]),
            path=b["path"],
            inter_thread=b["inter_thread"],
            witness_order=dict(b.get("witness_order", {})),
            witness_env=dict(b.get("witness_env", {})),
            statements=[
                module.instruction_at(label) for label in b.get("statements", ())
            ],
        )
        for b in data.get("bugs", ())
    ]
    suppressed = [
        SuppressedCandidate(
            kind=s["kind"],
            source=module.instruction_at(s["source"]),
            sink=module.instruction_at(s["sink"]),
            reason=s["reason"],
        )
        for s in data.get("suppressed", ())
    ]
    return AnalysisReport(
        bugs=bugs,
        suppressed=suppressed,
        vfg_summary=dict(data.get("vfg_summary", {})),
        solver_statistics=dict(data.get("solver_statistics", {})),
        checker_statistics={
            k: dict(v) for k, v in data.get("checker_statistics", {}).items()
        },
        search_statistics={
            k: dict(v) for k, v in data.get("search_statistics", {}).items()
        },
        truncation_warnings=list(data.get("truncation_warnings", ())),
        degradation_warnings=list(data.get("degradation_warnings", ())),
        timed_out=bool(data.get("timed_out", False)),
        bundle=None,
        metrics=metrics,
    )
