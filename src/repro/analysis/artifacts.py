"""Content-addressed artifact store for the pass pipeline.

Two layers:

* an **in-memory layer** scoped to one :class:`~repro.analysis.driver.Canary`
  instance.  It holds *live* objects — lowered functions, dataflow
  journals, the pointer/thread-structure triple, per-checker detection
  results — keyed by content fingerprints plus object-identity validity
  conditions checked at reuse time;
* an optional **on-disk layer** (``cache_dir``) holding portable,
  JSON-encoded whole-run reports keyed by the source text, filename and
  config hash, so a warm re-run in a fresh process is near-instant.

The store also owns the cross-run solver caches: one
:class:`~repro.detection.realizability.VerdictCache` (Φ_all → verdict)
and one :class:`~repro.detection.reachability.ReachabilityIndexCache`,
both shared by every run of the owning driver.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ..detection.reachability import ReachabilityIndexCache
from ..detection.realizability import VerdictCache

__all__ = ["ArtifactStore"]


class ArtifactStore:
    """Keyed artifact storage with hit/miss accounting and an event log."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        summary_cache_dir: Optional[str] = None,
    ) -> None:
        self.cache_dir = cache_dir
        #: dedicated home of the per-function summary namespace (``vfs``);
        #: falls back to ``cache_dir`` when unset, so plain ``--cache-dir``
        #: runs persist summaries alongside whole-run reports
        self.summary_cache_dir = summary_cache_dir
        self._memory: Dict[Tuple[str, Any], Any] = {}
        self.hits = 0
        self.misses = 0
        #: disk entries that existed but failed to decode (truncated or
        #: corrupt JSON) — counted, treated as misses, never raised
        self.disk_corrupt = 0
        self.events: List[str] = []
        #: Φ_all → verdict memo shared across runs (PR 1)
        self.verdict_cache = VerdictCache()
        #: sink-set → backward reachability index memo shared across runs (PR 2)
        self.index_cache = ReachabilityIndexCache()
        for directory in (cache_dir, summary_cache_dir):
            if directory:
                os.makedirs(directory, exist_ok=True)

    # ----- event log ------------------------------------------------------

    def note(self, event: str) -> None:
        self.events.append(event)

    def statistics(self) -> Dict[str, int]:
        return {
            "artifact_hits": self.hits,
            "artifact_misses": self.misses,
            "artifacts_stored": len(self._memory),
            "disk_corrupt": self.disk_corrupt,
        }

    # ----- in-memory layer -------------------------------------------------

    def get(self, namespace: str, key: Any) -> Optional[Any]:
        value = self._memory.get((namespace, key))
        if value is None:
            self.misses += 1
            self.note(f"miss {namespace}")
        else:
            self.hits += 1
            self.note(f"hit {namespace}")
        return value

    def put(self, namespace: str, key: Any, value: Any) -> Any:
        self._memory[(namespace, key)] = value
        self.note(f"store {namespace}")
        return value

    def setdefault(self, namespace: str, key: Any, factory) -> Any:
        value = self._memory.get((namespace, key))
        if value is None:
            value = factory()
            self._memory[(namespace, key)] = value
        return value

    # ----- on-disk layer -----------------------------------------------------

    def _disk_dir(self, namespace: str) -> Optional[str]:
        if namespace == "vfs" and self.summary_cache_dir:
            return self.summary_cache_dir
        return self.cache_dir

    def has_disk(self, namespace: str) -> bool:
        return self._disk_dir(namespace) is not None

    def _disk_path(self, namespace: str, digest: str) -> Optional[str]:
        directory = self._disk_dir(namespace)
        if not directory:
            return None
        return os.path.join(directory, f"{namespace}-{digest}.json")

    def get_disk(self, namespace: str, digest: str) -> Optional[dict]:
        path = self._disk_path(namespace, digest)
        if path is None:
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                value = json.load(fh)
        except OSError:
            self.misses += 1
            self.note(f"miss disk:{namespace}")
            return None
        except ValueError:
            # The file exists but does not decode: a truncated write from
            # a killed process, or external corruption.  A cache must
            # never turn that into a run failure — count it and recompute.
            self.disk_corrupt += 1
            self.misses += 1
            self.note(f"corrupt disk:{namespace}")
            return None
        self.hits += 1
        self.note(f"hit disk:{namespace}")
        return value

    def put_disk(self, namespace: str, digest: str, value: dict) -> None:
        path = self._disk_path(namespace, digest)
        if path is None:
            return
        # Atomic publish: the temp file lives in the destination directory
        # (same filesystem, so ``os.replace`` is atomic) and a concurrent
        # reader sees the old file or the new one, never a torn write.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(value, fh, default=str)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.note(f"store disk:{namespace}")

    # ----- housekeeping -------------------------------------------------------

    def begin_run(self) -> None:
        """Bound cross-run growth of the shared reachability cache: old
        entries are keyed by dead VFGs and can never hit again."""
        if len(self.index_cache) > 32:
            self.index_cache = ReachabilityIndexCache()
