"""Content-addressed artifact store for the pass pipeline.

Two layers:

* an **in-memory layer** scoped to one :class:`~repro.analysis.driver.Canary`
  instance (or, in daemon mode, shared by every request of a
  :class:`~repro.server.service.AnalysisService`).  It holds *live*
  objects — lowered functions, dataflow journals, the pointer/thread-
  structure triple, per-checker detection results — keyed by content
  fingerprints plus object-identity validity conditions checked at
  reuse time;
* an optional **on-disk layer** (``cache_dir``) holding portable,
  JSON-encoded whole-run reports keyed by the source text, filename and
  config hash, so a warm re-run in a fresh process is near-instant.

The store also owns the cross-run solver caches: one
:class:`~repro.detection.realizability.VerdictCache` (Φ_all → verdict)
and one :class:`~repro.detection.reachability.ReachabilityIndexCache`,
both shared by every run of the owning driver.

Thread-safety: all counters, the event log and the memory layer are
guarded by one reentrant lock, so concurrent pipelines (the daemon's
worker pool) can share a store.  Mutable lineage-keyed artifacts
(lowering caches, dataflow journals) additionally need the per-lineage
lock (:meth:`lineage_lock`) held for the duration of a run — the
pipeline acquires it, so two concurrent requests for the *same* file
serialize (and the second one rides the incremental path) while
distinct files analyze in parallel.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..detection.reachability import ReachabilityIndexCache
from ..detection.realizability import VerdictCache

__all__ = ["ArtifactStore"]


class ArtifactStore:
    """Keyed artifact storage with hit/miss accounting and an event log."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        summary_cache_dir: Optional[str] = None,
        max_memory_entries: Optional[int] = None,
        max_events: Optional[int] = None,
        index_capacity: int = 32,
    ) -> None:
        self.cache_dir = cache_dir
        #: dedicated home of the per-function summary namespace (``vfs``);
        #: falls back to ``cache_dir`` when unset, so plain ``--cache-dir``
        #: runs persist summaries alongside whole-run reports
        self.summary_cache_dir = summary_cache_dir
        #: LRU bound on the memory layer (None = unbounded, the one-shot
        #: CLI default; the daemon sets a cap so a resident store cannot
        #: grow without bound across tenants)
        self.max_memory_entries = max_memory_entries
        #: bound on the event log (None = unbounded); a resident daemon
        #: trims the oldest half past the cap, so ``explain_cache`` output
        #: may be truncated there — a debugging aid, never load-bearing
        self.max_events = max_events
        self._memory: "OrderedDict[Tuple[str, Any], Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._lineage_locks: Dict[Any, threading.RLock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: disk entries that existed but failed to decode (truncated or
        #: corrupt JSON) — counted, treated as misses, never raised
        self.disk_corrupt = 0
        #: disk writes that failed (full disk, permissions, torn rename) —
        #: counted and noted, never raised: the cache stays a cache, but
        #: the failure is visible in ``--stats``/metrics instead of silent
        self.disk_store_errors = 0
        #: disk writes skipped because the value is not strictly JSON-
        #: serializable — persisting a lossy ``default=str`` rendering
        #: would rehydrate as a *different* value later, which is worse
        #: than no cache entry at all
        self.disk_unportable = 0
        self.events: List[str] = []
        #: Φ_all → verdict memo shared across runs (PR 1)
        self.verdict_cache = VerdictCache()
        #: sink-set → backward reachability index memo shared across runs
        #: (PR 2); LRU-bounded, so a resident daemon keeps hot sink
        #: classes warm instead of periodically losing the whole cache
        self.index_cache = ReachabilityIndexCache(capacity=index_capacity)
        for directory in (cache_dir, summary_cache_dir):
            if directory:
                os.makedirs(directory, exist_ok=True)

    # ----- event log ------------------------------------------------------

    def note(self, event: str) -> None:
        with self._lock:
            self.events.append(event)
            if self.max_events is not None and len(self.events) > self.max_events:
                del self.events[: len(self.events) // 2]

    def statistics(self) -> Dict[str, int]:
        with self._lock:
            stats = {
                "artifact_hits": self.hits,
                "artifact_misses": self.misses,
                "artifacts_stored": len(self._memory),
                "disk_corrupt": self.disk_corrupt,
            }
            if self.disk_store_errors:
                stats["disk_store_errors"] = self.disk_store_errors
            if self.disk_unportable:
                stats["disk_unportable"] = self.disk_unportable
            if self.evictions:
                stats["artifact_evictions"] = self.evictions
            return stats

    # ----- concurrency ----------------------------------------------------

    def lineage_lock(self, lineage: Any) -> threading.RLock:
        """The per-lineage run lock: held by a pipeline for the duration
        of a cached analysis of ``lineage``, serializing mutation of the
        lineage-keyed live artifacts (lowering cache, dataflow journal,
        thread triple) between concurrent requests for the same file."""
        with self._lock:
            lock = self._lineage_locks.get(lineage)
            if lock is None:
                lock = self._lineage_locks[lineage] = threading.RLock()
            return lock

    # ----- in-memory layer -------------------------------------------------

    def get(self, namespace: str, key: Any) -> Optional[Any]:
        with self._lock:
            value = self._memory.get((namespace, key))
            if value is None:
                self.misses += 1
            else:
                self._memory.move_to_end((namespace, key))
                self.hits += 1
        self.note(f"{'hit' if value is not None else 'miss'} {namespace}")
        return value

    def put(self, namespace: str, key: Any, value: Any) -> Any:
        with self._lock:
            self._memory[(namespace, key)] = value
            self._memory.move_to_end((namespace, key))
            self._evict_over_cap()
        self.note(f"store {namespace}")
        return value

    def setdefault(self, namespace: str, key: Any, factory) -> Any:
        with self._lock:
            value = self._memory.get((namespace, key))
            if value is None:
                value = self._memory[(namespace, key)] = factory()
            self._memory.move_to_end((namespace, key))
            self._evict_over_cap()
            return value

    def _evict_over_cap(self) -> None:
        # caller holds self._lock
        if self.max_memory_entries is None:
            return
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.evictions += 1

    # ----- on-disk layer -----------------------------------------------------

    def _disk_dir(self, namespace: str) -> Optional[str]:
        if namespace == "vfs" and self.summary_cache_dir:
            return self.summary_cache_dir
        return self.cache_dir

    def has_disk(self, namespace: str) -> bool:
        return self._disk_dir(namespace) is not None

    def _disk_path(self, namespace: str, digest: str) -> Optional[str]:
        directory = self._disk_dir(namespace)
        if not directory:
            return None
        return os.path.join(directory, f"{namespace}-{digest}.json")

    def get_disk(self, namespace: str, digest: str) -> Optional[dict]:
        path = self._disk_path(namespace, digest)
        if path is None:
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                value = json.load(fh)
        except OSError:
            with self._lock:
                self.misses += 1
            self.note(f"miss disk:{namespace}")
            return None
        except ValueError:
            # The file exists but does not decode: a truncated write from
            # a killed process, or external corruption.  A cache must
            # never turn that into a run failure — count it and recompute.
            with self._lock:
                self.disk_corrupt += 1
                self.misses += 1
            self.note(f"corrupt disk:{namespace}")
            return None
        with self._lock:
            self.hits += 1
        self.note(f"hit disk:{namespace}")
        return value

    def put_disk(self, namespace: str, digest: str, value: dict) -> None:
        path = self._disk_path(namespace, digest)
        if path is None:
            return
        # Strict serialization first: a payload that only encodes through
        # ``default=str`` would rehydrate as a *different* value (labels
        # stringified, tuples listified beyond the documented schema), so
        # skip the store and count it rather than persist a lie.
        try:
            encoded = json.dumps(value)
        except (TypeError, ValueError):
            with self._lock:
                self.disk_unportable += 1
            self.note(f"unportable disk:{namespace}")
            return
        # Atomic publish: the temp file lives in the destination directory
        # (same filesystem, so ``os.replace`` is atomic) and a concurrent
        # reader sees the old file or the new one, never a torn write.
        try:
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        except OSError:
            with self._lock:
                self.disk_store_errors += 1
            self.note(f"store-error disk:{namespace}")
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(encoded)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            with self._lock:
                self.disk_store_errors += 1
            self.note(f"store-error disk:{namespace}")
            return
        self.note(f"store disk:{namespace}")

    # ----- housekeeping -------------------------------------------------------

    def begin_run(self) -> None:
        """Per-run housekeeping hook.  The reachability cache bounds
        itself by LRU eviction (entries keyed by dead VFG versions age
        out naturally), so — unlike the pre-LRU behavior, which
        discarded the *whole* cache past a size threshold and zeroed the
        daemon's hit rate — nothing is reset here."""
