"""Unified resource budgets for one analysis run.

The paper's evaluation runs every subject under a hard wall-clock budget
and treats timeouts as first-class outcomes (§7: the 12-hour cap behind
every "NA" cell).  :class:`Budget` is the reproduction's equivalent: one
object carrying

* a **wall-clock deadline** for the whole run (``timeout_seconds``) that
  the pipeline checks cooperatively at pass boundaries and the checkers
  check between sources — on expiry the run winds down and returns a
  partial :class:`~repro.analysis.driver.AnalysisReport` flagged
  ``timed_out`` instead of hanging;
* a **soft per-pass budget** (``pass_timeout_seconds``): a pass that
  overruns it is *not* interrupted (passes are not preemptible) but the
  overrun is surfaced as a degradation warning, so pathological phases
  are visible even when the run completes;
* a **per-query solver deadline** (``solver_timeout_seconds``): every
  SMT query — in-process, on the thread pool, or shipped to a worker
  process — carries a relative timeout; the CDCL loop checks it and
  returns ``UNKNOWN`` with the reason recorded.

Budgets are cooperative: nothing is killed, every observation point
polls :meth:`expired` and degrades.  The object never crosses a process
boundary — only the relative per-query timeout does.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

__all__ = ["Budget", "BudgetExceededError"]


class BudgetExceededError(Exception):
    """Control-flow exception for hard budget expiry / cancellation.

    Raised by callers that need a run to *unwind now* — the daemon's
    request cancellation, or a fault-injected hard expiry — rather than
    wind down cooperatively.  It is deliberately **not** a degradation:
    the pass-isolation catches in :mod:`repro.analysis.passes` re-raise
    it (alongside ``KeyboardInterrupt``-family interrupts, which never
    match ``except Exception`` in the first place) instead of converting
    the unwind into a ``degradation_warnings`` entry, so a cancelled run
    fails loudly instead of masquerading as a degraded-but-complete
    report.
    """

    def __init__(self, where: str = "", reason: str = "budget exceeded") -> None:
        super().__init__(f"{reason} at {where}" if where else reason)
        self.where = where
        self.reason = reason


class Budget:
    """Wall-clock / per-pass / per-solver-query budgets for one run.

    All three limits are optional (``None`` = unlimited); the default
    ``Budget()`` never expires, so callers can thread one object through
    unconditionally instead of special-casing "no budget".
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        pass_seconds: Optional[float] = None,
        solver_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.wall_seconds = wall_seconds
        self.pass_seconds = pass_seconds
        self.solver_seconds = solver_seconds
        self._clock = clock
        self.started_at = clock()
        self._deadline = (
            self.started_at + wall_seconds if wall_seconds is not None else None
        )
        #: observation points at which expiry was noticed (for reports)
        self.expirations: List[str] = []
        #: external cancellation reason (daemon shutdown, client abort);
        #: a cancelled budget reads as expired at every observation point
        self.cancelled: Optional[str] = None

    @classmethod
    def from_config(cls, config) -> "Budget":
        """Budget for one run of the given :class:`AnalysisConfig`."""
        return cls(
            wall_seconds=config.timeout_seconds,
            pass_seconds=config.pass_timeout_seconds,
            solver_seconds=config.solver_timeout_seconds,
        )

    # ----- wall clock -------------------------------------------------------

    @property
    def unlimited(self) -> bool:
        return (
            self.wall_seconds is None
            and self.pass_seconds is None
            and self.solver_seconds is None
        )

    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def remaining(self) -> Optional[float]:
        """Seconds until the wall deadline (never negative); None = unlimited."""
        if self.cancelled is not None:
            return 0.0
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def expired(self) -> bool:
        if self.cancelled is not None:
            return True
        return self._deadline is not None and self._clock() >= self._deadline

    def cancel(self, reason: str = "cancelled") -> None:
        """Externally cancel the run: every subsequent cooperative check
        observes expiry and the run winds down with partial results."""
        self.cancelled = reason

    def note_expired(self, where: str) -> bool:
        """Cooperative check: record the observation point on expiry."""
        if not self.expired():
            return False
        self.expirations.append(where)
        return True

    # ----- derived limits ---------------------------------------------------

    def over_pass_budget(self, seconds: float) -> bool:
        """Did a pass overrun its *soft* budget?  (Informational only.)"""
        return self.pass_seconds is not None and seconds > self.pass_seconds

    def query_timeout(self, floor: float = 0.05) -> Optional[float]:
        """The per-solver-query timeout, clipped to the remaining wall
        budget so late queries cannot overshoot the run deadline.

        ``floor`` keeps in-flight queries decidable during wind-down: a
        query issued after expiry still gets a tiny budget, returning
        ``UNKNOWN`` quickly instead of zero-budget thrash.
        """
        timeout = self.solver_seconds
        remaining = self.remaining()
        if remaining is not None:
            clipped = max(remaining, floor)
            timeout = clipped if timeout is None else min(timeout, clipped)
        return timeout

    def describe(self) -> str:
        parts = []
        if self.wall_seconds is not None:
            parts.append(f"wall {self.wall_seconds:g}s")
        if self.pass_seconds is not None:
            parts.append(f"pass {self.pass_seconds:g}s (soft)")
        if self.solver_seconds is not None:
            parts.append(f"solver query {self.solver_seconds:g}s")
        return ", ".join(parts) if parts else "unlimited"
