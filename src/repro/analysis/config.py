"""Analysis configuration.

Defaults follow the paper's implementation notes (§6/§7.2): loops
unrolled twice, calling-context nesting depth six, guard pruning with the
lightweight semi-decision procedures enabled.  The ablation switches
(``prune_guards``, ``use_mhp``, ``order_constraints``) exist for the
ablation benchmarks called out in DESIGN.md.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Optional, Tuple

__all__ = ["AnalysisConfig", "CACHE_ONLY_FIELDS"]

#: fields that select *where* results are cached, not *what* is computed —
#: they are excluded from :meth:`AnalysisConfig.cache_key` so toggling
#: them never invalidates artifacts.
CACHE_ONLY_FIELDS = frozenset(
    {"cache_dir", "use_cache", "explain_cache", "summary_cache_dir"}
)


@dataclass(frozen=True)
class AnalysisConfig:
    #: loop unrolling depth (paper §6: "we unroll each loop twice")
    unroll_depth: int = 2
    #: calling-context nesting depth (paper §7.2: "set to six")
    context_depth: int = 6
    #: checkers to run, by name (see repro.checkers.ALL_CHECKERS)
    checkers: Tuple[str, ...] = ("use-after-free",)
    #: report only inter-thread findings (the paper's target properties)
    inter_thread_only: bool = True
    #: bound on guarded memory-content entries per object (Alg. 1 state)
    max_content_entries: int = 16
    #: bound on Alg. 2 fixed-point rounds
    max_interference_rounds: int = 20
    #: value-flow path search bounds
    max_path_depth: int = 40
    max_paths_per_source: int = 512
    max_search_visits: int = 200_000
    max_reports_per_source: int = 8
    #: sink-directed enumeration (all exact w.r.t. reported bug keys):
    #: prune DFS edges into nodes that cannot reach the checker's sinks
    sink_reachability: bool = True
    #: fold edge guards into an incremental quick-unsat prefix mid-DFS
    incremental_guard_pruning: bool = True
    #: memoize (node, context, guard-fingerprint) states proven dead
    dead_state_memo: bool = True
    #: stream enumerated paths to the solver pool instead of batching
    #: (only meaningful with parallel_solving)
    streaming_solving: bool = True
    #: producer threads enumerating sources concurrently in streaming mode
    enumeration_workers: int = 2
    #: solve independent path queries in parallel (paper §5.2)
    parallel_solving: bool = False
    solver_workers: int = 4
    #: batch-solving backend: 'process' ships pickled formulas to a
    #: ProcessPoolExecutor (true parallelism for the pure-Python solver);
    #: 'thread' keeps the in-process pool (GIL-bound fallback).  The
    #: process backend degrades to threads automatically if process
    #: creation is unavailable.
    solver_backend: str = "process"
    #: memoize Φ_all → verdict across all checkers of one run
    verdict_cache: bool = True
    #: use cube-and-conquer splitting for path queries (paper §5.2)
    cube_and_conquer: bool = False
    #: route sibling path queries through warm per-sink incremental SMT
    #: solvers (assumption-based, ship-once/assume-many); exact w.r.t.
    #: reported bug keys, ignored under cube_and_conquer
    incremental_smt: bool = True
    #: per-function value-flow/escape summaries between Alg. 1 and
    #: Alg. 2: interference runs its fixpoint over indexed, demand-loaded
    #: function spans instead of whole-VFG scans (exact w.r.t. bug keys)
    summaries: bool = True
    #: shards for summary fingerprinting (1 = in-process serial; >1 uses
    #: the ``solver_backend`` pool with process→thread→serial fallback)
    summary_workers: int = 1
    #: shards for the detection phase: sink families are partitioned
    #: across ``solver_backend`` pool workers, each running the full
    #: enumerate+solve pipeline over its shard; the parent merges in
    #: ordinal order, so reported bug keys equal the serial run's (1 =
    #: no sharding; falls back process→streaming/serial on pool failure)
    detect_workers: int = 1
    #: ablation: apply the semi-decision guard filter during construction
    prune_guards: bool = True
    #: ablation: prune non-MHP store/load pairs before Alg. 2 (paper §6)
    use_mhp: bool = True
    #: ablation: include Φ_ls / Φ_po order constraints when checking
    order_constraints: bool = True
    #: SAT conflict budget per path query (None = unlimited)
    solver_max_conflicts: Optional[int] = 100_000
    #: wall-clock budget for one analysis run, in seconds (None =
    #: unlimited) — the paper's per-subject hard budget.  Checked
    #: cooperatively at pass boundaries and between checker sources; on
    #: expiry the run returns a partial report flagged ``timed_out``.
    timeout_seconds: Optional[float] = None
    #: *soft* per-pass budget: a pass that overruns it is not interrupted,
    #: but the overrun is recorded as a degradation warning
    pass_timeout_seconds: Optional[float] = None
    #: per-SMT-query wall deadline in seconds (None = unlimited); the
    #: CDCL loop polls it and returns UNKNOWN with the reason recorded
    solver_timeout_seconds: Optional[float] = None
    #: extension (paper future work 1): model lock/unlock mutual exclusion
    #: in the order constraints (off by default, matching the paper)
    model_locks: bool = False
    #: extension (paper future work 2): memory model for the program-order
    #: constraints — 'sc' (paper default), 'tso', or 'pso'
    memory_model: str = "sc"
    #: record solver-refuted candidates with the refutation reason
    #: (guard-contradiction vs order-violation) in the report
    collect_suppressed: bool = False
    #: artifact caching: reuse phase artifacts across runs of one driver
    #: (in memory) and, with ``cache_dir`` set, whole-run reports across
    #: processes (on disk).  ``explain_cache`` records hit/miss events.
    use_cache: bool = True
    cache_dir: Optional[str] = None
    explain_cache: bool = False
    #: directory for the portable on-disk per-function summary namespace
    #: (``vfs``): content-keyed ``FunctionVFSummary`` entries that
    #: survive process restarts.  ``None`` routes the namespace to
    #: ``cache_dir`` (summaries persist whenever whole-run reports do).
    summary_cache_dir: Optional[str] = None

    def cache_key(self) -> str:
        """A stable content hash over every knob that can change analysis
        results.  Two configs with equal keys are interchangeable for
        artifact-cache purposes; any analysis-relevant difference —
        solver, search, ablation or extension knobs alike — yields a
        different key.  Cache-plumbing fields are excluded.
        """
        h = hashlib.sha256()
        for f in sorted(fields(self), key=lambda f: f.name):
            if f.name in CACHE_ONLY_FIELDS:
                continue
            h.update(f"{f.name}={getattr(self, f.name)!r};".encode())
        return h.hexdigest()[:16]
