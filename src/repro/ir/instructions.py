"""IR instructions.

After bounding (loop unrolling) and lowering, every function body is a
*guarded straight-line form*: an ordered instruction list in which each
instruction carries its path condition (``guard``) as an SMT term.  For
bounded structured programs this form is equivalent to the CFG the paper
walks in reverse post-order — branching is encoded in the guards, and
textual order is a linearization of control flow (an instruction ℓ1 can
reach ℓ2 intra-procedurally only if ℓ1 precedes ℓ2 and their guards are
jointly satisfiable).

Labels ``ℓ`` are globally unique integers assigned by the module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..frontend.source import Location
from ..smt.terms import TRUE, BoolTerm
from .values import MemObject, Value, Variable

__all__ = [
    "Instruction",
    "AllocInst",
    "AddrOfInst",
    "CopyInst",
    "PhiInst",
    "BinOpInst",
    "CmpInst",
    "LoadInst",
    "StoreInst",
    "CallInst",
    "ReturnInst",
    "ForkInst",
    "JoinInst",
    "FreeInst",
    "LockInst",
    "UnlockInst",
    "SignalInst",
    "WaitInst",
    "SourceInst",
    "SinkInst",
]


@dataclass(eq=False)
class Instruction:
    """Base class.  ``label`` is the paper's ℓ; ``guard`` its path condition."""

    label: int
    guard: BoolTerm
    location: Location

    def defined_var(self) -> Optional[Variable]:
        """The top-level variable this instruction defines, if any."""
        return getattr(self, "dst", None)

    def used_values(self) -> Sequence[Value]:
        """Operand values (for liveness/visitors)."""
        return ()

    def brief(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"ℓ{self.label}: {self.brief()}"


@dataclass(eq=False)
class AllocInst(Instruction):
    """``p = malloc()`` — p points to a fresh heap object."""

    dst: Variable
    obj: MemObject

    def brief(self) -> str:
        return f"{self.dst!r} = alloc {self.obj!r}"


@dataclass(eq=False)
class AddrOfInst(Instruction):
    """``p = &x`` — p points to the (address-taken) stack/global slot of x."""

    dst: Variable
    obj: MemObject

    def brief(self) -> str:
        return f"{self.dst!r} = addrof {self.obj!r}"


@dataclass(eq=False)
class CopyInst(Instruction):
    """``p = q``"""

    dst: Variable
    src: Value

    def used_values(self):
        return (self.src,)

    def brief(self) -> str:
        return f"{self.dst!r} = {self.src!r}"


@dataclass(eq=False)
class PhiInst(Instruction):
    """SSA merge at a structured join: ``dst = phi((v1, g1), (v2, g2), ...)``.

    Each incoming pair gives the merged value and the condition under
    which it is selected (the branch condition, not the full path guard).
    """

    dst: Variable
    incomings: List[Tuple[Value, BoolTerm]]

    def used_values(self):
        return tuple(v for v, _ in self.incomings)

    def brief(self) -> str:
        inc = ", ".join(f"({v!r}, {g.pretty()})" for v, g in self.incomings)
        return f"{self.dst!r} = phi {inc}"


@dataclass(eq=False)
class BinOpInst(Instruction):
    """``p = a op b`` for arithmetic/logical ops."""

    dst: Variable
    op: str
    lhs: Value
    rhs: Value

    def used_values(self):
        return (self.lhs, self.rhs)

    def brief(self) -> str:
        return f"{self.dst!r} = {self.lhs!r} {self.op} {self.rhs!r}"


@dataclass(eq=False)
class CmpInst(Instruction):
    """``p = a cmp b`` producing a boolean-as-int."""

    dst: Variable
    op: str  # '<' '<=' '>' '>=' '==' '!='
    lhs: Value
    rhs: Value

    def used_values(self):
        return (self.lhs, self.rhs)

    def brief(self) -> str:
        return f"{self.dst!r} = {self.lhs!r} {self.op} {self.rhs!r}"


@dataclass(eq=False)
class LoadInst(Instruction):
    """``p = *y`` — the only way to read shared memory (paper §3.1)."""

    dst: Variable
    pointer: Value

    def used_values(self):
        return (self.pointer,)

    def brief(self) -> str:
        return f"{self.dst!r} = load {self.pointer!r}"


@dataclass(eq=False)
class StoreInst(Instruction):
    """``*x = q`` — the only way to write shared memory (paper §3.1)."""

    pointer: Value
    value: Value

    def used_values(self):
        return (self.pointer, self.value)

    def brief(self) -> str:
        return f"store {self.value!r} -> {self.pointer!r}"


@dataclass(eq=False)
class CallInst(Instruction):
    """``x = call f(v1, ..., vn)``; ``callee`` is a name or a Variable
    holding a function pointer."""

    dst: Optional[Variable]
    callee: Value  # FunctionRef or Variable
    args: List[Value]

    def used_values(self):
        return (self.callee, *self.args)

    def brief(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        prefix = f"{self.dst!r} = " if self.dst is not None else ""
        return f"{prefix}call {self.callee!r}({args})"


@dataclass(eq=False)
class ReturnInst(Instruction):
    value: Optional[Value]

    def used_values(self):
        return (self.value,) if self.value is not None else ()

    def brief(self) -> str:
        return f"return {self.value!r}" if self.value is not None else "return"


@dataclass(eq=False)
class ForkInst(Instruction):
    """``fork(t, f, args...)`` — spawn thread ``t`` running ``f``."""

    thread: str
    callee: Value  # FunctionRef or Variable (function pointer)
    args: List[Value]

    def used_values(self):
        return (self.callee, *self.args)

    def brief(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"fork {self.thread} -> {self.callee!r}({args})"


@dataclass(eq=False)
class JoinInst(Instruction):
    thread: str

    def brief(self) -> str:
        return f"join {self.thread}"


@dataclass(eq=False)
class FreeInst(Instruction):
    """``free(p)`` — the UAF/double-free *source* statement."""

    pointer: Value

    def used_values(self):
        return (self.pointer,)

    def brief(self) -> str:
        return f"free {self.pointer!r}"


@dataclass(eq=False)
class LockInst(Instruction):
    mutex: str

    def brief(self) -> str:
        return f"lock {self.mutex}"


@dataclass(eq=False)
class UnlockInst(Instruction):
    mutex: str

    def brief(self) -> str:
        return f"unlock {self.mutex}"


@dataclass(eq=False)
class SignalInst(Instruction):
    """``signal(c)`` — post condition variable ``c`` (latch semantics:
    once signalled, every current and future ``wait(c)`` proceeds)."""

    cond: str

    def brief(self) -> str:
        return f"signal {self.cond}"


@dataclass(eq=False)
class WaitInst(Instruction):
    """``wait(c)`` — block until some thread has executed ``signal(c)``.
    Contributes a signal→wait ordering edge to Φ_po (Eq. 4)."""

    cond: str

    def brief(self) -> str:
        return f"wait {self.cond}"


@dataclass(eq=False)
class SourceInst(Instruction):
    """An intrinsic producing a checker-relevant value:
    ``nondet()`` (opaque int) or ``taint_source()`` (tainted value)."""

    dst: Variable
    kind: str  # 'nondet' | 'taint'

    def brief(self) -> str:
        return f"{self.dst!r} = {self.kind}()"


@dataclass(eq=False)
class SinkInst(Instruction):
    """An intrinsic consuming values: ``print(v)`` (a use/sink) or
    ``taint_sink(v)`` (information-leak sink)."""

    kind: str  # 'print' | 'taint_sink'
    args: List[Value]

    def used_values(self):
        return tuple(self.args)

    def brief(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.kind}({args})"
