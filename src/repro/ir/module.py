"""IR functions and modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..smt.terms import BoolTerm
from .instructions import Instruction, ReturnInst
from .values import MemObject, SymbolicConstant, Value, Variable

__all__ = ["IRFunction", "IRModule", "LABEL_BLOCK_STRIDE"]

#: Labels are allocated in per-function blocks of this size (see
#: :meth:`IRModule.begin_label_block`) so that editing one function
#: cannot shift the labels — and hence the bug keys — of any other.
LABEL_BLOCK_STRIDE = 1 << 20


@dataclass(eq=False)
class IRFunction:
    """A lowered function: parameters plus a guarded straight-line body.

    ``body`` is ordered by (bounded) control flow; each instruction's
    ``guard`` is its path condition relative to function entry.
    ``returns`` lists the possible return values with the guard under
    which each is returned.
    """

    name: str
    params: List[Variable] = field(default_factory=list)
    body: List[Instruction] = field(default_factory=list)
    returns: List[Tuple[Value, BoolTerm]] = field(default_factory=list)
    #: unrolled-AST fingerprint stamped by the lowering ("" for
    #: hand-built functions) — the content component of the function's
    #: portable summary identity (:mod:`repro.analysis.fingerprint`)
    content_key: str = ""

    def instructions(self) -> Iterator[Instruction]:
        return iter(self.body)

    def pretty(self) -> str:
        lines = [f"func {self.name}({', '.join(repr(p) for p in self.params)}):"]
        for inst in self.body:
            guard = inst.guard.pretty()
            guard_note = f"  [{guard}]" if guard != "true" else ""
            lines.append(f"  ℓ{inst.label}: {inst.brief()}{guard_note}")
        for value, guard in self.returns:
            lines.append(f"  returns {value!r} under {guard.pretty()}")
        return "\n".join(lines)


@dataclass(eq=False)
class IRModule:
    """A lowered program: functions, global memory cells, extern symbols."""

    functions: Dict[str, IRFunction] = field(default_factory=dict)
    globals: Dict[str, MemObject] = field(default_factory=dict)
    externs: Dict[str, SymbolicConstant] = field(default_factory=dict)
    entry: str = "main"
    _labels: Dict[int, Instruction] = field(default_factory=dict)
    _label_func: Dict[int, str] = field(default_factory=dict)
    _next_label: int = 0
    #: exclusive upper bound of the current label block (None = unbounded,
    #: the default for hand-built modules that never open a block)
    _block_limit: Optional[int] = None

    def new_label(self) -> int:
        label = self._next_label
        self._next_label += 1
        if self._block_limit is not None and label >= self._block_limit:
            raise ValueError(
                f"label block overflow: ℓ{label} exceeds the current block"
                f" (stride {LABEL_BLOCK_STRIDE}); function too large"
            )
        return label

    def begin_label_block(self, index: int) -> int:
        """Start allocating labels at ``index * LABEL_BLOCK_STRIDE``.

        The lowering opens one block per function (in declaration order),
        which keeps every function's labels stable under edits to other
        functions: label *order* still follows declaration order, but the
        numbering of function ``i`` no longer depends on the sizes of
        functions ``0..i-1``.  Returns the block's first label.
        """
        start = index * LABEL_BLOCK_STRIDE
        self._next_label = start
        self._block_limit = start + LABEL_BLOCK_STRIDE
        return start

    def adopt_function(self, func: IRFunction, block_index: int) -> None:
        """Re-register a previously lowered function under this module.

        Used by the incremental lowering to reuse an unchanged function's
        instruction objects (and hence labels, variables and guards) from
        an earlier run.  The function must have been lowered in the same
        block position.
        """
        start = self.begin_label_block(block_index)
        self.functions[func.name] = func
        last = start - 1
        for inst in func.body:
            self.register(inst, func.name)
            last = inst.label
        self._next_label = last + 1

    def register(self, inst: Instruction, func_name: str) -> None:
        self._labels[inst.label] = inst
        self._label_func[inst.label] = func_name

    def instruction_at(self, label: int) -> Instruction:
        return self._labels[label]

    def function_of(self, inst: Instruction) -> str:
        return self._label_func[inst.label]

    def all_instructions(self) -> Iterator[Instruction]:
        for func in self.functions.values():
            yield from func.body

    def size(self) -> int:
        return sum(len(f.body) for f in self.functions.values())

    def pretty(self) -> str:
        parts = []
        if self.externs:
            parts.append("externs: " + ", ".join(self.externs))
        if self.globals:
            parts.append("globals: " + ", ".join(self.globals))
        parts.extend(f.pretty() for f in self.functions.values())
        return "\n\n".join(parts)
