"""IR well-formedness verifier.

Checks the invariants the analyses rely on.  Run after lowering (and in
tests) to catch frontend regressions early — the analyses themselves
assume these hold and do not re-check:

* SSA: every top-level variable has at most one defining instruction;
* uses follow defs in the (linearized) program order, or are parameters
  / synthetic inputs;
* labels are globally unique and registered with the module;
* guards are boolean terms; a guard that is syntactically FALSE marks
  dead code the lowering should not have emitted;
* loads/stores take pointer-typed operands (variables or synthetic),
  never raw integers;
* every ``fork``/``join`` thread name is locally consistent (a join
  without any fork of that name is suspicious, though legal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..smt.terms import BoolTerm, FALSE
from .instructions import (
    ForkInst,
    Instruction,
    JoinInst,
    LoadInst,
    StoreInst,
)
from .module import IRModule
from .values import IntConstant, Variable

__all__ = ["VerificationError", "VerificationReport", "verify_module"]


class VerificationError(Exception):
    """Raised by :func:`verify_module` with ``strict=True``."""


@dataclass
class VerificationReport:
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        lines = []
        for e in self.errors:
            lines.append(f"error: {e}")
        for w in self.warnings:
            lines.append(f"warning: {w}")
        return "\n".join(lines) or "ok"


def verify_module(module: IRModule, strict: bool = False) -> VerificationReport:
    """Check module invariants; optionally raise on the first failure."""
    report = VerificationReport()

    seen_labels: Set[int] = set()
    defined: Dict[Variable, int] = {}

    # Pass 1: definitions and labels.
    for func in module.functions.values():
        for param in func.params:
            defined.setdefault(param, -1)
        for inst in func.body:
            if inst.label in seen_labels:
                report.errors.append(f"duplicate label ℓ{inst.label} in {func.name}")
            seen_labels.add(inst.label)
            try:
                registered = module.instruction_at(inst.label)
                if registered is not inst:
                    report.errors.append(
                        f"label ℓ{inst.label} registered to a different instruction"
                    )
            except KeyError:
                report.errors.append(f"label ℓ{inst.label} not registered")
            var = inst.defined_var()
            if var is not None:
                if var in defined:
                    report.errors.append(
                        f"SSA violation: {var!r} redefined at ℓ{inst.label}"
                    )
                defined[var] = inst.label
            if not isinstance(inst.guard, BoolTerm):
                report.errors.append(f"non-boolean guard at ℓ{inst.label}")
            elif inst.guard is FALSE:
                report.warnings.append(f"dead instruction (FALSE guard) at ℓ{inst.label}")

    # Pass 2: uses, pointer operands, thread names.
    for func in module.functions.values():
        local_defs: Dict[Variable, int] = {p: -1 for p in func.params}
        forked: Set[str] = set()
        for inst in func.body:
            for value in inst.used_values():
                if isinstance(value, Variable):
                    def_label = defined.get(value)
                    if def_label is None:
                        # Synthetic inputs (formal initial values) and
                        # opaque uninitialized reads have no def: warn.
                        report.warnings.append(
                            f"use of def-less {value!r} at ℓ{inst.label}"
                        )
                    elif def_label >= 0 and def_label > inst.label:
                        same_func = any(
                            i.label == def_label for i in func.body
                        )
                        if same_func:
                            report.errors.append(
                                f"use before def: {value!r} used at ℓ{inst.label}, "
                                f"defined at ℓ{def_label}"
                            )
            if isinstance(inst, (LoadInst, StoreInst)):
                pointer = inst.pointer
                if isinstance(pointer, IntConstant):
                    report.errors.append(
                        f"integer used as pointer at ℓ{inst.label}"
                    )
            if isinstance(inst, ForkInst):
                forked.add(inst.thread)
            elif isinstance(inst, JoinInst) and inst.thread not in forked:
                report.warnings.append(
                    f"join of {inst.thread!r} at ℓ{inst.label} without a "
                    f"preceding fork in {func.name}"
                )
            var = inst.defined_var()
            if var is not None:
                local_defs[var] = inst.label

    if strict and report.errors:
        raise VerificationError("; ".join(report.errors))
    return report
