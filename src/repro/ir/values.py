"""IR values: the two disjoint variable classes of the paper's §3.1.

Following the LLVM convention the paper adopts, values split into
*top-level* variables (``V``, in SSA form, never aliased) and
*address-taken* memory objects (``O``, accessed only through load and
store instructions, the only values shareable between threads), plus
constants and function references.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "Value",
    "Variable",
    "VariableNamer",
    "MemObject",
    "IntConstant",
    "NullConstant",
    "SymbolicConstant",
    "FunctionRef",
    "NULL",
]


class Value:
    """Base class of IR values."""

    __slots__ = ()


_var_ids = itertools.count()


@dataclass(frozen=True, eq=False)
class Variable(Value):
    """A top-level SSA variable (paper's ``V``).

    ``source_name`` is the MiniCC variable it renames (if any); ``name``
    is the unique SSA name.  Identity is object identity — lowering
    creates each SSA variable exactly once.
    """

    name: str
    source_name: Optional[str] = None

    def __repr__(self) -> str:
        return f"%{self.name}"


def fresh_variable(prefix: str, source_name: Optional[str] = None) -> Variable:
    """A process-unique variable (name embeds a global counter).

    Only for tests and ad-hoc construction.  Production lowering and
    dataflow go through :class:`VariableNamer` so names are a pure
    function of the source content — the counter here makes names depend
    on everything lowered earlier in the process, which breaks cross-run
    and cross-process identity of summaries and SMT atoms.
    """
    return Variable(name=f"{prefix}.{next(_var_ids)}", source_name=source_name)


class VariableNamer:
    """Deterministic, content-derived SSA names for one naming scope.

    Names are ``{scope}::{prefix}`` for the first request of a prefix
    and ``{scope}::{prefix}#N`` for the N-th repeat — a pure function of
    (scope, prefix, occurrence ordinal), so two processes lowering the
    same source mint byte-identical names.  ``::`` and ``#`` cannot
    occur in MiniCC identifiers, hence scopes can never collide with
    each other or with legacy ``fresh_variable`` names (which use ``.``
    plus a bare integer suffix on a counter that scoped names never
    consume).

    One namer per function (lowering) or per summary scope (dataflow);
    never share a namer across functions, or names become order-dependent
    again.
    """

    __slots__ = ("scope", "_counts")

    def __init__(self, scope: str) -> None:
        self.scope = scope
        self._counts: dict = {}

    def fresh(self, prefix: str, source_name: Optional[str] = None) -> Variable:
        n = self._counts.get(prefix, 0)
        self._counts[prefix] = n + 1
        name = f"{self.scope}::{prefix}" if n == 0 else f"{self.scope}::{prefix}#{n}"
        return Variable(name=name, source_name=source_name)


@dataclass(frozen=True, eq=False)
class MemObject(Value):
    """An abstract memory object (paper's ``O``): a heap allocation site,
    a stack slot whose address is taken, or a global cell.

    ``context`` distinguishes heap clones per calling context (the paper
    is context-sensitive with nesting depth 6); the empty tuple is the
    outermost context.
    """

    name: str
    kind: str  # 'heap' | 'stack' | 'global'
    context: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        ctx = "@" + "/".join(self.context) if self.context else ""
        return f"o:{self.name}{ctx}"

    def cloned(self, callsite: str, max_depth: int) -> "MemObject":
        """The clone of this object for one more level of calling context."""
        if len(self.context) >= max_depth:
            return self
        return MemObject(self.name, self.kind, self.context + (callsite,))


@dataclass(frozen=True)
class IntConstant(Value):
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class NullConstant(Value):
    def __repr__(self) -> str:
        return "null"


NULL = NullConstant()


@dataclass(frozen=True)
class SymbolicConstant(Value):
    """An ``extern int``: an unknown-but-fixed configuration value.

    All reads observe the same symbolic integer, which is what makes
    branch conditions on the same extern *correlated across threads*
    (the ``theta`` conditions of the paper's Fig. 2).
    """

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class FunctionRef(Value):
    """A reference to a function used as a value (function pointer)."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"
