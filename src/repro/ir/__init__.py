"""Partial-SSA intermediate representation (paper §3.1).

Top-level variables (:class:`~repro.ir.values.Variable`) are in SSA form;
address-taken variables (:class:`~repro.ir.values.MemObject`) are accessed
only through :class:`~repro.ir.instructions.LoadInst` /
:class:`~repro.ir.instructions.StoreInst`, the only operations that can be
shared between threads.  Function bodies are guarded straight-line
instruction lists (see :mod:`repro.ir.instructions`).
"""

from .instructions import (
    AddrOfInst,
    AllocInst,
    BinOpInst,
    CallInst,
    CmpInst,
    CopyInst,
    ForkInst,
    FreeInst,
    Instruction,
    JoinInst,
    LoadInst,
    LockInst,
    PhiInst,
    ReturnInst,
    SignalInst,
    SinkInst,
    SourceInst,
    StoreInst,
    UnlockInst,
    WaitInst,
)
from .module import IRFunction, IRModule
from .verifier import VerificationError, VerificationReport, verify_module
from .values import (
    NULL,
    FunctionRef,
    IntConstant,
    MemObject,
    NullConstant,
    SymbolicConstant,
    Value,
    Variable,
)

__all__ = [
    "AddrOfInst",
    "AllocInst",
    "BinOpInst",
    "CallInst",
    "CmpInst",
    "CopyInst",
    "ForkInst",
    "FreeInst",
    "Instruction",
    "JoinInst",
    "LoadInst",
    "LockInst",
    "PhiInst",
    "ReturnInst",
    "SignalInst",
    "SinkInst",
    "SourceInst",
    "StoreInst",
    "UnlockInst",
    "WaitInst",
    "IRFunction",
    "IRModule",
    "VerificationError",
    "VerificationReport",
    "verify_module",
    "NULL",
    "FunctionRef",
    "IntConstant",
    "MemObject",
    "NullConstant",
    "SymbolicConstant",
    "Value",
    "Variable",
]
