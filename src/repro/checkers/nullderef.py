"""Inter-thread NULL-pointer-dereference checker (paper §1, citing [19]).

Source: an occurrence of the ``null`` constant entering the value flow
(a copy, a phi arm, or a store of ``null`` into shared memory).  Sink:
a dereference (load/store/free) of any alias the null value reaches.
The null must be able to *arrive* before the dereference — the 'load'
edges' Φ_ls constraints already order the store(null) before the load,
so no extra order constraint is needed beyond program order.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..ir.instructions import (
    CopyInst,
    FreeInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.values import NullConstant, Variable
from ..smt.terms import TRUE, BoolTerm
from ..vfg.graph import NullNode, VFGNode
from .base import SourceSinkChecker

__all__ = ["NullDerefChecker"]


class NullDerefChecker(SourceSinkChecker):
    kind = "null-deref"

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        for inst in self.bundle.module.all_instructions():
            if isinstance(inst, CopyInst) and isinstance(inst.src, NullConstant):
                yield NullNode(inst), inst, TRUE
            elif isinstance(inst, StoreInst) and isinstance(inst.value, NullConstant):
                yield NullNode(inst), inst, TRUE
            elif isinstance(inst, PhiInst) and any(
                isinstance(v, NullConstant) for v, _g in inst.incomings
            ):
                yield NullNode(inst), inst, TRUE

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        for use in self.uses.pointer_uses.get(var, ()):
            if isinstance(use, (LoadInst, StoreInst, FreeInst)):
                yield use

    def sink_node_set(self) -> Set[VFGNode]:
        return self.uses.pointer_def_nodes(LoadInst, StoreInst, FreeInst)
