"""Order-violation checker (ROADMAP item 4): use before the intended
init/publication order.

Source: a store ``s`` to an escaped cell that is *superseded* — a later
store ``s'`` in the same function overwrites the cell (the paper's
publication idiom: write the payload, then publish the final value; the
intermediate value was never meant to be observed remotely).  Sink: a
remote load that observes ``s``'s value (the VFG's store→load edge
starting the path).

No extra constraints are needed: the load edge's Φ_ls already demands
``O_s < O_l`` with no intervening overwrite, so observing the stale
value means ``O_l < O_s'`` — impossible under SC program order
(``O_s < O_s'`` pins the pair), possible exactly when something relaxes
or unorders it: PSO's store-store reordering (different SSA pointers,
``pso_store_reorder.mcc``), a concurrent writer with no common lock
(``lock_wrong_mutex.mcc``'s shape), or a missing signal→wait edge.  The
checker therefore *inherits* its memory-model and synchronization
awareness wholesale from the Φ encoding.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from ..ir.instructions import Instruction, LoadInst, StoreInst
from ..ir.values import Variable
from ..smt.terms import TRUE, BoolTerm
from ..vfg.graph import DefNode, StoreNode, VFGNode
from .base import SourceSinkChecker
from .concurrency import sorted_objects

__all__ = ["OrderViolationChecker"]


class OrderViolationChecker(SourceSinkChecker):
    kind = "order-violation"

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        interference = self.bundle.interference
        module = self.bundle.module
        mhp = self.bundle.mhp
        for inst in module.all_instructions():
            if not (isinstance(inst, StoreInst) and isinstance(inst.pointer, Variable)):
                continue
            for obj in sorted_objects(interference.points_to_objects(inst.pointer)):
                if obj not in interference.escaped:
                    continue
                superseded = any(
                    other is not inst
                    and module.function_of(other) == module.function_of(inst)
                    and other.label > inst.label
                    and mhp.happens_before(inst, other)
                    for other, _guard in interference.object_stores.get(obj, ())
                )
                if not superseded:
                    continue
                alias = interference.pted_guard(obj, DefNode(inst.pointer))
                yield StoreNode(inst), inst, alias if alias is not None else TRUE

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        # The observation is the load that fetched the superseded value:
        # the reached definition itself when it is a load (the path's
        # store→load edge carries the Φ_ls that makes the staleness
        # claim precise).
        inst = self.bundle.def_index.get(var)
        if (
            isinstance(inst, LoadInst)
            and inst is not source_inst
            and not self.bundle.mhp.happens_before(inst, source_inst)
        ):
            yield inst

    def sink_node_set(self) -> Set[VFGNode]:
        return {
            DefNode(inst.dst)
            for inst in self.bundle.module.all_instructions()
            if isinstance(inst, LoadInst)
        }
