"""Inter-thread data-race checker (ROADMAP item 4; cf. Miné's lock-aware
interference analysis, PAPERS.md).

Source: a store to an escaped memory object.  The search starts from the
*object's* node, so VFG reachability enumerates every alias of the cell
in every thread — exactly the UAF enumeration pattern.  Sink: any other
access (load or store) of an alias that

* may happen in parallel with the source (structural MHP — fork/join
  ordered pairs are not races),
* is not ordered through a condition-variable signal→wait chain, and
* shares no lock: with ``model_locks`` the pair is discarded when both
  accesses sit in critical sections of the same mutex (the lock-set
  filter that keeps ``lock_protected_safe.mcc`` clean while
  ``lock_wrong_mutex.mcc`` fires).

What remains goes to the solver: Φ_guards ∧ Φ_po (with the mutex and
signal→wait extensions) ∧ the alias guard must be satisfiable — a pair
whose aliasing or path conditions contradict is not a race (the paper's
Fig. 2 value-flow precision argument applied to races).
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from ..ir.instructions import Instruction, LoadInst, StoreInst
from ..ir.values import Variable
from ..smt.terms import TRUE, BoolTerm
from ..vfg.graph import DefNode, ObjNode, VFGNode
from .base import SourceSinkChecker
from .concurrency import lockset_disjoint, sorted_objects, sync_free

__all__ = ["DataRaceChecker"]


class DataRaceChecker(SourceSinkChecker):
    kind = "data-race"

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        # Writes are the racy half we enumerate from; read-write pairs are
        # found from the write side, write-write pairs once (label order).
        interference = self.bundle.interference
        for inst in self.bundle.module.all_instructions():
            if not (isinstance(inst, StoreInst) and isinstance(inst.pointer, Variable)):
                continue
            for obj in sorted_objects(interference.points_to_objects(inst.pointer)):
                if obj not in interference.escaped:
                    continue  # thread-local cell: cannot race
                alias = interference.pted_guard(obj, DefNode(inst.pointer))
                yield ObjNode(obj), inst, alias if alias is not None else TRUE

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        orders = self.realizability.orders
        mhp = self.bundle.mhp
        for use in self.uses.pointer_uses.get(var, ()):
            if not isinstance(use, (LoadInst, StoreInst)):
                continue
            if use is source_inst:
                continue
            # Write-write pairs are symmetric: report each once, from the
            # textually earlier store (the later store finds the pair too
            # and is dropped here, keeping shard/serial keys identical).
            if isinstance(use, StoreInst) and use.label < source_inst.label:
                continue
            if not mhp.may_happen_in_parallel(source_inst, use):
                continue  # fork/join ordered: not a race
            if not sync_free(orders, source_inst, use):
                continue  # signal→wait ordered: not a race
            if not lockset_disjoint(orders.lock_analysis, source_inst, use):
                continue  # common mutex: mutual exclusion protects the pair
            yield use

    def sink_node_set(self) -> Set[VFGNode]:
        return self.uses.pointer_def_nodes(LoadInst, StoreInst)
