"""Source-sink checker framework (paper §5).

A checker instantiates the guarded-reachability template: enumerate
source nodes, search the VFG forward, match sink uses of the reached
values, and keep only the paths the SMT solver proves realizable.  Bug
reports carry the witness path and the constraints — the paper's
"concise bug reports with a limited number of relevant statements".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import (
    FreeInst,
    Instruction,
    LoadInst,
    SinkInst,
    StoreInst,
)
from ..ir.values import Variable
from ..smt.terms import BoolTerm
from ..vfg.builder import VFGBundle
from ..vfg.graph import DefNode, VFGNode
from ..detection.realizability import PathQuery, RealizabilityChecker
from ..detection.search import PathSearcher, SearchLimits, ValueFlowPath

__all__ = ["BugReport", "SourceSinkChecker", "UseIndex"]


@dataclass
class SuppressedCandidate:
    """A source→sink pair the solver proved unrealizable, with the reason
    (``guard-contradiction`` vs ``order-violation``) — useful for triage
    and for quantifying where Canary's precision comes from."""

    kind: str
    source: Instruction
    sink: Instruction
    reason: str

    def describe(self) -> str:
        return (
            f"[suppressed {self.kind}] ℓ{self.source.label} -> ℓ{self.sink.label}"
            f" ({self.reason})"
        )


@dataclass
class BugReport:
    """One confirmed (realizable) source→sink finding."""

    kind: str
    source: Instruction
    sink: Instruction
    path: str
    inter_thread: bool
    witness_order: Dict[str, int] = field(default_factory=dict)
    #: the model's extern/atom assignments, for witness replay
    witness_env: Dict[str, Dict] = field(default_factory=dict)
    statements: List[Instruction] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"[{self.kind}] {self.source.location} -> {self.sink.location}"
            + ("  (inter-thread)" if self.inter_thread else ""),
            f"  source: ℓ{self.source.label}: {self.source.brief()}",
            f"  sink:   ℓ{self.sink.label}: {self.sink.brief()}",
            f"  value flow: {self.path}",
        ]
        if self.witness_order:
            order = sorted(self.witness_order.items(), key=lambda kv: kv[1])
            lines.append(
                "  witness interleaving: " + " < ".join(name for name, _v in order)
            )
        return "\n".join(lines)

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.kind, self.source.label, self.sink.label)


class UseIndex:
    """Where each SSA variable is used as a pointer / as plain data."""

    def __init__(self, bundle: VFGBundle) -> None:
        self.pointer_uses: Dict[Variable, List[Instruction]] = {}
        self.data_uses: Dict[Variable, List[Instruction]] = {}
        for inst in bundle.module.all_instructions():
            if isinstance(inst, LoadInst) and isinstance(inst.pointer, Variable):
                self.pointer_uses.setdefault(inst.pointer, []).append(inst)
            elif isinstance(inst, StoreInst):
                if isinstance(inst.pointer, Variable):
                    self.pointer_uses.setdefault(inst.pointer, []).append(inst)
            elif isinstance(inst, FreeInst) and isinstance(inst.pointer, Variable):
                self.pointer_uses.setdefault(inst.pointer, []).append(inst)
            elif isinstance(inst, SinkInst):
                for arg in inst.args:
                    if isinstance(arg, Variable):
                        self.data_uses.setdefault(arg, []).append(inst)


class SourceSinkChecker:
    """Template for guarded-reachability bug checking."""

    kind: str = "generic"

    def __init__(
        self,
        bundle: VFGBundle,
        limits: SearchLimits = SearchLimits(),
        realizability: Optional[RealizabilityChecker] = None,
        inter_thread_only: bool = True,
        max_reports_per_source: int = 8,
        collect_suppressed: bool = False,
        parallel_solving: bool = False,
        solver_workers: int = 4,
        solver_backend: str = "thread",
    ) -> None:
        self.parallel_solving = parallel_solving
        self.solver_workers = solver_workers
        self.solver_backend = solver_backend
        self.bundle = bundle
        self.limits = limits
        self.realizability = realizability or RealizabilityChecker(bundle)
        self.inter_thread_only = inter_thread_only
        self.max_reports_per_source = max_reports_per_source
        self.collect_suppressed = collect_suppressed
        self.suppressed: List[SuppressedCandidate] = []
        self.uses = UseIndex(bundle)
        self.statistics = {
            "sources": 0,
            "candidates": 0,
            "reports": 0,
            "batch_overflow": 0,
        }

    # ----- subclass API -----------------------------------------------------

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        """(origin node, source statement, alias guard) triples to search
        from.  For object-rooted searches (UAF, double-free) the origin is
        the freed object's node and the alias guard is the condition under
        which the source statement actually touches that object."""
        raise NotImplementedError

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        """Sink statements triggered by the value reaching ``var``."""
        raise NotImplementedError

    def extra_constraints(
        self, source_inst: Instruction, sink_inst: Instruction
    ) -> Tuple[BoolTerm, ...]:
        return ()

    def admit(self, source: Instruction, sink: Instruction, path: ValueFlowPath) -> bool:
        """Property-specific pre-SMT filter.

        "Inter-thread" means the defect involves more than one thread —
        either the value flows across threads (an interference edge on
        the path) or the source and sink statements can run in different
        threads.  Whether the required *order* is feasible is decided by
        the solver (Φ_po and the checker's extra order constraints), not
        here: a free-then-join-then-use bug is ordered yet inter-thread.
        """
        if source is sink:
            return False
        if not self.inter_thread_only:
            return True
        if path.has_interference():
            return True
        threads_a = self.bundle.tcg.threads_of(source)
        threads_b = self.bundle.tcg.threads_of(sink)
        return any(a != b for a in threads_a for b in threads_b)

    # ----- driver -----------------------------------------------------------

    def run(self) -> List[BugReport]:
        reports: List[BugReport] = []
        reported_keys: Set[Tuple[str, int, int]] = set()
        #: batch mode: (key, query) in enumeration order.  Unlike serial
        #: mode, a key is *not* claimed when enqueued — every enumerated
        #: path for a (source, sink) pair becomes a query, exactly the
        #: set serial mode would have checked, so the two modes agree
        #: even when a pair's first path is unrealizable but a later one
        #: is realizable.
        pending: List[Tuple[Tuple[str, int, int], PathQuery]] = []
        pending_per_source: Dict[int, int] = {}
        searcher = PathSearcher(self.bundle, self.limits)
        for origin, source_inst, alias_guard in self.sources():
            self.statistics["sources"] += 1
            found_here = 0

            def on_node(node: VFGNode, path: ValueFlowPath) -> None:
                nonlocal found_here
                if found_here >= self.max_reports_per_source:
                    return
                if not isinstance(node, DefNode):
                    return
                for sink_inst in self.sinks_at(node.var, source_inst):
                    key = (self.kind, source_inst.label, sink_inst.label)
                    if key in reported_keys:
                        continue
                    if not self.admit(source_inst, sink_inst, path):
                        continue
                    self.statistics["candidates"] += 1
                    query = PathQuery(
                        path=ValueFlowPath(origin=path.origin, edges=list(path.edges)),
                        source_inst=source_inst,
                        sink_inst=sink_inst,
                        extra_constraints=self.extra_constraints(
                            source_inst, sink_inst
                        ),
                        alias_guard=alias_guard,
                    )
                    if self.parallel_solving:
                        # Batch mode: defer SMT checking.  The per-source
                        # budget mirrors the searcher's own path bound —
                        # it only guards against pathological blowup, not
                        # a tighter limit than serial mode explores.
                        n = pending_per_source.get(source_inst.label, 0)
                        if n >= self.limits.max_paths_per_source:
                            self.statistics["batch_overflow"] += 1
                            continue
                        pending_per_source[source_inst.label] = n + 1
                        pending.append((key, query))
                        continue
                    result = self.realizability.check(query)
                    if not result.realizable:
                        if self.collect_suppressed:
                            key_s = (self.kind, source_inst.label, sink_inst.label, "s")
                            if key_s not in reported_keys:
                                reported_keys.add(key_s)
                                self.suppressed.append(
                                    SuppressedCandidate(
                                        kind=self.kind,
                                        source=source_inst,
                                        sink=sink_inst,
                                        reason=self.realizability.explain_refutation(
                                            query
                                        ),
                                    )
                                )
                        continue
                    reported_keys.add(key)
                    found_here += 1
                    reports.append(self._make_report(query, result))

            searcher.search(origin, on_node)

        if self.parallel_solving and pending:
            # §5.2: path queries are mutually independent — decide them on
            # the configured pool, then materialize reports in candidate
            # order.  Walking in enumeration order reproduces the serial
            # policy exactly: the first realizable path of a key wins and
            # each source reports at most max_reports_per_source keys.
            results = self.realizability.check_many(
                [query for _key, query in pending],
                parallel=True,
                max_workers=self.solver_workers,
                backend=self.solver_backend,
            )
            per_source: Dict[int, int] = {}
            suppressed_keys: Set[Tuple[str, int, int]] = set()
            for (key, query), result in zip(pending, results):
                if key in reported_keys:
                    continue  # an earlier path already proved this pair
                if result.realizable:
                    source_label = query.source_inst.label
                    if per_source.get(source_label, 0) >= self.max_reports_per_source:
                        continue
                    per_source[source_label] = per_source.get(source_label, 0) + 1
                    reported_keys.add(key)
                    reports.append(self._make_report(query, result))
                elif self.collect_suppressed and key not in suppressed_keys:
                    suppressed_keys.add(key)
                    self.suppressed.append(
                        SuppressedCandidate(
                            kind=self.kind,
                            source=query.source_inst,
                            sink=query.sink_inst,
                            reason=self.realizability.explain_refutation(query),
                        )
                    )
        self.statistics["reports"] += len(reports)
        return reports

    def _make_report(self, query: PathQuery, result) -> BugReport:
        source_inst, sink_inst = query.source_inst, query.sink_inst
        src_threads = self.bundle.tcg.threads_of(source_inst)
        sink_threads = self.bundle.tcg.threads_of(sink_inst)
        return BugReport(
            kind=self.kind,
            source=source_inst,
            sink=sink_inst,
            path=query.path.describe(self.bundle),
            inter_thread=query.path.has_interference()
            or any(a != b for a in src_threads for b in sink_threads),
            witness_order=result.witness_order,
            witness_env=result.witness_env,
            statements=query.path.statements(self.bundle),
        )
