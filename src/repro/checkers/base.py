"""Source-sink checker framework (paper §5).

A checker instantiates the guarded-reachability template: enumerate
source nodes, search the VFG forward, match sink uses of the reached
values, and keep only the paths the SMT solver proves realizable.  Bug
reports carry the witness path and the constraints — the paper's
"concise bug reports with a limited number of relevant statements".

The enumeration layer is demand-driven (sink-directed): each checker
declares its *sink node set* (the VFG definitions whose uses can be a
sink for the property), a backward :class:`SinkReachabilityIndex` over
that set prunes the forward DFS, an incremental guard prefix cuts
quick-unsat subtrees mid-search, and — in parallel mode — a streaming
pipeline feeds discovered paths to the solver pool while enumeration is
still running (no enumerate-all barrier).
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import (
    FreeInst,
    Instruction,
    LoadInst,
    SinkInst,
    StoreInst,
)
from ..ir.values import Variable
from ..smt.terms import BoolTerm
from ..vfg.builder import VFGBundle
from ..vfg.graph import DefNode, VFGNode
from ..detection.reachability import ReachabilityIndexCache, SinkReachabilityIndex
from ..detection.realizability import PathQuery, RealizabilityChecker
from ..detection.search import (
    PathSearcher,
    SearchLimits,
    SearchStatistics,
    TruncationEvent,
    ValueFlowPath,
    _detect_shard,
    _init_detect_worker,
    partition_sink_labels,
)

__all__ = ["BugReport", "SourceSinkChecker", "UseIndex"]


@dataclass
class SuppressedCandidate:
    """A source→sink pair the solver proved unrealizable, with the reason
    (``guard-contradiction`` vs ``order-violation``) — useful for triage
    and for quantifying where Canary's precision comes from."""

    kind: str
    source: Instruction
    sink: Instruction
    reason: str

    def describe(self) -> str:
        return (
            f"[suppressed {self.kind}] ℓ{self.source.label} -> ℓ{self.sink.label}"
            f" ({self.reason})"
        )


@dataclass
class BugReport:
    """One confirmed (realizable) source→sink finding."""

    kind: str
    source: Instruction
    sink: Instruction
    path: str
    inter_thread: bool
    witness_order: Dict[str, int] = field(default_factory=dict)
    #: the model's extern/atom assignments, for witness replay
    witness_env: Dict[str, Dict] = field(default_factory=dict)
    statements: List[Instruction] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"[{self.kind}] {self.source.location} -> {self.sink.location}"
            + ("  (inter-thread)" if self.inter_thread else ""),
            f"  source: ℓ{self.source.label}: {self.source.brief()}",
            f"  sink:   ℓ{self.sink.label}: {self.sink.brief()}",
            f"  value flow: {self.path}",
        ]
        if self.witness_order:
            order = sorted(self.witness_order.items(), key=lambda kv: kv[1])
            lines.append(
                "  witness interleaving: " + " < ".join(name for name, _v in order)
            )
        return "\n".join(lines)

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.kind, self.source.label, self.sink.label)


class UseIndex:
    """Where each SSA variable is used as a pointer / as plain data."""

    def __init__(self, bundle: VFGBundle) -> None:
        self.pointer_uses: Dict[Variable, List[Instruction]] = {}
        self.data_uses: Dict[Variable, List[Instruction]] = {}
        for inst in bundle.module.all_instructions():
            if isinstance(inst, LoadInst) and isinstance(inst.pointer, Variable):
                self.pointer_uses.setdefault(inst.pointer, []).append(inst)
            elif isinstance(inst, StoreInst):
                if isinstance(inst.pointer, Variable):
                    self.pointer_uses.setdefault(inst.pointer, []).append(inst)
            elif isinstance(inst, FreeInst) and isinstance(inst.pointer, Variable):
                self.pointer_uses.setdefault(inst.pointer, []).append(inst)
            elif isinstance(inst, SinkInst):
                for arg in inst.args:
                    if isinstance(arg, Variable):
                        self.data_uses.setdefault(arg, []).append(inst)

    def pointer_def_nodes(self, *use_classes) -> Set[VFGNode]:
        """DefNodes of variables with a pointer use of the given classes."""
        return {
            DefNode(var)
            for var, uses in self.pointer_uses.items()
            if any(isinstance(u, use_classes) for u in uses)
        }


#: one enumerated candidate crossing the producer→coordinator queue:
#: (source index, per-source sequence, key, path edges, source, sink)
_Candidate = Tuple[int, int, Tuple[str, int, int], tuple, Instruction, Instruction]


class SourceSinkChecker:
    """Template for guarded-reachability bug checking."""

    kind: str = "generic"

    def __init__(
        self,
        bundle: VFGBundle,
        limits: SearchLimits = SearchLimits(),
        realizability: Optional[RealizabilityChecker] = None,
        inter_thread_only: bool = True,
        max_reports_per_source: int = 8,
        collect_suppressed: bool = False,
        parallel_solving: bool = False,
        solver_workers: int = 4,
        solver_backend: str = "thread",
        sink_reachability: bool = True,
        guard_pruning: bool = True,
        dead_memo: bool = True,
        index_cache: Optional[ReachabilityIndexCache] = None,
        streaming: bool = True,
        enumeration_workers: int = 2,
        detect_workers: int = 1,
        budget=None,
        tracer=None,
    ) -> None:
        from ..obs.tracer import NULL_TRACER

        #: optional repro.obs Tracer: per-source ``enumerate`` spans
        #: (explicitly parented — producers run on helper threads)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.parallel_solving = parallel_solving
        self.solver_workers = solver_workers
        self.solver_backend = solver_backend
        self.bundle = bundle
        self.limits = limits
        self.realizability = realizability or RealizabilityChecker(bundle)
        self.inter_thread_only = inter_thread_only
        self.max_reports_per_source = max_reports_per_source
        self.collect_suppressed = collect_suppressed
        self.sink_reachability = sink_reachability
        # Guard pruning skips exactly the candidates the solver would
        # refute — the ones the suppressed-candidate diagnostics exist to
        # explain — so the diagnostic mode turns it off.
        self.guard_pruning = guard_pruning and not collect_suppressed
        self.dead_memo = dead_memo
        self.index_cache = index_cache
        self.streaming = streaming
        self.enumeration_workers = max(1, enumeration_workers)
        self.detect_workers = max(1, detect_workers)
        #: when set, ``_enumerate_candidates`` emits only candidates whose
        #: sink label is in this set — the per-shard restriction of the
        #: detection-sharding workers.  Enumeration itself is unrestricted
        #: (same DFS region, same per-source limits as serial), so the
        #: union of shard candidate sets equals the serial candidate set
        #: even when truncation budgets fire.
        self._sink_filter: Optional[Set[int]] = None
        #: optional repro.analysis.budget.Budget — serial mode checks it
        #: between sources and winds down on expiry (parallel modes rely
        #: on per-query solver deadlines plus pass-boundary checks)
        self.budget = budget
        self.suppressed: List[SuppressedCandidate] = []
        self.uses = UseIndex(bundle)
        self.search_stats = SearchStatistics()
        self.truncation_events: List[TruncationEvent] = []
        self.statistics = {
            "sources": 0,
            "candidates": 0,
            "reports": 0,
            # candidates whose realizability came back UNKNOWN: a budget
            # outcome, neither reported nor counted as solver-refuted
            "undecided": 0,
        }

    # ----- subclass API -----------------------------------------------------

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        """(origin node, source statement, alias guard) triples to search
        from.  For object-rooted searches (UAF, double-free) the origin is
        the freed object's node and the alias guard is the condition under
        which the source statement actually touches that object."""
        raise NotImplementedError

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        """Sink statements triggered by the value reaching ``var``."""
        raise NotImplementedError

    def sink_node_set(self) -> Optional[Set[VFGNode]]:
        """The VFG nodes at which :meth:`sinks_at` could ever yield a sink
        (an over-approximation, independent of the source statement).

        Drives the sink-reachability index and the dead-state memo;
        ``None`` (the property-agnostic default) disables both.
        """
        return None

    def extra_constraints(
        self, source_inst: Instruction, sink_inst: Instruction
    ) -> Tuple[BoolTerm, ...]:
        return ()

    def extra_statements(
        self, source_inst: Instruction, sink_inst: Instruction
    ) -> Tuple[Instruction, ...]:
        """Statements beyond path + endpoints whose order variables the
        checker's ``extra_constraints`` mention; they join the Φ_po and
        mutual-exclusion universe of the query (e.g. the local write of
        an RMW pair for the atomicity checker)."""
        return ()

    def admit(self, source: Instruction, sink: Instruction, path: ValueFlowPath) -> bool:
        """Property-specific pre-SMT filter.

        "Inter-thread" means the defect involves more than one thread —
        either the value flows across threads (an interference edge on
        the path) or the source and sink statements can run in different
        threads.  Whether the required *order* is feasible is decided by
        the solver (Φ_po and the checker's extra order constraints), not
        here: a free-then-join-then-use bug is ordered yet inter-thread.
        """
        if source is sink:
            return False
        if not self.inter_thread_only:
            return True
        if path.has_interference():
            return True
        threads_a = self.bundle.tcg.threads_of(source)
        threads_b = self.bundle.tcg.threads_of(sink)
        return any(a != b for a in threads_a for b in threads_b)

    # ----- enumeration plumbing ----------------------------------------------

    def _reach_index(
        self, sinks: Optional[Set[VFGNode]]
    ) -> Optional[SinkReachabilityIndex]:
        if not self.sink_reachability or not sinks:
            return None
        cache = self.index_cache
        if cache is None:
            return SinkReachabilityIndex(
                self.bundle.vfg, sinks, self.limits.context_depth
            )
        return cache.get(self.bundle.vfg, sinks, self.limits.context_depth)

    def _make_searcher(
        self,
        index: Optional[SinkReachabilityIndex],
        sinks: Optional[Set[VFGNode]],
    ) -> PathSearcher:
        return PathSearcher(
            self.bundle,
            self.limits,
            reach_index=index,
            guard_pruning=self.guard_pruning,
            dead_memo=self.dead_memo,
            sink_nodes=sinks,
        )

    def _note_search(self, origin: VFGNode, searcher: PathSearcher) -> None:
        """Merge one source's enumeration counters and truncations."""
        self.search_stats.merge(searcher.stats)
        for limit, count in sorted(searcher.truncations.items()):
            self.truncation_events.append(
                TruncationEvent(origin=repr(origin), limit=limit, count=count)
            )

    def _merged_statistics(self) -> None:
        # Enumeration counters live in self.search_stats (the driver
        # surfaces them separately); candidates is shared vocabulary.
        self.statistics["candidates"] = self.search_stats.candidates

    # ----- driver -----------------------------------------------------------

    def run(self) -> List[BugReport]:
        if (
            self.detect_workers > 1
            and self.solver_backend == "process"
            and not self.collect_suppressed
        ):
            # Per-sink sharding across the process pool.  Suppressed-
            # candidate diagnostics need live parent-side refutation
            # queries, so that mode stays on the in-process paths.  A
            # ``None`` return means the pool could not run — fall through
            # to the streaming/batch/serial ladder below.
            reports = self._run_sharded()
            if reports is not None:
                self._merged_statistics()
                self.statistics["reports"] += len(reports)
                return reports
        sinks = self.sink_node_set()
        index = self._reach_index(sinks)
        source_list = list(self.sources())
        self.statistics["sources"] = len(source_list)
        if self.parallel_solving:
            if self.streaming:
                reports = self._run_streaming(source_list, index, sinks)
            else:
                reports = self._run_batch(source_list, index, sinks)
        else:
            reports = self._run_serial(source_list, index, sinks)
        self._merged_statistics()
        self.statistics["reports"] += len(reports)
        return reports

    def _run_serial(
        self,
        source_list: Sequence[Tuple[VFGNode, Instruction, BoolTerm]],
        index: Optional[SinkReachabilityIndex],
        sinks: Optional[Set[VFGNode]],
    ) -> List[BugReport]:
        reports: List[BugReport] = []
        reported_keys: Set[Tuple] = set()
        for origin, source_inst, alias_guard in source_list:
            if self.budget is not None and self.budget.note_expired(
                f"checker:{self.kind}"
            ):
                break  # wall budget expired: report what we have so far
            found_here = 0

            def on_node(node: VFGNode, path: ValueFlowPath) -> int:
                nonlocal found_here
                if not isinstance(node, DefNode):
                    return 0
                emitted = 0
                for sink_inst in self.sinks_at(node.var, source_inst):
                    key = (self.kind, source_inst.label, sink_inst.label)
                    if key in reported_keys:
                        continue
                    if not self.admit(source_inst, sink_inst, path):
                        continue
                    emitted += 1
                    if found_here >= self.max_reports_per_source:
                        # Report budget exhausted: the candidate still
                        # counts against max_paths_per_source (as it
                        # does in batch/streaming mode) but is not
                        # solved — matching the pre-streaming policy of
                        # at most max_reports_per_source keys per source.
                        continue
                    query = PathQuery(
                        path=ValueFlowPath(origin=path.origin, edges=list(path.edges)),
                        source_inst=source_inst,
                        sink_inst=sink_inst,
                        extra_constraints=self.extra_constraints(
                            source_inst, sink_inst
                        ),
                        alias_guard=alias_guard,
                        extra_statements=self.extra_statements(
                            source_inst, sink_inst
                        ),
                    )
                    result = self.realizability.check(query)
                    if not result.realizable:
                        if result.verdict == "unknown":
                            # Budget outcome, not a refutation: recording
                            # it as suppressed would mislabel it as
                            # solver-proved infeasible.
                            self.statistics["undecided"] += 1
                        elif self.collect_suppressed:
                            key_s = (self.kind, source_inst.label, sink_inst.label, "s")
                            if key_s not in reported_keys:
                                reported_keys.add(key_s)
                                self.suppressed.append(
                                    SuppressedCandidate(
                                        kind=self.kind,
                                        source=source_inst,
                                        sink=sink_inst,
                                        reason=self.realizability.explain_refutation(
                                            query
                                        ),
                                    )
                                )
                        continue
                    reported_keys.add(key)
                    found_here += 1
                    reports.append(self._make_report(query, result))
                return emitted

            searcher = self._make_searcher(index, sinks)
            with self.tracer.span("enumerate", checker=self.kind, source=source_inst.label):
                searcher.search(origin, on_node, alias_guard=alias_guard)
            self._note_search(origin, searcher)
        return reports

    def _enumerate_candidates(
        self,
        source_list: Sequence[Tuple[VFGNode, Instruction, BoolTerm]],
        index: Optional[SinkReachabilityIndex],
        sinks: Optional[Set[VFGNode]],
        emit,
        span_parent=None,
    ) -> None:
        """Enumerate every source (possibly on a thread pool), calling
        ``emit(candidate)`` for each admitted (source, sink, path).

        Unlike serial mode, a key is *not* claimed when a candidate is
        emitted — every enumerated path of a (source, sink) pair becomes
        a query, exactly the set serial mode would have checked, so the
        modes agree even when a pair's first path is unrealizable but a
        later one is realizable.  Candidates are tagged with a
        (source-index, sequence) ordinal; replaying the serial reporting
        policy over the ordinal-sorted verdicts reproduces serial mode's
        bug keys.

        Producers never build SMT terms (interning is not thread-safe):
        ``extra_constraints`` is deferred to the coordinator.
        """
        # Producer threads have no ambient span stack: parent their
        # enumerate spans explicitly under the checker (detect) span —
        # streaming mode captures the context before forking producers.
        enum_parent = (
            span_parent if span_parent is not None else self.tracer.current_context()
        )

        def enumerate_one(idx: int) -> None:
            origin, source_inst, alias_guard = source_list[idx]
            seq = 0

            def on_node(node: VFGNode, path: ValueFlowPath) -> int:
                nonlocal seq
                if not isinstance(node, DefNode):
                    return 0
                emitted = 0
                sink_filter = self._sink_filter
                for sink_inst in self.sinks_at(node.var, source_inst):
                    key = (self.kind, source_inst.label, sink_inst.label)
                    if not self.admit(source_inst, sink_inst, path):
                        continue
                    # The sequence counts every admitted candidate — even
                    # ones a shard filter drops — so ``seq`` is the *serial*
                    # ordinal of the candidate in any worker, and truncation
                    # budgets fire at exactly the serial point.
                    emitted += 1
                    if sink_filter is None or sink_inst.label in sink_filter:
                        emit(
                            (idx, seq, key, tuple(path.edges), source_inst, sink_inst)
                        )
                    seq += 1
                return emitted

            searcher = self._make_searcher(index, sinks)
            with self.tracer.span(
                "enumerate",
                parent=enum_parent,
                checker=self.kind,
                source=source_inst.label,
            ):
                searcher.search(origin, on_node, alias_guard=alias_guard)
            with self._enum_lock:
                self._note_search(origin, searcher)

        self._enum_lock = threading.Lock()
        if self.enumeration_workers <= 1 or len(source_list) <= 1:
            for idx in range(len(source_list)):
                enumerate_one(idx)
            return
        with ThreadPoolExecutor(max_workers=self.enumeration_workers) as pool:
            futures = [
                pool.submit(enumerate_one, idx) for idx in range(len(source_list))
            ]
            for future in futures:
                future.result()  # propagate enumeration errors

    def _replay_serial_policy(
        self,
        ordered: Sequence[Tuple[_Candidate, PathQuery]],
        results: Sequence,
    ) -> List[BugReport]:
        """§5.2: path queries are mutually independent — decided on the
        pool, then materialized in candidate order.  Walking in
        enumeration order reproduces the serial policy exactly: the
        first realizable path of a key wins and each source reports at
        most ``max_reports_per_source`` keys."""
        reports: List[BugReport] = []
        reported_keys: Set[Tuple[str, int, int]] = set()
        per_source: Dict[int, int] = {}
        suppressed_keys: Set[Tuple[str, int, int]] = set()
        for ((_idx, _seq, key, _edges, source_inst, sink_inst), query), result in zip(
            ordered, results
        ):
            if key in reported_keys:
                continue  # an earlier path already proved this pair
            if result.realizable:
                source_label = query.source_inst.label
                if per_source.get(source_label, 0) >= self.max_reports_per_source:
                    continue
                per_source[source_label] = per_source.get(source_label, 0) + 1
                reported_keys.add(key)
                reports.append(self._make_report(query, result))
            elif result.verdict == "unknown":
                # Budget outcome: never recorded as solver-refuted.
                self.statistics["undecided"] += 1
            elif self.collect_suppressed and key not in suppressed_keys:
                suppressed_keys.add(key)
                self.suppressed.append(
                    SuppressedCandidate(
                        kind=self.kind,
                        source=query.source_inst,
                        sink=query.sink_inst,
                        reason=self.realizability.explain_refutation(query),
                    )
                )
        return reports

    def _build_query(self, candidate: _Candidate, source_list) -> PathQuery:
        idx, _seq, _key, edges, source_inst, sink_inst = candidate
        origin, _inst, alias_guard = source_list[idx]
        return PathQuery(
            path=ValueFlowPath(origin=origin, edges=list(edges)),
            source_inst=source_inst,
            sink_inst=sink_inst,
            extra_constraints=self.extra_constraints(source_inst, sink_inst),
            alias_guard=alias_guard,
            extra_statements=self.extra_statements(source_inst, sink_inst),
        )

    def _run_streaming(
        self,
        source_list: Sequence[Tuple[VFGNode, Instruction, BoolTerm]],
        index: Optional[SinkReachabilityIndex],
        sinks: Optional[Set[VFGNode]],
    ) -> List[BugReport]:
        """The enumerate→solve pipeline: producer threads run per-source
        DFS, pushing candidates into a bounded queue; the coordinator
        (this thread) assembles Φ_all and streams it to the solver pool
        while enumeration continues.  Verdicts are replayed over the
        (source, sequence)-sorted candidates, preserving the serial
        equivalence guarantee."""
        if not source_list:
            return []
        fifo: "queue.Queue" = queue.Queue(maxsize=max(64, 8 * self.solver_workers))
        _DONE = object()

        def emit(candidate: _Candidate) -> None:
            fifo.put(candidate)

        # Captured on the coordinator, where the detect span is ambient.
        enum_ctx = self.tracer.current_context()

        def produce() -> None:
            try:
                self._enumerate_candidates(
                    source_list, index, sinks, emit, span_parent=enum_ctx
                )
            finally:
                fifo.put(_DONE)

        stream = self.realizability.open_stream(
            max_workers=self.solver_workers, backend=self.solver_backend
        )
        entries: List[Tuple[_Candidate, PathQuery, int]] = []
        producer = threading.Thread(target=produce, name=f"{self.kind}-enum")
        producer.start()
        try:
            while True:
                item = fifo.get()
                if item is _DONE:
                    break
                query = self._build_query(item, source_list)
                ordinal = stream.submit(query)
                entries.append((item, query, ordinal))
        finally:
            producer.join()
            results = stream.finish()
        # Enumeration across sources interleaves nondeterministically;
        # the (source-index, sequence) ordinal restores the order serial
        # mode would have produced.
        entries.sort(key=lambda e: (e[0][0], e[0][1]))
        ordered = [(cand, query) for cand, query, _ord in entries]
        verdicts = [results[ordinal] for _cand, _query, ordinal in entries]
        return self._replay_serial_policy(ordered, verdicts)

    def _run_batch(
        self,
        source_list: Sequence[Tuple[VFGNode, Instruction, BoolTerm]],
        index: Optional[SinkReachabilityIndex],
        sinks: Optional[Set[VFGNode]],
    ) -> List[BugReport]:
        """PR 1 batch mode (kept for comparison/ablation): enumerate all
        paths first, then decide the whole batch on the pool."""
        pending: List[_Candidate] = []
        self._enumerate_candidates(source_list, index, sinks, pending.append)
        pending.sort(key=lambda c: (c[0], c[1]))
        if not pending:
            return []
        queries = [self._build_query(c, source_list) for c in pending]
        results = self.realizability.check_many(
            queries,
            parallel=True,
            max_workers=self.solver_workers,
            backend=self.solver_backend,
        )
        return self._replay_serial_policy(list(zip(pending, queries)), results)

    # ----- per-sink detection sharding ---------------------------------------

    def _run_sharded(self) -> Optional[List[BugReport]]:
        """Dispatch sink-label shards across a process pool and merge.

        Returns ``None`` when sharding cannot run (nothing to shard over,
        pool creation failed, a worker died, or the payload would not
        pickle) — the caller then falls through to the in-process paths,
        so a sharded run always completes.  The run budget stays parent-
        side: workers see only the static per-query solver timeout.
        """
        import pickle
        from concurrent.futures import ProcessPoolExecutor

        universe: Set[int] = set()
        for uses in (self.uses.pointer_uses, self.uses.data_uses):
            for insts in uses.values():
                universe.update(inst.label for inst in insts)
        shards = partition_sink_labels(universe, self.detect_workers)
        if len(shards) < 2:
            return None  # 0/1 sink families: nothing to shard over
        realizability = self.realizability
        payload = {
            "bundle": self.bundle,
            "kind": self.kind,
            "limits": self.limits,
            "checker_kwargs": {
                "inter_thread_only": self.inter_thread_only,
                "max_reports_per_source": self.max_reports_per_source,
                "sink_reachability": self.sink_reachability,
                "guard_pruning": self.guard_pruning,
                "dead_memo": self.dead_memo,
            },
            "solver": {
                "use_cube_and_conquer": realizability.use_cube_and_conquer,
                "solver_max_conflicts": realizability.solver_max_conflicts,
                "order_constraints": realizability.order_constraints,
                "memory_model": realizability.orders.memory_model,
                "model_locks": realizability.orders.lock_analysis is not None,
                "solver_timeout": realizability.solver_timeout,
                "incremental_smt": realizability.incremental_smt,
            },
        }
        try:
            with ProcessPoolExecutor(
                max_workers=len(shards),
                initializer=_init_detect_worker,
                initargs=(payload,),
            ) as pool:
                shard_results = list(pool.map(_detect_shard, shards))
        except (
            OSError,
            RuntimeError,
            ImportError,
            EOFError,
            pickle.PicklingError,
        ) as exc:
            realizability._note_pool_failure("detect-shard", exc)
            return None
        rows = [row for res in shard_results for row in res["rows"]]
        # Every row carries its true serial (source-index, sequence)
        # ordinal — see _enumerate_candidates — so this sort restores the
        # exact order serial mode solves candidates in.
        rows.sort(key=lambda r: (r["idx"], r["seq"]))
        reports = self._replay_rows(rows)
        # Every shard walks the identical DFS, so enumeration counters and
        # truncations are byte-equal across shards: adopt the first
        # shard's verbatim (summing would multiply-count the walk).
        first = shard_results[0]
        self.statistics["sources"] = first["sources"]
        self.search_stats = SearchStatistics(**first["search_stats"])
        self.truncation_events = [
            TruncationEvent(origin=origin, limit=limit, count=count)
            for origin, limit, count in first["truncations"]
        ]
        # Solver work really is partitioned: sum it into the run counters.
        for res in shard_results:
            for key, value in res["solver_stats"].items():
                if value:
                    realizability._count(key, value)
        realizability.metrics.counter("detect.shards").add(len(shards))
        return reports

    def shard_rows(self, shard: Sequence[int]) -> dict:
        """Worker half of detection sharding: run the serial enumeration
        (identical DFS region, prunes, and truncation accounting), emit
        only candidates whose sink label is in ``shard``, solve them in
        enumeration order, and return plain picklable rows plus the
        counters the parent adopts."""
        self._sink_filter = frozenset(shard)
        sinks = self.sink_node_set()
        index = self._reach_index(sinks)
        source_list = list(self.sources())
        pending: List[_Candidate] = []
        self._enumerate_candidates(source_list, index, sinks, pending.append)
        pending.sort(key=lambda c: (c[0], c[1]))
        rows: List[dict] = []
        for cand in pending:
            query = self._build_query(cand, source_list)
            result = self.realizability.check(query)
            src_threads = self.bundle.tcg.threads_of(query.source_inst)
            sink_threads = self.bundle.tcg.threads_of(query.sink_inst)
            rows.append(
                {
                    "idx": cand[0],
                    "seq": cand[1],
                    "source": query.source_inst.label,
                    "sink": query.sink_inst.label,
                    "realizable": result.realizable,
                    "verdict": result.verdict,
                    "witness_order": dict(result.witness_order),
                    "witness_env": dict(result.witness_env),
                    "path": query.path.describe(self.bundle),
                    "inter_thread": query.path.has_interference()
                    or any(a != b for a in src_threads for b in sink_threads),
                    "statements": [
                        s.label for s in query.path.statements(self.bundle)
                    ],
                }
            )
        return {
            "rows": rows,
            "sources": len(source_list),
            "search_stats": self.search_stats.as_dict(),
            "truncations": [
                (e.origin, e.limit, e.count) for e in self.truncation_events
            ],
            "solver_stats": dict(self.realizability.statistics),
        }

    def _replay_rows(self, rows: Sequence[dict]) -> List[BugReport]:
        """The serial reporting policy over ordinal-sorted shard rows —
        the row-level twin of :meth:`_replay_serial_policy`, rehydrating
        statements through the parent's own module by label."""
        module = self.bundle.module
        reports: List[BugReport] = []
        reported_keys: Set[Tuple[str, int, int]] = set()
        per_source: Dict[int, int] = {}
        for row in rows:
            key = (self.kind, row["source"], row["sink"])
            if key in reported_keys:
                continue
            if row["realizable"]:
                if per_source.get(row["source"], 0) >= self.max_reports_per_source:
                    continue
                per_source[row["source"]] = per_source.get(row["source"], 0) + 1
                reported_keys.add(key)
                reports.append(
                    BugReport(
                        kind=self.kind,
                        source=module.instruction_at(row["source"]),
                        sink=module.instruction_at(row["sink"]),
                        path=row["path"],
                        inter_thread=row["inter_thread"],
                        witness_order=row["witness_order"],
                        witness_env=row["witness_env"],
                        statements=[
                            module.instruction_at(label)
                            for label in row["statements"]
                        ],
                    )
                )
            elif row["verdict"] == "unknown":
                self.statistics["undecided"] += 1
        return reports

    def _make_report(self, query: PathQuery, result) -> BugReport:
        source_inst, sink_inst = query.source_inst, query.sink_inst
        src_threads = self.bundle.tcg.threads_of(source_inst)
        sink_threads = self.bundle.tcg.threads_of(sink_inst)
        return BugReport(
            kind=self.kind,
            source=source_inst,
            sink=sink_inst,
            path=query.path.describe(self.bundle),
            inter_thread=query.path.has_interference()
            or any(a != b for a in src_threads for b in sink_threads),
            witness_order=result.witness_order,
            witness_env=result.witness_env,
            statements=query.path.statements(self.bundle),
        )
