"""Shared helpers for the concurrency checker families (race, atomicity,
order violation).

These are the structural pre-SMT filters: deterministic object
enumeration (``MemObject`` hashes by identity, so raw set iteration
order is not stable across processes — detection sharding requires the
sorted order), lock-set disjointness, and condition-variable ordering.
Everything that survives them still has to pass the solver's Φ_all.
"""

from __future__ import annotations

from typing import Iterable, List

from ..ir.instructions import Instruction
from ..ir.values import MemObject

__all__ = ["lockset_disjoint", "sorted_objects", "sync_free"]


def sorted_objects(objects: Iterable[MemObject]) -> List[MemObject]:
    """Deterministic enumeration order for a set of memory objects."""
    return sorted(objects, key=lambda o: (o.name, o.kind, o.context))


def lockset_disjoint(lock_analysis, a: Instruction, b: Instruction) -> bool:
    """No common mutex protects both statements (trivially true without
    the lock extension — ``model_locks=False`` means no lock-set filter)."""
    if lock_analysis is None:
        return True
    return not lock_analysis.common_mutex_regions(a, b)


def sync_free(orders, a: Instruction, b: Instruction) -> bool:
    """Neither direction of the pair is ordered by a signal→wait chain.

    ``orders`` is the realizability checker's
    :class:`~repro.detection.partial_order.OrderConstraintBuilder`; its
    lazily-built condition-variable analysis answers the extended
    happens-before query.
    """
    condvars = orders.condvars
    if not condvars.has_sync():
        return True
    return condvars.sync_free(a, b)
