"""Atomicity-violation checker (ROADMAP item 4; cf. Kusano & Wang's
thread-modular analysis, PAPERS.md).

Source: the *read* of a local read–modify–write pair — a load ``r`` of
an escaped cell followed, in the same function, by a store ``w`` whose
value data-depends on the loaded value (the classic unprotected
``*c = *c + 1`` idiom).  Sink: a remote store to an alias of the same
cell.  The violation is the remote write landing *between* the pair:

    O_r < O_s' < O_w

which goes to the solver as the checker's extra order constraints, with
``w`` joining the query's statement universe (``extra_statements``) so
Φ_po and the mutual-exclusion/signal→wait extensions see it.  When the
pair sits in a critical section and the remote write takes the same
mutex, the exclusion constraints make the interleaving UNSAT — only a
region-free window (or a wrong/missing lock) is reported.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir.instructions import Instruction, LoadInst, StoreInst
from ..ir.values import Value, Variable
from ..smt.terms import TRUE, BoolTerm, lt
from ..vfg.graph import DefNode, ObjNode, VFGNode
from ..detection.partial_order import order_var
from .base import SourceSinkChecker
from .concurrency import sorted_objects

__all__ = ["AtomicityViolationChecker"]

#: cap on the def-chain walk that establishes the RMW data dependence
_DEP_WALK_LIMIT = 64


class AtomicityViolationChecker(SourceSinkChecker):
    kind = "atomicity-violation"

    #: read label -> the store completing its RMW pair (built by sources())
    _partner: Optional[Dict[int, StoreInst]] = None

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        interference = self.bundle.interference
        self._partner = {}
        for func in self.bundle.module.functions.values():
            for i, r in enumerate(func.body):
                if not (isinstance(r, LoadInst) and isinstance(r.pointer, Variable)):
                    continue
                read_objs = {
                    obj
                    for obj in interference.points_to_objects(r.pointer)
                    if obj in interference.escaped
                }
                if not read_objs:
                    continue
                pair = self._find_write(func.body[i + 1 :], r, read_objs, interference)
                if pair is None:
                    continue
                w, common = pair
                self._partner[r.label] = w
                for obj in sorted_objects(common):
                    alias = interference.pted_guard(obj, DefNode(r.pointer))
                    yield ObjNode(obj), r, alias if alias is not None else TRUE

    def _find_write(self, rest, r: LoadInst, read_objs, interference):
        """The nearest later same-function store whose value data-depends
        on the loaded value and that may write one of the read objects."""
        for w in rest:
            if not (isinstance(w, StoreInst) and isinstance(w.pointer, Variable)):
                continue
            if not self._depends_on(w.value, r.dst):
                continue
            common = read_objs & interference.points_to_objects(w.pointer)
            if common:
                return w, common
        return None

    def _depends_on(self, value: Value, target: Variable) -> bool:
        """Does ``value`` data-depend on ``target`` through SSA defs
        (copies, phis, arithmetic)?"""
        def_index = self.bundle.def_index
        seen: Set[Variable] = set()
        stack: List[Value] = [value]
        budget = _DEP_WALK_LIMIT
        while stack and budget > 0:
            budget -= 1
            v = stack.pop()
            if not isinstance(v, Variable) or v in seen:
                continue
            if v is target:
                return True
            seen.add(v)
            d = def_index.get(v)
            if d is not None and not isinstance(d, (LoadInst, StoreInst)):
                stack.extend(d.used_values())
        return False

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        w = self._partner_of(source_inst)
        if w is None:
            return
        orders = self.realizability.orders
        mhp = self.bundle.mhp
        for use in self.uses.pointer_uses.get(var, ()):
            if not isinstance(use, StoreInst):
                continue
            if use is source_inst or use is w:
                continue
            # The remote write must be able to land inside the window:
            # concurrent with at least one end of the pair, and not
            # signal/wait-ordered entirely before the read or after the
            # write.
            if not (
                mhp.may_happen_in_parallel(use, source_inst)
                or mhp.may_happen_in_parallel(use, w)
            ):
                continue
            condvars = orders.condvars
            if condvars.has_sync() and (
                condvars.ordered_before(use, source_inst)
                or condvars.ordered_before(w, use)
            ):
                continue
            yield use

    def sink_node_set(self) -> Set[VFGNode]:
        return self.uses.pointer_def_nodes(StoreInst)

    def extra_constraints(
        self, source_inst: Instruction, sink_inst: Instruction
    ) -> Tuple[BoolTerm, ...]:
        w = self._partner_of(source_inst)
        if w is None:
            return ()
        return (
            lt(order_var(source_inst), order_var(sink_inst)),
            lt(order_var(sink_inst), order_var(w)),
        )

    def extra_statements(
        self, source_inst: Instruction, sink_inst: Instruction
    ) -> Tuple[Instruction, ...]:
        w = self._partner_of(source_inst)
        return () if w is None else (w,)

    def _partner_of(self, source_inst: Instruction) -> Optional[StoreInst]:
        if self._partner is None:
            for _ in self.sources():  # build the pair index
                pass
        return self._partner.get(source_inst.label)
