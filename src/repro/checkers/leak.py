"""Inter-thread information-leak (taint) checker (paper §1, citing [21]).

Source: ``x = taint_source()`` — a sensitive value.  Sink:
``taint_sink(y)`` consuming any value the sensitive one flows to,
including flows laundered through shared memory across threads (which is
what DTAM-style dynamic taint analyses miss under unlucky schedules).
Arithmetic edges propagate taint, so derived values are tracked too.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from ..ir.instructions import Instruction, SinkInst, SourceInst
from ..ir.values import Variable
from ..smt.terms import TRUE, BoolTerm
from ..vfg.graph import DefNode, VFGNode
from .base import SourceSinkChecker

__all__ = ["TaintLeakChecker"]


class TaintLeakChecker(SourceSinkChecker):
    kind = "info-leak"

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        for inst in self.bundle.module.all_instructions():
            if isinstance(inst, SourceInst) and inst.kind == "taint":
                yield DefNode(inst.dst), inst, TRUE

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        for use in self.uses.data_uses.get(var, ()):
            if isinstance(use, SinkInst) and use.kind == "taint_sink":
                yield use

    def sink_node_set(self) -> Set[VFGNode]:
        return {
            DefNode(var)
            for var, uses in self.uses.data_uses.items()
            if any(isinstance(u, SinkInst) and u.kind == "taint_sink" for u in uses)
        }
