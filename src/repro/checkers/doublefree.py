"""Double-free checker.

Source and sink are both ``free`` statements reaching the same memory
object through aliased pointers; the query requires the two frees to be
orderable (``O_f1 < O_f2``).  Unordered pairs are deduplicated so each
offending pair is reported once.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..ir.instructions import FreeInst, Instruction
from ..ir.values import Variable
from ..smt.terms import TRUE, BoolTerm, lt
from ..vfg.graph import DefNode, ObjNode, VFGNode
from ..detection.partial_order import order_var
from .base import BugReport, SourceSinkChecker

__all__ = ["DoubleFreeChecker"]


class DoubleFreeChecker(SourceSinkChecker):
    kind = "double-free"

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        interference = self.bundle.interference
        for inst in self.bundle.module.all_instructions():
            if isinstance(inst, FreeInst) and isinstance(inst.pointer, Variable):
                for obj in interference.points_to_objects(inst.pointer):
                    alias = interference.pted_guard(obj, DefNode(inst.pointer))
                    yield ObjNode(obj), inst, alias if alias is not None else TRUE

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        for use in self.uses.pointer_uses.get(var, ()):
            if isinstance(use, FreeInst) and use is not source_inst:
                yield use

    def sink_node_set(self) -> Set[VFGNode]:
        return self.uses.pointer_def_nodes(FreeInst)

    def extra_constraints(
        self, source_inst: Instruction, sink_inst: Instruction
    ) -> Tuple[BoolTerm, ...]:
        return (lt(order_var(source_inst), order_var(sink_inst)),)

    def run(self) -> List[BugReport]:
        reports = super().run()
        # (f1, f2) and (f2, f1) describe the same defect: keep one.
        seen: Set[Tuple[int, int]] = set()
        unique: List[BugReport] = []
        for report in reports:
            pair = tuple(sorted((report.source.label, report.sink.label)))
            if pair in seen:
                continue
            seen.add(pair)
            unique.append(report)
        return unique
