"""Inter-thread use-after-free checker (paper §5 and §7.2).

Source: a ``free(p)`` statement.  The dangling value is the pointer
``p``; the search starts from the *definition* of ``p``, whose forward
value flows (copies, stores into shared memory, cross-thread loads)
enumerate every alias of the freed pointer.  Sink: any dereference of an
alias (load, store or a second free — the latter reported by the
double-free checker instead).

The realizability query adds ``O_free < O_use``: the dereference must be
able to execute *after* the free in some feasible interleaving.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..ir.instructions import FreeInst, Instruction, LoadInst, StoreInst
from ..ir.values import Variable
from ..smt.terms import TRUE, BoolTerm, lt
from ..vfg.graph import DefNode, ObjNode, VFGNode
from ..detection.partial_order import order_var
from .base import SourceSinkChecker

__all__ = ["UseAfterFreeChecker"]


class UseAfterFreeChecker(SourceSinkChecker):
    kind = "use-after-free"

    def sources(self) -> Iterable[Tuple[VFGNode, Instruction, BoolTerm]]:
        # Search from each *freed object*: its VFG reachability enumerates
        # every alias of the dangling cell, in every thread.
        interference = self.bundle.interference
        for inst in self.bundle.module.all_instructions():
            if isinstance(inst, FreeInst) and isinstance(inst.pointer, Variable):
                for obj in interference.points_to_objects(inst.pointer):
                    alias = interference.pted_guard(obj, DefNode(inst.pointer))
                    yield ObjNode(obj), inst, alias if alias is not None else TRUE

    def sinks_at(
        self, var: Variable, source_inst: Instruction
    ) -> Iterable[Instruction]:
        for use in self.uses.pointer_uses.get(var, ()):
            # Dereferences only; double-free is a separate property.
            if isinstance(use, (LoadInst, StoreInst)) and use is not source_inst:
                yield use

    def sink_node_set(self) -> Set[VFGNode]:
        # Any variable with a dereferencing use; sinks_at only refines
        # this (drops the source statement itself).
        return self.uses.pointer_def_nodes(LoadInst, StoreInst)

    def extra_constraints(
        self, source_inst: Instruction, sink_inst: Instruction
    ) -> Tuple[BoolTerm, ...]:
        return (lt(order_var(source_inst), order_var(sink_inst)),)
