"""Report serialization: JSON and SARIF-style output.

The paper emphasizes that value-flow paths give "concise bug reports
with a limited number of relevant statements and conditions" — these
serializers expose that structure to CI pipelines and IDEs (SARIF is the
de-facto interchange format for static-analysis results).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Iterable, List

from .base import BugReport

if TYPE_CHECKING:  # avoid a circular import; only needed for typing
    from ..analysis.driver import AnalysisReport

__all__ = ["report_to_dict", "report_to_json", "report_to_sarif"]

_RULE_DESCRIPTIONS = {
    "use-after-free": "A freed heap object may be dereferenced by another thread.",
    "double-free": "A heap object may be freed twice across threads.",
    "null-deref": "A NULL value stored by one thread may be dereferenced by another.",
    "info-leak": "A sensitive value may flow to a public sink through shared memory.",
}


def _bug_to_dict(bug: BugReport) -> Dict:
    return {
        "kind": bug.kind,
        "inter_thread": bug.inter_thread,
        "source": {
            "label": bug.source.label,
            "statement": bug.source.brief(),
            "file": bug.source.location.filename,
            "line": bug.source.location.line,
            "column": bug.source.location.column,
        },
        "sink": {
            "label": bug.sink.label,
            "statement": bug.sink.brief(),
            "file": bug.sink.location.filename,
            "line": bug.sink.location.line,
            "column": bug.sink.location.column,
        },
        "value_flow": bug.path,
        "witness_interleaving": bug.witness_order,
        "statements": [
            {"label": s.label, "statement": s.brief(), "line": s.location.line}
            for s in bug.statements
        ],
    }


def report_to_dict(report: "AnalysisReport") -> Dict:
    """The whole analysis result as a JSON-ready dictionary."""
    return {
        "tool": "canary-repro",
        "bugs": [_bug_to_dict(b) for b in report.bugs],
        "vfg": report.vfg_summary,
        "timings_seconds": report.timings,
        "solver": report.solver_statistics,
    }


def report_to_json(report: "AnalysisReport", indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def report_to_sarif(report: "AnalysisReport") -> Dict:
    """A minimal SARIF 2.1.0 log with one result per finding."""
    kinds = sorted({b.kind for b in report.bugs} | set(_RULE_DESCRIPTIONS))
    rules = [
        {
            "id": kind,
            "shortDescription": {"text": _RULE_DESCRIPTIONS.get(kind, kind)},
        }
        for kind in kinds
    ]
    rule_index = {kind: i for i, kind in enumerate(kinds)}
    results = []
    for bug in report.bugs:
        results.append(
            {
                "ruleId": bug.kind,
                "ruleIndex": rule_index[bug.kind],
                "level": "error",
                "message": {
                    "text": (
                        f"{bug.kind}: value freed/defined at "
                        f"{bug.source.location} reaches "
                        f"{bug.sink.location}"
                        + (" across threads" if bug.inter_thread else "")
                    )
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": bug.sink.location.filename},
                            "region": {
                                "startLine": max(1, bug.sink.location.line),
                                "startColumn": max(1, bug.sink.location.column),
                            },
                        }
                    }
                ],
                "codeFlows": [
                    {
                        "threadFlows": [
                            {
                                "locations": [
                                    {
                                        "location": {
                                            "physicalLocation": {
                                                "artifactLocation": {
                                                    "uri": s.location.filename
                                                },
                                                "region": {
                                                    "startLine": max(1, s.location.line)
                                                },
                                            },
                                            "message": {"text": s.brief()},
                                        }
                                    }
                                    for s in bug.statements
                                ]
                            }
                        ]
                    }
                ],
            }
        )
    return {
        "version": "2.1.0",
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "canary-repro",
                        "informationUri": "https://doi.org/10.1145/3453483.3454099",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
