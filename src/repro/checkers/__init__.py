"""Inter-thread value-flow bug checkers (paper §5).

All checkers instantiate the source–sink guarded-reachability template
in :class:`repro.checkers.base.SourceSinkChecker`:

* :class:`UseAfterFreeChecker` — the paper's headline property (§7.2);
* :class:`DoubleFreeChecker`;
* :class:`NullDerefChecker`;
* :class:`TaintLeakChecker` — information leaks through shared memory;
* :class:`DataRaceChecker` — conflicting unordered accesses (lock-set
  and signal→wait aware);
* :class:`AtomicityViolationChecker` — a remote write interleaved into a
  local read–modify–write window;
* :class:`OrderViolationChecker` — remote observation of a superseded
  (pre-publication) value.
"""

from .base import BugReport, SourceSinkChecker, SuppressedCandidate, UseIndex
from .reporting import report_to_dict, report_to_json, report_to_sarif
from .atomicity import AtomicityViolationChecker
from .doublefree import DoubleFreeChecker
from .leak import TaintLeakChecker
from .nullderef import NullDerefChecker
from .order import OrderViolationChecker
from .race import DataRaceChecker
from .uaf import UseAfterFreeChecker

ALL_CHECKERS = {
    "use-after-free": UseAfterFreeChecker,
    "double-free": DoubleFreeChecker,
    "null-deref": NullDerefChecker,
    "info-leak": TaintLeakChecker,
    "data-race": DataRaceChecker,
    "atomicity-violation": AtomicityViolationChecker,
    "order-violation": OrderViolationChecker,
}

#: short CLI spellings (``--checkers=race,atomicity,order``)
CHECKER_ALIASES = {
    "race": "data-race",
    "atomicity": "atomicity-violation",
    "order": "order-violation",
    "uaf": "use-after-free",
    "doublefree": "double-free",
    "nullderef": "null-deref",
    "leak": "info-leak",
}


def resolve_checker_names(names):
    """Expand aliases and validate; raises ``ValueError`` on unknown names."""
    resolved = tuple(CHECKER_ALIASES.get(name, name) for name in names)
    unknown = [name for name in resolved if name not in ALL_CHECKERS]
    if unknown:
        raise ValueError(f"unknown checker(s): {', '.join(unknown)}")
    return resolved


__all__ = [
    "BugReport",
    "SourceSinkChecker",
    "SuppressedCandidate",
    "UseIndex",
    "report_to_dict",
    "report_to_json",
    "report_to_sarif",
    "UseAfterFreeChecker",
    "DoubleFreeChecker",
    "NullDerefChecker",
    "TaintLeakChecker",
    "DataRaceChecker",
    "AtomicityViolationChecker",
    "OrderViolationChecker",
    "ALL_CHECKERS",
    "CHECKER_ALIASES",
    "resolve_checker_names",
]
