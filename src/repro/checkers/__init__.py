"""Inter-thread value-flow bug checkers (paper §5).

All checkers instantiate the source–sink guarded-reachability template
in :class:`repro.checkers.base.SourceSinkChecker`:

* :class:`UseAfterFreeChecker` — the paper's headline property (§7.2);
* :class:`DoubleFreeChecker`;
* :class:`NullDerefChecker`;
* :class:`TaintLeakChecker` — information leaks through shared memory.
"""

from .base import BugReport, SourceSinkChecker, SuppressedCandidate, UseIndex
from .reporting import report_to_dict, report_to_json, report_to_sarif
from .doublefree import DoubleFreeChecker
from .leak import TaintLeakChecker
from .nullderef import NullDerefChecker
from .uaf import UseAfterFreeChecker

ALL_CHECKERS = {
    "use-after-free": UseAfterFreeChecker,
    "double-free": DoubleFreeChecker,
    "null-deref": NullDerefChecker,
    "info-leak": TaintLeakChecker,
}

__all__ = [
    "BugReport",
    "SourceSinkChecker",
    "SuppressedCandidate",
    "UseIndex",
    "report_to_dict",
    "report_to_json",
    "report_to_sarif",
    "UseAfterFreeChecker",
    "DoubleFreeChecker",
    "NullDerefChecker",
    "TaintLeakChecker",
    "ALL_CHECKERS",
]
