"""AST-to-IR lowering: bounded unrolling + guarded partial-SSA construction."""

from .lower import (
    LoweringCache,
    LoweringError,
    lower_program,
    lower_program_incremental,
)
from .unroll import DEFAULT_UNROLL_DEPTH, unroll_loops

__all__ = [
    "LoweringCache",
    "LoweringError",
    "lower_program",
    "lower_program_incremental",
    "DEFAULT_UNROLL_DEPTH",
    "unroll_loops",
]
