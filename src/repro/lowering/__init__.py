"""AST-to-IR lowering: bounded unrolling + guarded partial-SSA construction."""

from .lower import LoweringError, lower_program
from .unroll import DEFAULT_UNROLL_DEPTH, unroll_loops

__all__ = ["LoweringError", "lower_program", "DEFAULT_UNROLL_DEPTH", "unroll_loops"]
