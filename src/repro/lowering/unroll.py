"""Bounded program construction: AST-level loop unrolling.

The paper (§3.1, §6) gains decidability by "structurally bounding the
concurrent programs by unrolling both loops and recursive functions to a
finite depth" — loops are unrolled twice in Canary's implementation.
``unroll_loops`` rewrites every ``while (c) B`` into nested
``if (c) { B ... }`` blocks of the configured depth; iterations beyond
the bound are not explored (a soundiness choice, as in the paper).

Recursive calls are bounded later, at summary-application time
(:mod:`repro.vfg.dataflow` cuts call chains at the context depth).
"""

from __future__ import annotations

import copy
from typing import List

from ..frontend import ast_nodes as A

__all__ = ["unroll_loops", "DEFAULT_UNROLL_DEPTH"]

DEFAULT_UNROLL_DEPTH = 2


def unroll_loops(program: A.Program, depth: int = DEFAULT_UNROLL_DEPTH) -> A.Program:
    """Return a copy of ``program`` with every while-loop unrolled ``depth``
    times.  The input AST is not modified."""
    if depth < 1:
        raise ValueError("unroll depth must be at least 1")
    out = copy.deepcopy(program)
    for func in out.functions:
        func.body = _unroll_block(func.body, depth)
    return out


def _unroll_block(block: A.BlockStmt, depth: int) -> A.BlockStmt:
    return A.BlockStmt(location=block.location, body=[_unroll_stmt(s, depth) for s in block.body])


def _unroll_stmt(stmt: A.Stmt, depth: int) -> A.Stmt:
    if isinstance(stmt, A.WhileStmt):
        return _unroll_while(stmt, depth)
    if isinstance(stmt, A.IfStmt):
        return A.IfStmt(
            location=stmt.location,
            cond=stmt.cond,
            then_body=_unroll_block(stmt.then_body, depth),
            else_body=_unroll_block(stmt.else_body, depth) if stmt.else_body else None,
        )
    if isinstance(stmt, A.BlockStmt):
        return _unroll_block(stmt, depth)
    return stmt


def _unroll_while(stmt: A.WhileStmt, depth: int) -> A.Stmt:
    """``while (c) B``  =>  ``if (c) { B' if (c) { B' ... } }`` (depth deep).

    Each unrolled iteration gets a *fresh deep copy* of the body so that
    the lowering assigns distinct labels (and SSA names) per iteration —
    a fork inside a loop therefore yields one thread per unrolled
    iteration, which is how the paper's bounding "indirectly fixes the
    number of threads".
    """
    inner: A.Stmt | None = None
    for _ in range(depth):
        body_copy = _unroll_block(copy.deepcopy(stmt.body), depth)
        stmts: List[A.Stmt] = list(body_copy.body)
        if inner is not None:
            stmts.append(inner)
        inner = A.IfStmt(
            location=stmt.location,
            cond=copy.deepcopy(stmt.cond),
            then_body=A.BlockStmt(location=stmt.location, body=stmts),
            else_body=None,
        )
    assert inner is not None
    return inner
